//! The representation-and-layout half of the determinism contract
//! (`crates/core/README.md`): for every algorithm, graph class, exec
//! mode and thread count, `FrontierRepr::Bitmap` must be **bit-equal**
//! to `FrontierRepr::List` and `MetadataLayout::Chunked` bit-equal to
//! `MetadataLayout::Flat` — identical final metadata (float bit
//! patterns included), identical per-iteration activation logs
//! (directions, filters, frontier sizes, per-iteration cycles) and
//! identical executor statistics.
//!
//! The harness is differential: every cell of the
//! {BFS, SSSP, PageRank, k-Core, WCC} × {Serial, Parallel} ×
//! {List, Bitmap} × {Flat, Chunked} × {Scan, Grid} matrix runs
//! against the same graph and is compared to the Flat + List + Serial
//! baseline, so a divergence pinpoints the representation, layout,
//! exec mode and push strategy that broke (the strategy axis only
//! spans the parallel cells — a serial run has exactly one shard). The graph classes stress different engine paths: RMAT
//! (skewed degrees → CTA worklists, ballot switches, hub overflow),
//! road strips (tiny frontiers over many online-filter iterations;
//! their vertex counts are warp-misaligned, so chunked tail handling
//! is always exercised) and Erdős–Rényi (push/pull direction flips).
//! Together the five algorithms cover both Combine kinds, the
//! aggregation-pull candidate sweep, the non-idempotent decrement
//! path (k-Core) and float accumulation order (PageRank).

use simdx::algos::{bfs, kcore, pagerank, sssp, wcc};
use simdx::core::jit::ActivationLog;
use simdx::core::prelude::*;
use simdx::graph::gen::{Erdos, Rmat, Road};
use simdx::graph::{weights, EdgeList, Graph};
use simdx_gpu::executor::ExecutorStats;

/// Everything that must match bit for bit across the matrix.
#[derive(Debug, PartialEq)]
struct Fingerprint<M: PartialEq + std::fmt::Debug> {
    meta: Vec<M>,
    iterations: u32,
    stats: ExecutorStats,
    log: ActivationLog,
}

fn fingerprint<M: PartialEq + std::fmt::Debug>(r: RunResult<M>) -> Fingerprint<M> {
    Fingerprint {
        meta: r.meta,
        iterations: r.report.iterations,
        stats: r.report.stats,
        log: r.report.log,
    }
}

/// The exec-mode sweep each representation runs under.
fn exec_modes() -> [ExecMode; 3] {
    [
        ExecMode::Serial,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 5 },
    ]
}

/// The push strategies a given exec mode exercises: the knob only
/// reaches the parallel backend (a serial run has exactly one shard),
/// so the serial cells run once under the default grid label.
fn push_strategies(exec: ExecMode) -> &'static [PushStrategy] {
    match exec {
        ExecMode::Serial => &[PushStrategy::Grid],
        ExecMode::Parallel { .. } => &[PushStrategy::Scan, PushStrategy::Grid],
    }
}

/// Runs one algorithm over the full {exec mode} × {repr} × {layout} ×
/// {push strategy} matrix and asserts every cell is bit-equal to the
/// Flat + List + Serial baseline.
fn assert_matrix<M, F>(what: &str, run: F)
where
    M: PartialEq + std::fmt::Debug,
    F: Fn(EngineConfig) -> RunResult<M>,
{
    let base_cfg = EngineConfig::default()
        .with_exec(ExecMode::Serial)
        .with_frontier(FrontierRepr::List)
        .with_layout(MetadataLayout::Flat);
    let baseline = fingerprint(run(base_cfg));
    assert!(
        baseline.iterations > 0,
        "{what}: trivial run proves nothing"
    );
    for exec in exec_modes() {
        for &push in push_strategies(exec) {
            for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
                for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
                    let cell = fingerprint(run(EngineConfig::default()
                        .with_exec(exec)
                        .with_frontier(repr)
                        .with_layout(layout)
                        .with_push(push)));
                    assert_eq!(
                        cell,
                        baseline,
                        "{what}: {}/{}/{}/{} diverged from serial/list/flat",
                        exec.label(),
                        repr.label(),
                        layout.label(),
                        push.label(),
                    );
                }
            }
        }
    }
}

fn rmat_graph() -> Graph {
    Graph::directed_from_edges(Rmat::gtgraph(12, 8).generate(5))
}

fn road_graph() -> Graph {
    Graph::undirected_from_edges(Road::strip(256, 16).generate(5))
}

fn er_graph() -> Graph {
    Graph::directed_from_edges(Erdos::new(4096, 8).generate(5))
}

fn weighted(el: EdgeList) -> Graph {
    Graph::directed_from_edges(weights::assign_default_weights(&el, 9))
}

#[test]
fn bfs_matrix_on_rmat() {
    let g = rmat_graph();
    assert_matrix("bfs/rmat", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn bfs_matrix_on_road() {
    let g = road_graph();
    assert_matrix("bfs/road", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn bfs_matrix_on_er() {
    let g = er_graph();
    assert_matrix("bfs/er", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn sssp_matrix_on_rmat() {
    let g = weighted(Rmat::gtgraph(12, 8).generate(5));
    assert_matrix("sssp/rmat", |cfg| sssp::run(&g, 0, cfg).expect("sssp"));
}

#[test]
fn sssp_matrix_on_road() {
    let g = weighted(Road::strip(128, 16).generate(5));
    assert_matrix("sssp/road", |cfg| sssp::run(&g, 0, cfg).expect("sssp"));
}

#[test]
fn pagerank_matrix_on_rmat() {
    // Float accumulation order is the sharpest bit-equality probe: a
    // bitmap-ordered reshuffle of PageRank's f32 sums would show here.
    let g = rmat_graph();
    assert_matrix("pagerank/rmat", |cfg| pagerank::run(&g, cfg).expect("pr"));
}

#[test]
fn pagerank_matrix_on_er() {
    let g = er_graph();
    assert_matrix("pagerank/er", |cfg| pagerank::run(&g, cfg).expect("pr"));
}

#[test]
fn kcore_matrix_on_rmat() {
    // k-Core's decrements are non-idempotent: a first-change dedup
    // mismatch between the metadata compare and the bit test would
    // corrupt metadata here.
    let g = Graph::undirected_from_edges(Rmat::gtgraph(12, 8).generate(5));
    assert_matrix("kcore/rmat", |cfg| kcore::run(&g, 4, cfg).expect("kcore"));
}

#[test]
fn kcore_matrix_on_road() {
    // k = 3 fully peels the strip over ~60 iterations — the long
    // low-frontier cascade regime where the bitmap's O(V/64) publish
    // sweep runs most often.
    let g = road_graph();
    assert_matrix("kcore/road", |cfg| kcore::run(&g, 3, cfg).expect("kcore"));
}

#[test]
fn wcc_matrix_on_rmat() {
    let g = Graph::undirected_from_edges(Rmat::gtgraph(12, 8).generate(5));
    assert_matrix("wcc/rmat", |cfg| wcc::run(&g, cfg).expect("wcc"));
}

#[test]
fn wcc_matrix_on_er() {
    let g = Graph::undirected_from_edges(Erdos::new(4096, 8).generate(5));
    assert_matrix("wcc/er", |cfg| wcc::run(&g, cfg).expect("wcc"));
}

#[test]
fn filter_policies_stay_equivalent_in_bitmap_mode() {
    // Ballot-only forces the sparse scan every iteration; JIT mixes
    // online and ballot. Both must stay bit-equal across the reprs.
    let g = er_graph();
    for policy in [FilterPolicy::Jit, FilterPolicy::BallotOnly] {
        let base = fingerprint(
            bfs::run(
                &g,
                0,
                EngineConfig::default()
                    .with_filter(policy)
                    .with_frontier(FrontierRepr::List)
                    .with_layout(MetadataLayout::Flat),
            )
            .expect("bfs"),
        );
        for exec in exec_modes() {
            for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
                let bm = fingerprint(
                    bfs::run(
                        &g,
                        0,
                        EngineConfig::default()
                            .with_filter(policy)
                            .with_exec(exec)
                            .with_layout(layout)
                            .bitmap(),
                    )
                    .expect("bfs"),
                );
                assert_eq!(
                    bm,
                    base,
                    "{policy:?}/{}/{} diverged",
                    exec.label(),
                    layout.label()
                );
            }
        }
    }
}

#[test]
fn unscaled_device_stays_equivalent_in_bitmap_mode() {
    // Slot counts change bin shapes and task-to-slot assignment;
    // representation equality must be scale-independent.
    let g = er_graph();
    let base = fingerprint(
        bfs::run(
            &g,
            0,
            EngineConfig::unscaled()
                .with_frontier(FrontierRepr::List)
                .with_layout(MetadataLayout::Flat),
        )
        .expect("bfs"),
    );
    for exec in exec_modes() {
        for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
            let bm = fingerprint(
                bfs::run(
                    &g,
                    0,
                    EngineConfig::unscaled()
                        .with_exec(exec)
                        .with_layout(layout)
                        .bitmap(),
                )
                .expect("bfs"),
            );
            assert_eq!(
                bm,
                base,
                "unscaled/{}/{} diverged",
                exec.label(),
                layout.label()
            );
        }
    }
}
