//! Concurrent query serving: a bounded-queue `QueryPool` over one
//! shared [`BoundGraph`].
//!
//! The session API makes concurrent queries *possible* (`Runtime` and
//! `BoundGraph` are `Sync`; see `session`'s module docs for the
//! sharing model); this module makes them *operable*. A
//! [`QueryPool::serve`] call stands up the paper's target shape — one
//! bound graph answering a stream of single-source queries for many
//! clients — as a closed-loop service:
//!
//! * a **bounded submission queue** ([`ServiceConfig::queue_depth`])
//!   with admission control: [`AdmissionPolicy::Block`] applies
//!   backpressure to the producer, [`AdmissionPolicy::Reject`] fails
//!   the submission with [`SimdxError::Overloaded`] so the caller can
//!   shed load;
//! * **N serving threads** ([`ServiceConfig::workers`]), each running
//!   independent queries over the shared bind-time core — every thread
//!   checks its own worker pool and scratch arena out of the session's
//!   stashes, so queries never contend on engine state;
//! * a **batching scheduler**: each serving thread drains up to
//!   [`ServiceConfig::batch_max`] queued requests per turn and runs
//!   them over a single scratch checkout (the `run_batch`
//!   amortization, measured at 1.1–1.2×), without delaying a lone
//!   request — batches form only from queue backlog;
//! * **per-query supervision**: every [`QueryRequest`] carries its own
//!   optional [`CancelToken`], deadline and cycle budget. Deadlines
//!   are measured from *submission*, so time spent queued counts
//!   against the query — a request that waited out its whole deadline
//!   in the queue aborts immediately with
//!   [`SimdxError::DeadlineExceeded`] instead of running late.
//!
//! Results are collected into a [`ServeReport`]: one [`ServeOutcome`]
//! per accepted ticket (in ticket order) with its submission-to-result
//! latency, plus the closed-loop elapsed time — everything a harness
//! needs for queries/sec and p50/p99 latency (the `serving` snapshot
//! group in `BENCH_engine.json`).
//!
//! Serving threads are *scoped* (`std::thread::scope`): they borrow
//! the `BoundGraph` directly, so the service needs no `'static`
//! plumbing and cannot outlive the graph it serves. The producer
//! closure runs on the calling thread concurrently with the serving
//! threads; when it returns, the queue closes, the workers drain every
//! accepted request, and `serve` returns the report.
//!
//! Every query served concurrently remains **bit-equal** to running it
//! alone on a fresh engine — same metadata, activation logs and
//! simulated cycles (`tests/concurrent_serving.rs` asserts the matrix,
//! including mid-stream cancellations and fault-injected worker
//! panics).
//!
//! # Example
//!
//! ```
//! use simdx_core::prelude::*;
//! use simdx_core::service::{QueryPool, QueryRequest, ServiceConfig};
//! use simdx_graph::{EdgeList, Graph, VertexId, Weight};
//!
//! #[derive(Clone)]
//! struct Levels {
//!     src: VertexId,
//! }
//! impl AccProgram for Levels {
//!     type Meta = u32;
//!     type Update = u32;
//!     fn name(&self) -> &'static str { "levels" }
//!     fn combine_kind(&self) -> CombineKind { CombineKind::Vote }
//!     fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
//!         let mut m = vec![u32::MAX; g.num_vertices() as usize];
//!         m[self.src as usize] = 0;
//!         (m, vec![self.src])
//!     }
//!     fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight,
//!                ms: &u32, md: &u32) -> Option<u32> {
//!         (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
//!     }
//!     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
//!         (u < *c).then_some(u)
//!     }
//! }
//! impl SourcedProgram for Levels {
//!     fn with_source(mut self, src: VertexId) -> Self {
//!         self.src = src;
//!         self
//!     }
//! }
//!
//! let graph = Graph::directed_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//! let runtime = Runtime::new(EngineConfig::unscaled())?;
//! let bound = runtime.bind(&graph);
//!
//! let report = QueryPool::serve(
//!     &bound,
//!     Levels { src: 0 },
//!     ServiceConfig::default().workers(2),
//!     |client| {
//!         for seed in [0u32, 1, 2, 3] {
//!             client.submit(QueryRequest::new(seed))?;
//!         }
//!         Ok(())
//!     },
//! )?;
//! assert_eq!(report.outcomes.len(), 4);
//! assert_eq!(
//!     report.outcomes[1].result.as_ref().unwrap().meta,
//!     vec![u32::MAX, 0, 1, 2],
//! );
//! # Ok::<(), SimdxError>(())
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::acc::SourcedProgram;
use crate::error::SimdxError;
use crate::metrics::RunResult;
use crate::scratch::IterScratch;
use crate::session::BoundGraph;
use crate::supervise::{CancelToken, Supervisor};
use simdx_graph::VertexId;

/// What [`QueryClient::submit`] does when the submission queue is at
/// [`ServiceConfig::queue_depth`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the producer until a serving thread drains a slot —
    /// backpressure (default).
    #[default]
    Block,
    /// Fail the submission with [`SimdxError::Overloaded`] — load
    /// shedding; the query is never admitted and gets no ticket.
    Reject,
}

/// Knobs for one [`QueryPool::serve`] call.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Serving threads. Each runs independent queries over the shared
    /// core with its own worker-pool and scratch checkouts, so total
    /// host threads ≈ `workers × Runtime::threads`.
    pub workers: usize,
    /// Bounded submission-queue capacity (requests admitted but not
    /// yet picked up by a serving thread).
    pub queue_depth: usize,
    /// Most queued requests one serving thread drains per turn onto a
    /// single scratch checkout. `1` disables batching.
    pub batch_max: usize,
    /// Reaction to a full queue at submit time.
    pub admission: AdmissionPolicy,
}

impl Default for ServiceConfig {
    /// Two serving threads, a 64-deep queue, batches of up to 8,
    /// blocking admission.
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            batch_max: 8,
            admission: AdmissionPolicy::Block,
        }
    }
}

impl ServiceConfig {
    /// Builder: set the serving-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: set the submission-queue capacity.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Builder: set the per-turn batching cap.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Builder: set the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    fn validate(&self) -> Result<(), SimdxError> {
        let fail = |reason: String| Err(SimdxError::InvalidConfig { reason });
        if self.workers == 0 {
            return fail("service needs at least 1 serving thread".to_string());
        }
        if self.queue_depth == 0 {
            return fail("service queue_depth must be at least 1".to_string());
        }
        if self.batch_max == 0 {
            return fail("service batch_max must be at least 1".to_string());
        }
        Ok(())
    }
}

/// One query to submit: a seed plus optional per-query supervision.
#[derive(Clone, Debug, Default)]
pub struct QueryRequest {
    seed: VertexId,
    max_iterations: Option<u32>,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
    cycle_budget: Option<u64>,
}

impl QueryRequest {
    /// A plain query rooted at `seed` (validated against the bound
    /// graph when served, like [`crate::session::RunBuilder::source`]).
    pub fn new(seed: VertexId) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Overrides the config's iteration cap for this query only.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Attaches a cancellation token (keep a clone to cancel the query
    /// from any thread, whether it is still queued or already running).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps this query's wall-clock time **from submission**: time
    /// spent waiting in the queue counts, so an expired deadline
    /// aborts the query the moment a serving thread picks it up.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Caps this query's simulated device cycles
    /// ([`crate::session::RunBuilder::cycle_budget`]).
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }
}

/// Receipt for an admitted query: its index into
/// [`ServeReport::outcomes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryTicket {
    index: usize,
}

impl QueryTicket {
    /// The outcome slot this ticket's result lands in.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// The served result of one admitted query.
#[derive(Clone, Debug)]
pub struct ServeOutcome<M> {
    /// The query's seed vertex.
    pub seed: VertexId,
    /// The run's result — bit-equal to a solo run of the same query —
    /// or its typed abort.
    pub result: Result<RunResult<M>, SimdxError>,
    /// Submission-to-completion latency (queue wait included).
    pub latency: Duration,
}

/// Everything one [`QueryPool::serve`] call produced.
#[derive(Clone, Debug)]
pub struct ServeReport<M> {
    /// One outcome per admitted ticket, in ticket order
    /// ([`QueryTicket::index`] indexes this). Rejected submissions
    /// ([`AdmissionPolicy::Reject`]) never got a ticket and do not
    /// appear.
    pub outcomes: Vec<ServeOutcome<M>>,
    /// Serving-thread turns taken — `outcomes.len() / batches` is the
    /// achieved batching factor.
    pub batches: u64,
    /// Wall-clock time of the whole closed loop (first submission
    /// possible to last query drained).
    pub elapsed: Duration,
}

impl<M> ServeReport<M> {
    /// Served queries that completed without an error.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Closed-loop throughput over every admitted query.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Nearest-rank latency percentile (`p` in `[0, 100]`) over every
    /// admitted query's submission-to-completion latency.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let mut lat: Vec<Duration> = self.outcomes.iter().map(|o| o.latency).collect();
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.saturating_sub(1).min(lat.len() - 1)]
    }
}

/// One admitted, not-yet-served request.
struct Entry {
    ticket: usize,
    request: QueryRequest,
    submitted: Instant,
}

struct QueueState {
    queue: VecDeque<Entry>,
    next_ticket: usize,
    closed: bool,
}

/// The bounded submission queue shared by the producer and the serving
/// threads. Plain `Mutex` + two `Condvar`s: submitters wait on
/// `not_full` (blocking admission), serving threads on `not_empty`.
struct SharedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
    admission: AdmissionPolicy,
}

impl SharedQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

/// The producer's handle into a running [`QueryPool::serve`] call.
pub struct QueryClient<'a> {
    shared: &'a SharedQueue,
}

impl QueryClient<'_> {
    /// Submits one query. Under [`AdmissionPolicy::Block`] this waits
    /// for queue space; under [`AdmissionPolicy::Reject`] a full queue
    /// fails with [`SimdxError::Overloaded`] and the query is never
    /// admitted. On success the returned ticket indexes the query's
    /// slot in [`ServeReport::outcomes`].
    pub fn submit(&self, request: QueryRequest) -> Result<QueryTicket, SimdxError> {
        let index;
        {
            let mut st = self.shared.lock();
            while st.queue.len() >= self.shared.depth {
                match self.shared.admission {
                    AdmissionPolicy::Reject => {
                        return Err(SimdxError::Overloaded {
                            capacity: self.shared.depth,
                        })
                    }
                    AdmissionPolicy::Block => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
            index = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(Entry {
                ticket: index,
                request,
                submitted: Instant::now(),
            });
        }
        self.shared.not_empty.notify_one();
        Ok(QueryTicket { index })
    }

    /// Requests currently admitted but not yet picked up.
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

/// The concurrent serving front-end; see the module docs.
pub struct QueryPool;

impl QueryPool {
    /// Serves queries over `bound` with `config.workers` scoped
    /// serving threads while `producer` — run on the calling thread —
    /// submits them through the [`QueryClient`]. When the producer
    /// returns, the queue closes, every admitted query is drained, and
    /// the per-ticket outcomes come back as a [`ServeReport`].
    ///
    /// A producer error cancels nothing retroactively: already
    /// admitted queries still run, but their outcomes are discarded
    /// with the error. Propagate submission failures only when that is
    /// acceptable (a load-shedding producer should tolerate
    /// [`SimdxError::Overloaded`] instead).
    pub fn serve<P, F>(
        bound: &BoundGraph<'_, '_>,
        program: P,
        config: ServiceConfig,
        producer: F,
    ) -> Result<ServeReport<P::Meta>, SimdxError>
    where
        P: SourcedProgram,
        F: FnOnce(&QueryClient<'_>) -> Result<(), SimdxError>,
    {
        config.validate()?;
        let shared = SharedQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_depth),
                next_ticket: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: config.queue_depth,
            admission: config.admission,
        };
        let slots: Mutex<Vec<Option<ServeOutcome<P::Meta>>>> = Mutex::new(Vec::new());
        let batches = AtomicU64::new(0);
        let started = Instant::now();
        let produced = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.workers)
                .map(|w| {
                    let (shared, slots, batches, program) = (&shared, &slots, &batches, &program);
                    std::thread::Builder::new()
                        .name(format!("simdx-serve-{w}"))
                        .spawn_scoped(scope, move || {
                            serve_loop(bound, program, config.batch_max, shared, slots, batches);
                        })
                        .expect("spawn serving thread")
                })
                .collect();
            let produced = producer(&QueryClient { shared: &shared });
            shared.close();
            for handle in handles {
                // Engine panics are contained inside execute_query, so
                // a serving thread only dies of a harness bug; don't
                // swallow that.
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            produced
        });
        produced?;
        let outcomes = slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("every admitted ticket is served"))
            .collect();
        Ok(ServeReport {
            outcomes,
            batches: batches.into_inner(),
            elapsed: started.elapsed(),
        })
    }
}

/// One serving thread: drain up to `batch_max` requests per turn, run
/// them over a single scratch checkout, publish each outcome.
fn serve_loop<P: SourcedProgram>(
    bound: &BoundGraph<'_, '_>,
    program: &P,
    batch_max: usize,
    shared: &SharedQueue,
    slots: &Mutex<Vec<Option<ServeOutcome<P::Meta>>>>,
    batches: &AtomicU64,
) {
    loop {
        let batch: Vec<Entry> = {
            let mut st = shared.lock();
            loop {
                if !st.queue.is_empty() {
                    let n = batch_max.min(st.queue.len());
                    break st.queue.drain(..n).collect();
                }
                if st.closed {
                    return;
                }
                st = shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.not_full.notify_all();
        let mut scratch = bound.checkout_scratch::<P::Meta>();
        for entry in batch {
            let outcome = serve_one(bound, program, &entry, &mut scratch);
            let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
            if slots.len() <= entry.ticket {
                slots.resize_with(entry.ticket + 1, || None);
            }
            slots[entry.ticket] = Some(outcome);
        }
        bound.checkin_scratch(scratch);
        batches.fetch_add(1, Ordering::Relaxed);
    }
}

fn serve_one<P: SourcedProgram>(
    bound: &BoundGraph<'_, '_>,
    program: &P,
    entry: &Entry,
    scratch: &mut IterScratch<P::Meta>,
) -> ServeOutcome<P::Meta> {
    // The deadline covers submit→completion: shrink it by the queue
    // wait (saturating to an immediate, typed abort when the query
    // waited its whole deadline out in the queue).
    let remaining = entry
        .request
        .deadline
        .map(|d| d.saturating_sub(entry.submitted.elapsed()));
    let supervisor = Supervisor::new(
        entry.request.cancel.clone(),
        remaining,
        entry.request.cycle_budget,
    );
    let result = bound.execute_query(
        program,
        entry.request.seed,
        entry.request.max_iterations,
        &supervisor,
        scratch,
    );
    ServeOutcome {
        seed: entry.request.seed,
        result,
        latency: entry.submitted.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_config_validates_and_composes() {
        let cfg = ServiceConfig::default()
            .workers(4)
            .queue_depth(16)
            .batch_max(2)
            .admission(AdmissionPolicy::Reject);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.batch_max, 2);
        assert_eq!(cfg.admission, AdmissionPolicy::Reject);
        assert!(cfg.validate().is_ok());
        for broken in [
            ServiceConfig::default().workers(0),
            ServiceConfig::default().queue_depth(0),
            ServiceConfig::default().batch_max(0),
        ] {
            assert!(matches!(
                broken.validate(),
                Err(SimdxError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn report_percentiles_use_nearest_rank() {
        let report = ServeReport::<u32> {
            outcomes: (1..=4u64)
                .map(|ms| ServeOutcome {
                    seed: 0,
                    result: Err(SimdxError::OnlineOverflow { iteration: 0 }),
                    latency: Duration::from_millis(ms),
                })
                .collect(),
            batches: 1,
            elapsed: Duration::from_millis(10),
        };
        assert_eq!(report.latency_percentile(50.0), Duration::from_millis(2));
        assert_eq!(report.latency_percentile(99.0), Duration::from_millis(4));
        assert_eq!(report.latency_percentile(0.0), Duration::from_millis(1));
        assert_eq!(report.completed(), 0);
        assert!(report.queries_per_sec() > 0.0);
        let empty = ServeReport::<u32> {
            outcomes: Vec::new(),
            batches: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.latency_percentile(99.0), Duration::ZERO);
        assert_eq!(empty.queries_per_sec(), 0.0);
    }
}
