//! Graph substrate for the SIMD-X reproduction.
//!
//! This crate provides everything the engine needs below the programming
//! model: edge-list ingestion, compressed sparse row (CSR) storage in the
//! push (out-neighbor) and pull (in-neighbor) orientations the paper's
//! engine requires, synthetic graph generators matching the structural
//! classes of the paper's Table 3 datasets, a registry of scaled-down
//! dataset twins, and structural statistics used by the evaluation
//! harness (degree histograms, diameter estimation, frontier profiles).
//!
//! # Quick example
//!
//! ```
//! use simdx_graph::{datasets, stats};
//!
//! let g = datasets::dataset("RC").expect("known dataset").build(7);
//! assert!(g.num_vertices() > 0);
//! let est = stats::estimate_diameter(g.out(), 4, 0xC0FFEE);
//! assert!(est > 50, "road networks are high-diameter, got {est}");
//! ```

pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod error;
pub mod gen;
pub mod io;
pub mod stats;
pub mod weights;

pub use csr::{Csr, Graph};
pub use edgelist::EdgeList;
pub use error::GraphError;

/// Vertex identifier. The paper uses `uint32` vertex IDs (§7).
pub type VertexId = u32;

/// Edge index type. The paper uses `uint64` indices (§7) so that graphs
/// with more than 4B edges stay addressable.
pub type EdgeIdx = u64;

/// Integral edge weight, as used by SSSP. The paper generates a random
/// weight per edge for unweighted inputs, "similar to Gunrock" (§6).
pub type Weight = u32;
