//! Destination-bucketed grid CSR: the bind-time layout behind
//! work-optimal parallel push ([`crate::config::PushStrategy::Grid`]).
//!
//! The parallel backend's push compute is destination-sharded: worker
//! `s` owns the contiguous vertex range `[fences[s], fences[s + 1])`
//! of `metadata_curr` and must apply exactly the frontier edges whose
//! destination falls inside it, in the serial order. The seed strategy
//! (`PushStrategy::Scan`) gets that order by replaying the *entire*
//! task list per worker and discarding out-of-shard edges — correct,
//! but one iteration traverses `threads × |E_frontier|` edges, so the
//! multicore win is structurally capped.
//!
//! [`GridCsr`] removes the redundant scans. At [`crate::session::
//! Runtime::bind`] time every vertex's out-edges are bucketed by
//! destination shard into one sub-CSR per shard: [`GridCsr::shard`]`(s)`
//! maps a source vertex to the contiguous slice of its edges landing
//! in shard `s`, with the edge order inside each `(source, shard)`
//! cell identical to the original adjacency order. Each edge carries
//! its original offset within the source's adjacency
//! ([`ShardCsr::edge_offs`]) and its weight, so the engine's deferred
//! online-filter records keep their `(task, edge)` sort keys and
//! simulated-thread slots — the replay is **bit-equal** to the scan
//! strategy by construction:
//!
//! * a destination's update sequence depends only on the edges that
//!   target it, ordered by (task index, edge offset) — exactly the
//!   order a shard's cells are iterated;
//! * costs are charged from the *full* per-task degrees
//!   (strategy-independent), so the simulated device sees identical
//!   work either way.
//!
//! Memory cost: the bucketed edges duplicate the push CSR's targets
//! (4 B), add a 4 B per-edge adjacency offset and duplicate weights
//! when present, plus `shards × (V + 1)` cell fences of 4 B — see
//! [`GridCsr::footprint_bytes`]. That buys each push iteration a
//! `threads×` reduction in edge traversals
//! ([`crate::metrics::RunReport::edges_examined`] records it).

use crate::par::{chunk_range, WorkerPanic, WorkerPool};
use simdx_graph::csr::Csr;
use simdx_graph::{VertexId, Weight};

/// One destination shard's sub-CSR: for every source vertex, the
/// contiguous run of its out-edges whose destination falls inside the
/// shard's vertex range, in original adjacency order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCsr {
    /// `V + 1` cell fences: source `v`'s edges into this shard are
    /// `targets[offsets[v] .. offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Edge destinations (all inside the shard's vertex range).
    targets: Vec<VertexId>,
    /// Parallel to `targets`: each edge's offset within the source's
    /// *full* adjacency — the `(task, edge)` record key and bin-slot
    /// input the serial engine derives from the raw CSR index.
    edge_offs: Vec<u32>,
    /// Parallel to `targets` when the source CSR is weighted.
    weights: Option<Vec<Weight>>,
}

impl ShardCsr {
    fn with_capacity(num_vertices: usize, edges: usize, weighted: bool) -> Self {
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        Self {
            offsets,
            targets: Vec::with_capacity(edges),
            edge_offs: Vec::with_capacity(edges),
            weights: weighted.then(|| Vec::with_capacity(edges)),
        }
    }

    /// Raw `[start, end)` index range of `v`'s cell in the shard
    /// arrays.
    #[inline]
    pub fn range(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }

    /// The full bucketed targets array.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Per-edge offsets within the source's full adjacency, parallel
    /// to [`Self::targets`].
    pub fn edge_offs(&self) -> &[u32] {
        &self.edge_offs
    }

    /// The bucketed weights, if the source CSR is weighted.
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Number of edges bucketed into this shard.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

/// The 2D destination-bucketed adjacency: one [`ShardCsr`] per push
/// destination shard (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridCsr {
    shards: Vec<ShardCsr>,
}

impl GridCsr {
    /// Buckets `csr`'s edges by the destination shard the monotone
    /// vertex fences define (`fences[0] == 0`,
    /// `fences.last() == |V|`, one shard per consecutive pair — the
    /// exact [`crate::scratch::PushFences::verts`] shape).
    ///
    /// One pass over the CSR in (source, adjacency) order appends each
    /// edge to its destination shard, so every `(source, shard)` cell
    /// inherits the original edge order — the property the bit-equality
    /// argument rests on. `O(|E| + |V| × shards)` time.
    pub fn build(csr: &Csr, fences: &[u32]) -> Self {
        let shard_of = Self::shard_map(csr, fences);
        Self {
            shards: Self::build_range(csr, &shard_of, fences.len() - 1, 0, csr.num_vertices()),
        }
    }

    /// [`Self::build`] with the source-vertex sweep split over the
    /// worker pool: each worker buckets a contiguous source range into
    /// private partial shards, and concatenating the partials in
    /// worker order reproduces the serial cell order exactly (the
    /// ranges are contiguous and ascending). Used by `Runtime::bind`
    /// so a parallel runtime's bind cost scales with its own width. A
    /// worker panic during the sweep is contained and returned (the
    /// session surfaces it from `Runtime::try_bind`).
    pub(crate) fn build_with_pool(
        csr: &Csr,
        fences: &[u32],
        pool: &WorkerPool,
    ) -> Result<Self, WorkerPanic> {
        let threads = pool.threads();
        let n = csr.num_vertices() as usize;
        let parts = fences.len() - 1;
        let shard_of = Self::shard_map(csr, fences);
        let mut partials: Vec<Vec<ShardCsr>> = (0..threads).map(|_| Vec::new()).collect();
        pool.try_for_each_worker(&mut partials, |w, out| {
            crate::fault::hit(crate::fault::FaultSite::GridBuild);
            let (lo, hi) = chunk_range(n, threads, w);
            *out = Self::build_range(csr, &shard_of, parts, lo as VertexId, hi as VertexId);
        })?;
        // Merge: per shard, concatenate the workers' cell runs and
        // rebase their offsets onto the merged edge array.
        let weighted = csr.is_weighted();
        let mut shards: Vec<ShardCsr> = (0..parts)
            .map(|s| {
                let edges = partials.iter().map(|p| p[s].num_edges()).sum();
                ShardCsr::with_capacity(n, edges, weighted)
            })
            .collect();
        for partial in &partials {
            for (s, part) in partial.iter().enumerate() {
                let sh = &mut shards[s];
                let base = sh.targets.len() as u32;
                sh.targets.extend_from_slice(&part.targets);
                sh.edge_offs.extend_from_slice(&part.edge_offs);
                if let (Some(out), Some(ws)) = (&mut sh.weights, &part.weights) {
                    out.extend_from_slice(ws);
                }
                sh.offsets
                    .extend(part.offsets[1..].iter().map(|&o| base + o));
            }
        }
        Ok(Self { shards })
    }

    /// Destination-vertex → shard-index lookup derived from the
    /// fences, so the bucketing pass classifies each edge in O(1).
    fn shard_map(csr: &Csr, fences: &[u32]) -> Vec<u32> {
        let n = csr.num_vertices() as usize;
        assert!(fences.len() >= 2, "need at least one shard");
        assert_eq!(fences[0], 0, "fences must start at vertex 0");
        assert_eq!(*fences.last().expect("non-empty") as usize, n);
        assert!(fences.windows(2).all(|w| w[0] <= w[1]), "fences monotone");
        assert!(
            csr.num_edges() <= u32::MAX as u64,
            "grid CSR cell fences are u32-indexed"
        );
        let mut shard_of = vec![0u32; n];
        for (s, w) in fences.windows(2).enumerate() {
            for slot in &mut shard_of[w[0] as usize..w[1] as usize] {
                *slot = s as u32;
            }
        }
        shard_of
    }

    /// Buckets the out-edges of sources `[lo, hi)` into `parts` fresh
    /// partial shards (cell fences cover only the local sources).
    fn build_range(
        csr: &Csr,
        shard_of: &[u32],
        parts: usize,
        lo: VertexId,
        hi: VertexId,
    ) -> Vec<ShardCsr> {
        let local = (hi - lo) as usize;
        let weighted = csr.is_weighted();
        // Counting pass: exact per-shard reservations, so the fill
        // pass never reallocates mid-bucketing.
        let mut totals = vec![0usize; parts];
        for v in lo..hi {
            for &t in csr.neighbors(v) {
                totals[shard_of[t as usize] as usize] += 1;
            }
        }
        let mut shards: Vec<ShardCsr> = totals
            .iter()
            .map(|&e| ShardCsr::with_capacity(local, e, weighted))
            .collect();
        let ws = csr.weights();
        for v in lo..hi {
            let (elo, ehi) = csr.range(v);
            for i in elo..ehi {
                let t = csr.targets()[i];
                let sh = &mut shards[shard_of[t as usize] as usize];
                sh.targets.push(t);
                sh.edge_offs.push((i - elo) as u32);
                if let (Some(out), Some(ws)) = (&mut sh.weights, ws) {
                    out.push(ws[i]);
                }
            }
            for sh in &mut shards {
                sh.offsets.push(sh.targets.len() as u32);
            }
        }
        shards
    }

    /// Number of destination shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s sub-CSR.
    #[inline]
    pub fn shard(&self, s: usize) -> &ShardCsr {
        &self.shards[s]
    }

    /// Total bucketed edges (equals the source CSR's edge count).
    pub fn num_edges(&self) -> u64 {
        self.shards.iter().map(|s| s.num_edges() as u64).sum()
    }

    /// Approximate in-memory footprint in bytes: per edge 4 B target +
    /// 4 B adjacency offset (+ 4 B weight when present), plus
    /// `shards × (V + 1)` 4 B cell fences.
    pub fn footprint_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.offsets.len() as u64 * 4
                    + s.targets.len() as u64 * 4
                    + s.edge_offs.len() as u64 * 4
                    + s.weights.as_ref().map_or(0, |w| w.len() as u64 * 4)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::EdgeList;

    fn skewed_csr() -> Csr {
        // Vertex 0 fans out across every shard; the rest form chains
        // with back edges so cells of every shape appear.
        let mut edges = vec![];
        for d in 1..10u32 {
            edges.push((0, d));
        }
        for v in 1..10u32 {
            edges.push((v, (v * 3 + 1) % 10));
            edges.push((v, (v * 7 + 2) % 10));
        }
        Csr::from_edge_list(&EdgeList::from_pairs(edges))
    }

    fn weighted_csr() -> Csr {
        let el = EdgeList::from_weighted(
            6,
            vec![(0, 1), (0, 3), (0, 5), (2, 0), (2, 4), (4, 5), (5, 1)],
            vec![10, 30, 50, 20, 40, 45, 51],
        );
        Csr::from_edge_list(&el)
    }

    /// Reassembling every shard's cell for a source, ordered by the
    /// carried adjacency offsets, must reproduce the source's full
    /// adjacency (targets and weights) exactly.
    fn assert_partitions(csr: &Csr, grid: &GridCsr, fences: &[u32]) {
        assert_eq!(grid.num_edges(), csr.num_edges());
        for v in 0..csr.num_vertices() {
            let mut rebuilt: Vec<(u32, VertexId, Option<Weight>)> = Vec::new();
            for s in 0..grid.num_shards() {
                let sh = grid.shard(s);
                let (lo, hi) = sh.range(v);
                for i in lo..hi {
                    let t = sh.targets()[i];
                    assert!(
                        (fences[s]..fences[s + 1]).contains(&t),
                        "shard {s} holds out-of-range target {t}"
                    );
                    rebuilt.push((sh.edge_offs()[i], t, sh.weights().map(|w| w[i])));
                }
                // Within a cell, edge order is the original adjacency
                // order.
                assert!(sh.edge_offs()[lo..hi].windows(2).all(|w| w[0] < w[1]));
            }
            rebuilt.sort_unstable_by_key(|&(off, _, _)| off);
            let expect: Vec<(u32, VertexId, Option<Weight>)> = csr
                .neighbors(v)
                .iter()
                .enumerate()
                .map(|(k, &t)| (k as u32, t, csr.neighbor_weights(v).map(|w| w[k])))
                .collect();
            assert_eq!(rebuilt, expect, "vertex {v} cells do not partition");
        }
    }

    #[test]
    fn grid_partitions_the_adjacency() {
        let csr = skewed_csr();
        for fences in [vec![0u32, 10], vec![0, 4, 10], vec![0, 3, 3, 7, 10]] {
            let grid = GridCsr::build(&csr, &fences);
            assert_eq!(grid.num_shards(), fences.len() - 1);
            assert_partitions(&csr, &grid, &fences);
        }
    }

    #[test]
    fn grid_carries_weights() {
        let csr = weighted_csr();
        let fences = [0u32, 2, 6];
        let grid = GridCsr::build(&csr, &fences);
        assert_partitions(&csr, &grid, &fences);
        // Spot-check one cell: 0's edges into shard 1 ([2, 6)) are
        // (3, w 30) then (5, w 50), adjacency offsets 1 and 2.
        let sh = grid.shard(1);
        let (lo, hi) = sh.range(0);
        assert_eq!(&sh.targets()[lo..hi], &[3, 5]);
        assert_eq!(&sh.edge_offs()[lo..hi], &[1, 2]);
        assert_eq!(&sh.weights().expect("weighted")[lo..hi], &[30, 50]);
    }

    #[test]
    fn empty_shards_and_sources_are_well_formed() {
        let csr = Csr::from_edge_list(&EdgeList::new(5));
        let grid = GridCsr::build(&csr, &[0, 2, 2, 5]);
        assert_eq!(grid.num_edges(), 0);
        for s in 0..3 {
            for v in 0..5 {
                assert_eq!(grid.shard(s).range(v), (0, 0));
            }
        }
    }

    #[test]
    fn pooled_build_matches_serial_build() {
        let csr = skewed_csr();
        let weighted = weighted_csr();
        for threads in [2usize, 3, 5] {
            let pool = WorkerPool::new(threads);
            for (csr, fences) in [(&csr, vec![0u32, 3, 3, 7, 10]), (&weighted, vec![0, 2, 6])] {
                assert_eq!(
                    GridCsr::build_with_pool(csr, &fences, &pool).expect("clean pool"),
                    GridCsr::build(csr, &fences),
                    "{threads}-thread build diverged"
                );
            }
        }
    }

    #[test]
    fn footprint_accounts_every_array() {
        let csr = weighted_csr();
        let grid = GridCsr::build(&csr, &[0, 3, 6]);
        // 2 shards × 7 fences × 4 B + 7 edges × (4 + 4 + 4) B.
        assert_eq!(grid.footprint_bytes(), 2 * 7 * 4 + 7 * 12);
    }
}
