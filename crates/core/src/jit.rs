//! Just-in-time filter control (§4) and the per-iteration activation log
//! behind Fig. 8.
//!
//! "SIMD-X always activates the online filter first. Once a thread bin
//! overflows, SIMD-X will switch on ballot filter to generate the
//! correct task list for the next iteration." After switching, the
//! online filter keeps recording (bounded at the threshold) so the
//! controller can switch back the moment a frontier fits again — the
//! ≤2.1% overhead Fig. 9(b) measures.

use crate::config::FilterPolicy;
use crate::error::SimdxError;
use crate::filters::FilterKind;
use crate::frontier::ThreadBins;
use simdx_graph::csr::Direction;

/// Per-iteration JIT decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JitController {
    policy: FilterPolicy,
}

impl JitController {
    /// Creates a controller for the given policy.
    pub fn new(policy: FilterPolicy) -> Self {
        Self { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> FilterPolicy {
        self.policy
    }

    /// Whether the engine should record updates into thread bins this
    /// iteration (the ballot-only baseline skips recording entirely).
    pub fn records_bins(&self) -> bool {
        !matches!(self.policy, FilterPolicy::BallotOnly)
    }

    /// Picks the filter for this iteration's task management, given the
    /// bins' state after computation.
    pub fn decide(&self, bins: &ThreadBins, iteration: u32) -> Result<FilterKind, SimdxError> {
        match self.policy {
            FilterPolicy::BallotOnly => Ok(FilterKind::Ballot),
            FilterPolicy::OnlineOnly => {
                if bins.overflowed() {
                    Err(SimdxError::OnlineOverflow { iteration })
                } else {
                    Ok(FilterKind::Online)
                }
            }
            FilterPolicy::Jit => Ok(if bins.overflowed() {
                FilterKind::Ballot
            } else {
                FilterKind::Online
            }),
        }
    }
}

/// One iteration's record in the activation log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// Zero-based iteration index.
    pub iteration: u32,
    /// Scan direction used.
    pub direction: Direction,
    /// Worklist entries processed.
    pub frontier_len: u64,
    /// Scan-direction degree sum of the worklists.
    pub degree_sum: u64,
    /// Filter that produced the next frontier (Fig. 8's color).
    pub filter: FilterKind,
    /// Whether the online bins overflowed during computation.
    pub overflowed: bool,
    /// Simulated cycles this iteration took.
    pub cycles: u64,
}

/// The full per-run activation log (the data behind Fig. 8).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ActivationLog {
    /// One record per iteration, in order.
    pub records: Vec<IterationRecord>,
}

impl ActivationLog {
    /// Number of iterations logged.
    pub fn iterations(&self) -> u32 {
        self.records.len() as u32
    }

    /// Iterations that used the ballot filter.
    pub fn ballot_iterations(&self) -> u32 {
        self.records
            .iter()
            .filter(|r| r.filter == FilterKind::Ballot)
            .count() as u32
    }

    /// Iterations that used the online filter.
    pub fn online_iterations(&self) -> u32 {
        self.iterations() - self.ballot_iterations()
    }

    /// Number of online↔ballot switches across the run.
    pub fn filter_switches(&self) -> u32 {
        self.records
            .windows(2)
            .filter(|w| w[0].filter != w[1].filter)
            .count() as u32
    }

    /// Largest frontier observed.
    pub fn max_frontier(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.frontier_len)
            .max()
            .unwrap_or(0)
    }

    /// A compact pattern string, one character per iteration:
    /// `o` = online, `B` = ballot — the textual form of a Fig. 8 row.
    pub fn pattern(&self) -> String {
        self.records
            .iter()
            .map(|r| match r.filter {
                FilterKind::Online => 'o',
                FilterKind::Ballot => 'B',
            })
            .collect()
    }

    /// A run-length-encoded pattern (`"o×3 B×12 o×5"`), readable for
    /// long road-graph runs.
    pub fn pattern_rle(&self) -> String {
        let mut out = String::new();
        let mut iter = self.records.iter().peekable();
        while let Some(first) = iter.next() {
            let mut count = 1u32;
            while iter.peek().map(|r| r.filter) == Some(first.filter) {
                iter.next();
                count += 1;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let c = match first.filter {
                FilterKind::Online => 'o',
                FilterKind::Ballot => 'B',
            };
            out.push_str(&format!("{c}x{count}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overflowed_bins() -> ThreadBins {
        let mut bins = ThreadBins::new(1, 1);
        bins.record(0, 1);
        bins.record(0, 2);
        assert!(bins.overflowed());
        bins
    }

    #[test]
    fn jit_switches_on_overflow() {
        let jit = JitController::new(FilterPolicy::Jit);
        let empty = ThreadBins::new(1, 4);
        assert_eq!(jit.decide(&empty, 0), Ok(FilterKind::Online));
        assert_eq!(jit.decide(&overflowed_bins(), 3), Ok(FilterKind::Ballot));
        assert!(jit.records_bins());
    }

    #[test]
    fn online_only_errors_on_overflow() {
        let ctl = JitController::new(FilterPolicy::OnlineOnly);
        assert_eq!(
            ctl.decide(&overflowed_bins(), 7),
            Err(SimdxError::OnlineOverflow { iteration: 7 })
        );
    }

    #[test]
    fn ballot_only_never_records() {
        let ctl = JitController::new(FilterPolicy::BallotOnly);
        assert!(!ctl.records_bins());
        assert_eq!(
            ctl.decide(&ThreadBins::new(1, 1), 0),
            Ok(FilterKind::Ballot)
        );
    }

    fn rec(i: u32, f: FilterKind) -> IterationRecord {
        IterationRecord {
            iteration: i,
            direction: Direction::Push,
            frontier_len: 10 * i as u64,
            degree_sum: 0,
            filter: f,
            overflowed: f == FilterKind::Ballot,
            cycles: 100,
        }
    }

    #[test]
    fn log_statistics() {
        let log = ActivationLog {
            records: vec![
                rec(0, FilterKind::Online),
                rec(1, FilterKind::Ballot),
                rec(2, FilterKind::Ballot),
                rec(3, FilterKind::Online),
            ],
        };
        assert_eq!(log.iterations(), 4);
        assert_eq!(log.ballot_iterations(), 2);
        assert_eq!(log.online_iterations(), 2);
        assert_eq!(log.filter_switches(), 2);
        assert_eq!(log.max_frontier(), 30);
        assert_eq!(log.pattern(), "oBBo");
        assert_eq!(log.pattern_rle(), "ox1 Bx2 ox1");
    }

    #[test]
    fn empty_log() {
        let log = ActivationLog::default();
        assert_eq!(log.iterations(), 0);
        assert_eq!(log.filter_switches(), 0);
        assert_eq!(log.pattern(), "");
        assert_eq!(log.pattern_rle(), "");
    }

    #[test]
    fn error_display() {
        let e = SimdxError::OnlineOverflow { iteration: 5 };
        assert!(e.to_string().contains("iteration 5"));
        let e = SimdxError::IterationLimit { max_iterations: 9 };
        assert!(e.to_string().contains('9'));
    }
}
