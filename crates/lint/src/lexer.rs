//! A minimal hand-rolled Rust lexer: just enough token structure for
//! the rule passes to reason about *code* without being fooled by
//! comments and string literals.
//!
//! No crates.io access in this workspace (see `crates/compat/`), so no
//! `syn` — the lexer handles exactly the constructs that would
//! otherwise cause false positives/negatives on this repo's corpus:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** doc */`);
//! * string literals with escapes, byte strings, and raw strings with
//!   arbitrary `#` fencing (`r"…"`, `r#"…"#`, `br##"…"##`, `c"…"`) —
//!   an `unsafe` inside any of them is text, not a keyword;
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * identifiers, numbers and single-char punctuation.
//!
//! Tokens carry their byte span and 1-based start/end lines, so rule
//! passes can relate code tokens to nearby comments.

/// What a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a` (not a char literal).
    Lifetime,
    /// Numeric literal (loose: digits plus trailing alphanumerics).
    Number,
    /// String, byte-string, raw-string or char literal.
    Str,
    /// `// …` (`doc` for `///` and `//!`).
    LineComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// `/* … */`, nesting handled (`doc` for `/** … */` and `/*! … */`).
    BlockComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// Any other single character.
    Punct(char),
}

/// One token: kind plus byte span and 1-based line numbers.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based line of the last character (differs from `line` only
    /// for block comments and multi-line strings).
    pub end_line: u32,
}

impl Tok {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// Whether this token is a doc comment (`///`, `//!`, `/** */`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { doc: true } | TokKind::BlockComment { doc: true }
        )
    }
}

/// Tokenizes `src`. Never panics on malformed input: unterminated
/// constructs simply extend to end of file.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    /// `(byte_offset, char)` pairs; `i` indexes into this.
    chars: Vec<(usize, char)>,
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.char_indices().collect(),
            i: 0,
            line: 1,
            toks: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn offset(&self, idx: usize) -> usize {
        self.chars.get(idx).map_or(self.src.len(), |&(off, _)| off)
    }

    /// Advances one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, start_idx: usize, start_line: u32) {
        self.toks.push(Tok {
            kind,
            start: self.offset(start_idx),
            end: self.offset(self.i),
            line: start_line,
            end_line: self.line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let start = self.i;
            let start_line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    let doc = matches!(self.peek(2), Some('/') | Some('!'))
                        // `////…` dividers are plain comments, not doc.
                        && self.peek(3) != Some('/');
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.push(TokKind::LineComment { doc }, start, start_line);
                }
                '/' if self.peek(1) == Some('*') => {
                    let doc =
                        matches!(self.peek(2), Some('*') | Some('!')) && self.peek(3) != Some('/'); // `/**/` is empty, not doc
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                self.bump();
                                self.bump();
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break, // unterminated: EOF closes
                        }
                    }
                    self.push(TokKind::BlockComment { doc }, start, start_line);
                }
                '"' => {
                    self.lex_string();
                    self.push(TokKind::Str, start, start_line);
                }
                '\'' => {
                    self.lex_char_or_lifetime(start, start_line);
                }
                c if c.is_alphabetic() || c == '_' => {
                    // Identifier — unless it is a raw/byte string prefix
                    // (r, b, br, rb is invalid but treat like ident, c,
                    // cr) glued to a quote or `#`-fence.
                    let mut j = self.i;
                    while let Some(&(_, c)) = self.chars.get(j) {
                        if c.is_alphanumeric() || c == '_' {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    let word_end = self.offset(j);
                    let word = &self.src[self.offset(self.i)..word_end];
                    let next = self.chars.get(j).map(|&(_, c)| c);
                    let is_raw_prefix =
                        matches!(word, "r" | "br" | "cr") && matches!(next, Some('"') | Some('#'));
                    let is_plain_prefix = matches!(word, "b" | "c") && next == Some('"');
                    if is_raw_prefix {
                        // Consume prefix, fences, then raw body.
                        while self.i < j {
                            self.bump();
                        }
                        let mut fences = 0usize;
                        while self.peek(0) == Some('#') {
                            fences += 1;
                            self.bump();
                        }
                        if self.peek(0) == Some('"') {
                            self.bump();
                            self.lex_raw_body(fences);
                            self.push(TokKind::Str, start, start_line);
                        } else {
                            // `r#ident` raw identifier: emit as Ident.
                            while let Some(c) = self.peek(0) {
                                if c.is_alphanumeric() || c == '_' {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                            self.push(TokKind::Ident, start, start_line);
                        }
                    } else if is_plain_prefix {
                        while self.i < j {
                            self.bump();
                        }
                        self.bump(); // opening quote
                        self.lex_string_body();
                        self.push(TokKind::Str, start, start_line);
                    } else {
                        while self.i < j {
                            self.bump();
                        }
                        self.push(TokKind::Ident, start, start_line);
                    }
                }
                c if c.is_ascii_digit() => {
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Number, start, start_line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), start, start_line);
                }
            }
        }
        self.toks
    }

    /// From the opening quote (not yet consumed).
    fn lex_string(&mut self) {
        self.bump(); // opening quote
        self.lex_string_body();
    }

    /// After the opening quote: consume escaped body + closing quote
    /// (an unescaped `"` always closes; escapes are consumed in pairs
    /// so `\"` never reaches the closing arm).
    fn lex_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// After `r#*"`: consume until `"` followed by `fences` hashes.
    fn lex_raw_body(&mut self, fences: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for k in 0..fences {
                    if self.peek(k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..fences {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// At a `'`: char literal (`'a'`, `'\n'`, `'\''`) or lifetime
    /// (`'a`, `'static`, `'_`).
    fn lex_char_or_lifetime(&mut self, start: usize, start_line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: `'\n'`, `'\''`, `'\u{1F600}'`.
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Str, start, start_line);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                // `'x'` — a one-char literal (covers `'_'` too).
                let _ = c;
                self.bump();
                self.bump();
                self.push(TokKind::Str, start, start_line);
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Lifetime: consume the identifier.
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, start, start_line);
            }
            _ => {
                self.push(TokKind::Punct('\''), start, start_line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn plain_code_tokenizes() {
        let src = "pub unsafe fn f(x: u32) -> u32 { x + 1 }";
        assert_eq!(
            idents(src),
            vec!["pub", "unsafe", "fn", "f", "x", "u32", "u32", "x"]
        );
    }

    #[test]
    fn line_comments_swallow_keywords() {
        let src = "// unsafe Ordering::Relaxed\nlet x = 1;";
        assert_eq!(idents(src), vec!["let", "x"]);
        let toks = tokenize(src);
        assert!(matches!(toks[0].kind, TokKind::LineComment { doc: false }));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2, "code resumes on line 2");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn g() {}";
        assert_eq!(idents(src), vec!["fn", "g"]);
        let toks = tokenize(src);
        assert!(matches!(toks[0].kind, TokKind::BlockComment { doc: false }));
        assert!(toks[0].text(src).contains("inner unsafe"));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let src = "/// # Safety\n//! inner\n/** block */\n//// divider\nfn f() {}";
        let toks = tokenize(src);
        assert!(toks[0].is_doc_comment());
        assert!(toks[1].is_doc_comment());
        assert!(toks[2].is_doc_comment());
        assert!(!toks[3].is_doc_comment(), "//// is a plain divider");
    }

    #[test]
    fn strings_swallow_slashes_and_keywords() {
        let src = r#"let url = "https://example.com/unsafe"; let b = 1;"#;
        assert_eq!(idents(src), vec!["let", "url", "let", "b"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let src = r#"let s = "she said \"unsafe\""; let t = 2;"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"contains "unsafe" and // comment"#; let u = 3;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "u"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"unsafe"; let c = br#"Ordering::Relaxed"#; x"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"Ordering".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\\''; let z = 'z'; let u = '_'; }";
        let toks = tokenize(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3, "'\\''' , 'z' and '_' are char literals");
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#type = 1;";
        assert_eq!(idents(src), vec!["let", "r#type"]);
    }

    #[test]
    fn multiline_tokens_track_end_line() {
        let src = "/* a\nb\nc */ \"x\ny\" fn f() {}";
        let toks = tokenize(src);
        assert_eq!((toks[0].line, toks[0].end_line), (1, 3));
        assert_eq!((toks[1].line, toks[1].end_line), (3, 4));
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_constructs_do_not_hang_or_panic() {
        for src in ["/* never closed", "\"never closed", "r#\"never closed", "'"] {
            let _ = tokenize(src);
        }
    }
}
