//! The cycle cost model.
//!
//! [`Cost`] is the unit of work the engine charges to a scheduling slot
//! (a simulated thread, warp or CTA); [`CostModel`] converts it to
//! cycles. The constants are calibration knobs, not measurements — they
//! are chosen so that the *ratios* the paper's evaluation depends on
//! hold: an uncoalesced access costs a full transaction while a
//! coalesced one amortizes over 32 lanes; an atomic costs more than a
//! plain write and serializes under contention; a kernel launch costs
//! microseconds while a barrier costs sub-microsecond.

use serde::{Deserialize, Serialize};

/// Simulated cycles.
pub type CycleCount = u64;

/// Work performed by one scheduled task, in model units.
///
/// Element counts are the task's *total* work. `width` is the number of
/// lanes cooperating on the task (1 for a thread task, 32 for a warp
/// task, the CTA width for a CTA task): elapsed cycles divide by it,
/// while memory traffic — which is physical bytes moved — does not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cost {
    /// ALU operations (comparisons, adds, lane shuffles).
    pub compute_ops: u64,
    /// Elements read with warp-coalesced addressing.
    pub coalesced_reads: u64,
    /// Elements read with scattered addressing (one transaction each).
    pub random_reads: u64,
    /// Elements written (assumed scattered unless noted otherwise).
    pub writes: u64,
    /// Atomic read-modify-write operations.
    pub atomics: u64,
    /// Extra serialization on atomics: number of *conflicting* ops that
    /// had to retry/serialize behind this slot's atomics.
    pub atomic_conflicts: u64,
    /// Cooperating lanes executing this task in parallel.
    pub width: u64,
}

impl Default for Cost {
    fn default() -> Self {
        Self {
            compute_ops: 0,
            coalesced_reads: 0,
            random_reads: 0,
            writes: 0,
            atomics: 0,
            atomic_conflicts: 0,
            width: 1,
        }
    }
}

impl Cost {
    /// A pure-compute cost.
    pub fn compute(ops: u64) -> Self {
        Self {
            compute_ops: ops,
            ..Self::default()
        }
    }

    /// Builder: sets the cooperating lane count.
    pub fn with_width(mut self, width: u64) -> Self {
        self.width = width.max(1);
        self
    }

    /// Component-wise sum (keeps the wider of the two widths).
    pub fn add(&self, other: &Cost) -> Cost {
        Cost {
            compute_ops: self.compute_ops + other.compute_ops,
            coalesced_reads: self.coalesced_reads + other.coalesced_reads,
            random_reads: self.random_reads + other.random_reads,
            writes: self.writes + other.writes,
            atomics: self.atomics + other.atomics,
            atomic_conflicts: self.atomic_conflicts + other.atomic_conflicts,
            width: self.width.max(other.width),
        }
    }

    /// Bytes this cost moves through global memory.
    ///
    /// Coalesced elements cost their 4 bytes. Scattered accesses fetch a
    /// 128-byte transaction but the L2 cache recovers most of the waste
    /// on graph workloads (neighbor metadata exhibits strong reuse), so
    /// they are charged a quarter transaction; atomics, which bypass
    /// part of the hierarchy, are charged half.
    pub fn bytes(&self) -> u64 {
        self.coalesced_reads * 4
            + self.random_reads * crate::memory::TRANSACTION_BYTES / 4
            + self.writes * crate::memory::TRANSACTION_BYTES / 4
            + self.atomics * crate::memory::TRANSACTION_BYTES / 2
    }
}

/// Converts [`Cost`] units to cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per ALU op.
    pub cycles_per_op: u64,
    /// Cycles per coalesced element (transaction cost amortized over a
    /// warp: 128 B / 32 lanes at ~1 cycle per 4 B element).
    pub cycles_per_coalesced_elem: u64,
    /// Cycles per scattered element (a whole transaction's latency slice).
    pub cycles_per_random_elem: u64,
    /// Cycles per written element.
    pub cycles_per_write: u64,
    /// Base cycles per atomic.
    pub cycles_per_atomic: u64,
    /// Additional cycles per conflicting atomic (serialization).
    pub cycles_per_atomic_conflict: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cycles_per_op: 1,
            cycles_per_coalesced_elem: 1,
            cycles_per_random_elem: 16,
            cycles_per_write: 4,
            cycles_per_atomic: 32,
            cycles_per_atomic_conflict: 24,
        }
    }
}

impl CostModel {
    /// Raw cycles for `cost`'s total work, ignoring lane cooperation.
    pub fn raw_cycles(&self, cost: &Cost) -> CycleCount {
        cost.compute_ops * self.cycles_per_op
            + cost.coalesced_reads * self.cycles_per_coalesced_elem
            + cost.random_reads * self.cycles_per_random_elem
            + cost.writes * self.cycles_per_write
            + cost.atomics * self.cycles_per_atomic
            + cost.atomic_conflicts * self.cycles_per_atomic_conflict
    }

    /// Cycles charged to the owning slot: total work divided across the
    /// task's cooperating lanes.
    pub fn cycles(&self, cost: &Cost) -> CycleCount {
        self.raw_cycles(cost).div_ceil(cost.width.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_reads_cost_more_than_coalesced() {
        let m = CostModel::default();
        let coalesced = Cost {
            coalesced_reads: 32,
            ..Default::default()
        };
        let random = Cost {
            random_reads: 32,
            ..Default::default()
        };
        assert!(m.cycles(&random) >= m.cycles(&coalesced) * 8);
    }

    #[test]
    fn atomics_cost_more_than_writes() {
        let m = CostModel::default();
        let w = Cost {
            writes: 10,
            ..Default::default()
        };
        let a = Cost {
            atomics: 10,
            ..Default::default()
        };
        assert!(m.cycles(&a) > m.cycles(&w));
    }

    #[test]
    fn conflicts_serialize() {
        let m = CostModel::default();
        let free = Cost {
            atomics: 10,
            ..Default::default()
        };
        let contended = Cost {
            atomics: 10,
            atomic_conflicts: 9,
            ..Default::default()
        };
        assert!(m.cycles(&contended) > m.cycles(&free));
    }

    #[test]
    fn add_is_componentwise() {
        let a = Cost {
            compute_ops: 1,
            coalesced_reads: 2,
            random_reads: 3,
            writes: 4,
            atomics: 5,
            atomic_conflicts: 6,
            ..Cost::default()
        };
        let s = a.add(&a);
        assert_eq!(s.compute_ops, 2);
        assert_eq!(s.atomic_conflicts, 12);
        let m = CostModel::default();
        assert_eq!(m.cycles(&s), 2 * m.cycles(&a));
    }

    #[test]
    fn zero_cost_is_zero_cycles() {
        assert_eq!(CostModel::default().cycles(&Cost::default()), 0);
    }

    #[test]
    fn width_divides_cycles_not_bytes() {
        let m = CostModel::default();
        let narrow = Cost {
            random_reads: 64,
            ..Cost::default()
        };
        let wide = narrow.with_width(32);
        assert_eq!(m.cycles(&narrow), 32 * m.cycles(&wide));
        assert_eq!(narrow.bytes(), wide.bytes());
    }
}
