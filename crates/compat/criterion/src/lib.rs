//! Offline stub for the subset of `criterion` the workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups and a
//! `Bencher::iter` that reports the median of timed samples.
//!
//! No statistics beyond min/median/mean, no HTML reports, no warm-up
//! tuning — just enough to keep `cargo bench` runnable and its output
//! human-comparable across commits in an environment without crates.io.
//! See `crates/compat/README.md`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function/param`.
    pub fn new(function: impl Display, param: impl Display) -> Self {
        Self {
            name: format!("{function}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        std_black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn run_one(full_name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench: {:<48} median {:>12.3?} ({} samples)",
        full_name, b.last_median, samples
    );
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single benchmark function.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (printing happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one runner, mirroring criterion's
/// macro signature.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
