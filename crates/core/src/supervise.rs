//! Run supervision: cancellation, deadlines and cycle budgets.
//!
//! The engine loop iterates until convergence — on adversarial or
//! misconfigured inputs that is an unbounded loop, which a service
//! answering concurrent queries cannot tolerate. This module provides
//! the bounds:
//!
//! * [`CancelToken`] — a shareable atomic flag. Hand a clone to the
//!   query (`RunBuilder::cancel_token`) and keep one; `cancel()` from
//!   any thread makes the run return [`SimdxError::Cancelled`] at the
//!   next supervision check.
//! * `RunBuilder::deadline(Duration)` — a wall-clock bound checked at
//!   iteration boundaries *and* every [`POLL_STRIDE`] tasks inside the
//!   compute sweeps, so a single huge iteration cannot run away.
//! * `RunBuilder::cycle_budget(u64)` — a bound on *simulated* device
//!   cycles, checked at iteration boundaries (the executor's cycle
//!   counter only advances between kernels).
//!
//! Every abort is a typed [`SimdxError`] carrying a [`RunProgress`]
//! summary (iterations completed, edges examined, wall-clock elapsed),
//! and an aborted run leaves the session fully reusable: scratch is
//! reset at the next `execute()` entry, so the following clean run is
//! bit-equal to a fresh engine (`tests/fault_injection.rs`,
//! `tests/properties.rs`).
//!
//! Supervision is entirely host-side: it never alters metadata,
//! activation logs or simulated cycle counts of a run that completes,
//! so the bit-equality contract is untouched. Its wall-clock cost is
//! measured by the `snapshot` bin (the `supervision` group in
//! `BENCH_engine.json`) and pinned ≤ 2% on the reference run.
//!
//! Under concurrent serving ([`crate::service::QueryPool`]) every
//! query gets its own [`Supervisor`], built on the serving thread from
//! the submitter's token/deadline — so `CancelToken` must be usable
//! across threads and `Supervisor` shareable into pool workers; both
//! are `Sync` (asserted at the bottom of this module). A service
//! deadline is measured from *submission*: time spent queued shrinks
//! the in-engine allowance.

use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Arc;

use crate::error::SimdxError;

/// How often the compute sweeps poll for cancellation/deadline: once
/// every this many tasks (frontier vertices), per worker. Coarse
/// enough that an `Instant::now()` call never shows up in a profile,
/// fine enough that a hub-dominated iteration is interrupted long
/// before it finishes.
pub(crate) const POLL_STRIDE: usize = 256;

/// A shareable cancellation flag for in-flight runs.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag; `cancel()` is sticky — a cancelled token stays cancelled, so
/// reuse a fresh token per query if you pool them.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Safe from any thread; the engine observes
    /// it at the next supervision check and returns
    /// [`SimdxError::Cancelled`].
    pub fn cancel(&self) {
        // ORDERING: the flag is a standalone control signal — no data
        // is published alongside it, so there is nothing for a stronger
        // ordering to sequence. Observers only need eventual visibility
        // (the next supervision check or the one after), and the store
        // is sticky/monotone, so Relaxed cannot lose or reorder a
        // cancellation. Validated under enumerated interleavings by
        // `tests/model_interleave.rs` (cancel_token scenarios).
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: pairs with the Relaxed store in `cancel`; the flag
        // is monotone (false -> true once), so a stale read only delays
        // the abort by one poll interval — it can never un-cancel.
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a run stopped before convergence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// A [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline expired.
    DeadlineExceeded,
    /// The simulated-cycle budget was exhausted.
    BudgetExhausted,
    /// A worker panicked (the run may have been retried serially under
    /// [`crate::config::DegradePolicy::RetrySerial`]).
    WorkerPanic,
}

/// Partial-progress summary carried by every supervision abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunProgress {
    /// BSP iterations fully completed before the abort.
    pub iterations: u32,
    /// Host-side compute-kernel edge traversals performed so far (same
    /// meter as [`crate::metrics::RunReport::edges_examined`]).
    pub edges_examined: u64,
    /// Wall-clock time from `execute()` entry to the abort.
    pub elapsed: Duration,
}

/// Per-run supervision state: the limits a query was built with plus
/// the check counter. Shared by reference into every parallel worker
/// closure (all state is atomic or immutable).
#[derive(Debug)]
pub(crate) struct Supervisor {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    cycle_budget: Option<u64>,
    /// Pool-wide shutdown token ([`crate::service::CloseMode::Abort`]):
    /// observed exactly like `cancel`, but shared by every query of a
    /// closing `QueryPool` rather than owned by one submitter.
    shutdown: Option<CancelToken>,
    started: Instant,
    /// Supervision checks performed (boundary checks + in-sweep polls),
    /// reported as [`crate::metrics::RunReport::supervision_checks`].
    checks: AtomicU64,
}

impl Supervisor {
    /// Builds the supervisor for one query; `started` is now.
    pub fn new(
        cancel: Option<CancelToken>,
        deadline: Option<Duration>,
        cycle_budget: Option<u64>,
    ) -> Self {
        let started = Instant::now();
        Self {
            cancel,
            deadline: deadline.map(|d| started + d),
            cycle_budget,
            shutdown: None,
            started,
            checks: AtomicU64::new(0),
        }
    }

    /// Attaches a pool-wide shutdown token: once cancelled (from any
    /// thread), this run aborts at its next supervision check with
    /// [`SimdxError::Cancelled`] — indistinguishable from a per-query
    /// cancellation, which is the point: an abort-mode pool shutdown
    /// reuses the whole cancellation path, checkpoints included.
    pub fn with_shutdown(mut self, token: CancelToken) -> Self {
        self.shutdown = Some(token);
        self
    }

    /// A supervisor with no limits: every check is a cheap early-out.
    #[cfg(test)]
    pub fn unlimited() -> Self {
        Self::new(None, None, None)
    }

    /// Whether any in-sweep-pollable limit (token, shutdown or
    /// deadline) is set.
    #[inline]
    fn polls(&self) -> bool {
        self.cancel.is_some() || self.shutdown.is_some() || self.deadline.is_some()
    }

    /// In-sweep poll: `true` means the sweep should stop early (the
    /// iteration-boundary check will surface the typed error). Called
    /// every [`POLL_STRIDE`] tasks from the compute loops — including
    /// from pool workers — so it must stay cheap: with no token and no
    /// deadline it is a two-branch early-out.
    #[inline]
    pub fn poll(&self) -> bool {
        if !self.polls() {
            return false;
        }
        // ORDERING: `checks` is a diagnostic counter summed into the
        // run report after the run has joined all workers; it guards no
        // data, so Relaxed increments are sufficient (and keep the
        // in-sweep poll off the coherence critical path).
        self.checks.fetch_add(1, Ordering::Relaxed);
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        if self
            .shutdown
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Full boundary check (token, deadline, then cycle budget against
    /// `cycles`). `None` means keep running.
    pub fn check_boundary(&self, cycles: u64) -> Option<AbortReason> {
        if !self.polls() && self.cycle_budget.is_none() {
            return None;
        }
        // ORDERING: diagnostic counter; see `poll`.
        self.checks.fetch_add(1, Ordering::Relaxed);
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(AbortReason::Cancelled);
        }
        if self
            .shutdown
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            return Some(AbortReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(AbortReason::DeadlineExceeded);
        }
        if self.cycle_budget.is_some_and(|b| cycles >= b) {
            return Some(AbortReason::BudgetExhausted);
        }
        None
    }

    /// Mid-iteration re-check: token, shutdown and deadline only. The
    /// simulated-cycle budget is deliberately excluded — it is enforced
    /// at iteration boundaries only, so a budget abort always coincides
    /// with a resumable boundary snapshot and a resumed run (whose
    /// budget is granted on top of the checkpoint's spent cycles) is
    /// guaranteed to clear the iteration it re-executes instead of
    /// re-tripping mid-sweep at the same cycle count forever.
    pub fn check_mid_iteration(&self) -> Option<AbortReason> {
        if !self.polls() {
            return None;
        }
        // ORDERING: diagnostic counter; see `poll`.
        self.checks.fetch_add(1, Ordering::Relaxed);
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(AbortReason::Cancelled);
        }
        if self
            .shutdown
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            return Some(AbortReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(AbortReason::DeadlineExceeded);
        }
        None
    }

    /// Supervision checks performed so far.
    pub fn checks(&self) -> u64 {
        // ORDERING: read after the run's workers have been joined (or
        // from the owning thread mid-run for a monotone lower bound);
        // a diagnostic counter needs no synchronization.
        self.checks.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the query started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The typed error for an abort observed at a supervision check.
    pub fn abort_error(
        &self,
        reason: AbortReason,
        iterations: u32,
        edges_examined: u64,
    ) -> SimdxError {
        let progress = RunProgress {
            iterations,
            edges_examined,
            elapsed: self.elapsed(),
        };
        match reason {
            AbortReason::Cancelled => SimdxError::Cancelled { progress },
            AbortReason::DeadlineExceeded => SimdxError::DeadlineExceeded { progress },
            AbortReason::BudgetExhausted => SimdxError::BudgetExhausted {
                budget: self.cycle_budget.unwrap_or(0),
                progress,
            },
            // Panics are surfaced by the pool, not by a supervision
            // check; mapping one here would lose the worker index.
            AbortReason::WorkerPanic => unreachable!("worker panics carry their own error"),
        }
    }
}

// A `CancelToken` is cancelled from submitter threads while serving
// threads poll it, and a `Supervisor` is shared by reference into
// every pool worker of its query — both must stay `Send + Sync` for
// `crate::service` to compile at all; the assertion pins the contract
// where the types live.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CancelToken>();
    assert_send_sync::<Supervisor>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled(), "cancel is idempotent");
    }

    #[test]
    fn unlimited_supervisor_never_trips_and_never_counts() {
        let sup = Supervisor::unlimited();
        assert!(!sup.poll());
        assert_eq!(sup.check_boundary(u64::MAX), None);
        assert_eq!(sup.checks(), 0, "inactive supervision costs nothing");
    }

    #[test]
    fn cancel_trips_poll_and_boundary() {
        let token = CancelToken::new();
        let sup = Supervisor::new(Some(token.clone()), None, None);
        assert!(!sup.poll());
        assert_eq!(sup.check_boundary(0), None);
        token.cancel();
        assert!(sup.poll());
        assert_eq!(sup.check_boundary(0), Some(AbortReason::Cancelled));
        assert!(sup.checks() >= 4);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let sup = Supervisor::new(None, Some(Duration::ZERO), None);
        assert!(sup.poll());
        assert_eq!(sup.check_boundary(0), Some(AbortReason::DeadlineExceeded));
    }

    #[test]
    fn budget_checked_only_at_boundaries() {
        let sup = Supervisor::new(None, None, Some(100));
        assert!(!sup.poll(), "budget is not in-sweep pollable");
        assert_eq!(sup.check_boundary(99), None);
        assert_eq!(sup.check_boundary(100), Some(AbortReason::BudgetExhausted));
        let err = sup.abort_error(AbortReason::BudgetExhausted, 7, 42);
        match err {
            SimdxError::BudgetExhausted { budget, progress } => {
                assert_eq!(budget, 100);
                assert_eq!(progress.iterations, 7);
                assert_eq!(progress.edges_examined, 42);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn shutdown_token_trips_like_cancellation() {
        let shutdown = CancelToken::new();
        let sup = Supervisor::new(None, None, None).with_shutdown(shutdown.clone());
        assert!(!sup.poll());
        assert_eq!(sup.check_boundary(0), None);
        shutdown.cancel();
        assert!(sup.poll());
        assert_eq!(sup.check_boundary(0), Some(AbortReason::Cancelled));
    }

    #[test]
    fn cancel_takes_priority_over_deadline_and_budget() {
        let token = CancelToken::new();
        token.cancel();
        let sup = Supervisor::new(Some(token), Some(Duration::ZERO), Some(0));
        assert_eq!(sup.check_boundary(u64::MAX), Some(AbortReason::Cancelled));
    }
}
