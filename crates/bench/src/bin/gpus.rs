//! Regenerates **§7.3**: performance of SIMD-X, Gunrock and CuSha when
//! moving from K20 to K40 to P100. The paper's claim: SIMD-X scales
//! best (1.7× / 5.1× over its K20 time) because the deadlock-free fused
//! kernels are re-configured to each device's occupancy, while Gunrock
//! (1.1× / 1.7×) and CuSha (1.2× / 3.5×) improve less.

use simdx_algos::bfs::Bfs;
use simdx_baselines::cusha::{CushaConfig, CushaEngine};
use simdx_baselines::gunrock::{GunrockConfig, GunrockEngine};
use simdx_bench::{load, print_table, run_one, source};
use simdx_core::EngineConfig;
use simdx_gpu::DeviceSpec;

/// Graphs for the device sweep (one per structural class).
const SWEEP: [&str; 4] = ["LJ", "ER", "KR", "PK"];

fn main() {
    let devices = [DeviceSpec::k20(), DeviceSpec::k40(), DeviceSpec::p100()];
    let mut header: Vec<String> = vec!["System".into()];
    header.extend(devices.iter().map(|d| d.name.to_string()));
    header.push("K40/K20".into());
    header.push("P100/K20".into());

    let mut rows = Vec::new();
    for system in ["SIMD-X", "Gunrock", "CuSha"] {
        // Geometric mean BFS time across the sweep graphs per device.
        let mut per_device = Vec::new();
        for device in &devices {
            let mut log_sum = 0.0f64;
            for abbrev in SWEEP {
                let (_, g) = load(abbrev);
                let src = source(&g);
                let ms = match system {
                    "SIMD-X" => {
                        let cfg = EngineConfig::default().with_device(device.clone());
                        run_one(&g, cfg, Bfs::new(src))
                            .expect("simdx bfs")
                            .report
                            .elapsed_ms
                    }
                    "Gunrock" => {
                        let cfg = GunrockConfig {
                            device: device.clone(),
                            ..GunrockConfig::default()
                        };
                        GunrockEngine::new(Bfs::new(src), &g, cfg)
                            .run()
                            .expect("gunrock bfs")
                            .report
                            .elapsed_ms
                    }
                    _ => {
                        let cfg = CushaConfig {
                            device: device.clone(),
                            ..CushaConfig::default()
                        };
                        CushaEngine::new(Bfs::new(src), &g, cfg)
                            .run()
                            .expect("cusha bfs")
                            .report
                            .elapsed_ms
                    }
                };
                log_sum += ms.ln();
            }
            per_device.push((log_sum / SWEEP.len() as f64).exp());
        }
        let mut row = vec![system.to_string()];
        row.extend(per_device.iter().map(|ms| format!("{ms:.2}")));
        row.push(format!("{:.2}x", per_device[0] / per_device[1]));
        row.push(format!("{:.2}x", per_device[0] / per_device[2]));
        rows.push(row);
    }
    print_table(
        "Section 7.3: BFS geomean ms per device, and improvement over K20",
        &header,
        &rows,
    );
    println!("\nPaper: SIMD-X 1.7x/5.1x, Gunrock 1.1x/1.7x, CuSha 1.2x/3.5x over K20.");
}
