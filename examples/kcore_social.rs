//! k-Core decomposition of a social-network twin — the graph-mining
//! workload §6 motivates with visualization, here used to find the
//! densely connected community core at several k values. The five
//! queries share one bound session, so the scratch arenas and worker
//! pool are reused across the whole k sweep.
//!
//! ```text
//! cargo run --release --example kcore_social
//! ```

use simdx::algos::{kcore, KCore};
use simdx::core::{EngineConfig, Runtime, SimdxError};
use simdx::graph::datasets;

fn main() -> Result<(), SimdxError> {
    let spec = datasets::dataset("OR").expect("Orkut twin");
    let graph = spec.build(3);
    println!(
        "Orkut twin: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.out().max_degree()
    );

    let runtime = Runtime::new(EngineConfig::default())?;
    let bound = runtime.bind(&graph);

    println!(
        "\n{:>4}  {:>9}  {:>6}  {:>10}  filter pattern",
        "k", "survivors", "iters", "sim ms"
    );
    for k in [4, 8, 16, 32, 64] {
        let r = bound.run(KCore::new(k)).execute()?;
        let survivors = kcore::survivors(&r.meta).iter().filter(|&&s| s).count();
        println!(
            "{k:>4}  {survivors:>9}  {:>6}  {:>10.2}  {}",
            r.report.iterations,
            r.report.elapsed_ms,
            r.report.log.pattern_rle()
        );
    }
    println!(
        "\nThe ballot filter fires only in the first iterations (mass \
         deletions), after which the shrinking cascade stays online — \
         the Fig. 8 k-Core pattern."
    );
    Ok(())
}
