//! Run-level reports returned by the engine.

use crate::jit::ActivationLog;
use simdx_gpu::executor::ExecutorStats;

/// Everything the evaluation harness needs from one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Device name.
    pub device: &'static str,
    /// BSP iterations executed.
    pub iterations: u32,
    /// Simulated wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Raw executor statistics (cycles, launches, barriers, traffic).
    pub stats: ExecutorStats,
    /// Per-iteration activation log (Fig. 8 data).
    pub log: ActivationLog,
}

impl RunReport {
    /// Kernel launches charged during the run.
    pub fn kernel_launches(&self) -> u64 {
        self.stats.kernel_launches
    }

    /// Global-barrier passes charged during the run.
    pub fn barrier_passes(&self) -> u64 {
        self.stats.barrier_passes
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.stats.total_cycles
    }

    /// Iterations that used the ballot filter.
    pub fn ballot_iterations(&self) -> u32 {
        self.log.ballot_iterations()
    }
}

/// A finished run: final metadata plus its report.
#[derive(Clone, Debug)]
pub struct RunResult<M> {
    /// Final per-vertex metadata (the "distance array" of Fig. 1).
    pub meta: Vec<M>,
    /// Performance and behaviour report.
    pub report: RunReport,
}
