//! Graph algorithms expressed in the ACC programming model, plus the
//! sequential reference implementations that validate them.
//!
//! The paper's §6 algorithms — BFS, SSSP, PageRank, k-Core and Belief
//! Propagation — each fit in tens of lines of `AccProgram`
//! implementation, reproducing the "around 100 lines of C++ code"
//! programmability claim (§7). Connected components ([`wcc`], the
//! voting-class example of §3.2) and SpMV (from Fig. 3) round out the
//! set.
//!
//! # Quick example
//!
//! One-shot helpers (`bfs::run`, `sssp::run`, ...) cover single
//! queries; repeated queries should go through the session API
//! (`simdx_core::session::Runtime`) or the `run_batch` helpers, which
//! amortize the engine's pool and scratch across a whole seed batch.
//!
//! ```
//! use simdx_algos::{bfs, reference, Bfs};
//! use simdx_core::{EngineConfig, Runtime};
//!
//! use simdx_graph::{EdgeList, Graph};
//!
//! let g = Graph::undirected_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//! let result = bfs::run(&g, 0, EngineConfig::unscaled()).unwrap();
//! assert_eq!(result.meta, reference::bfs(g.out(), 0));
//!
//! // Amortized multi-source form: one bound session, three queries.
//! let runtime = Runtime::new(EngineConfig::unscaled()).unwrap();
//! let batch = runtime
//!     .bind(&g)
//!     .run_batch(Bfs::new(0), &[0, 1, 2])
//!     .unwrap();
//! assert_eq!(batch[0].meta, result.meta);
//! ```

pub mod bfs;
pub mod bp;
pub mod kcore;
pub mod pagerank;
pub mod reference;
pub mod spmv;
pub mod sssp;
pub mod wcc;

pub use bfs::Bfs;
pub use bp::BeliefPropagation;
pub use kcore::KCore;
pub use pagerank::PageRank;
pub use spmv::Spmv;
pub use sssp::Sssp;
pub use wcc::Wcc;
