//! Synthetic graph generators.
//!
//! Each generator is deterministic given its seed and emits an
//! [`EdgeList`](crate::EdgeList); callers decide whether to build a
//! directed or undirected [`Graph`](crate::Graph) from it. The generators
//! cover all four structural classes of the paper's Table 3:
//!
//! * [`chung_lu`] — power-law social networks (FB, LJ, OR, PK, TW),
//! * [`road`] — high-diameter road maps (ER, RC),
//! * [`web`] — hyperlink web graphs with community structure (UK),
//! * [`rmat`] — R-MAT and Graph500 Kronecker graphs (RM, KR),
//! * [`erdos`] — uniform-degree random graphs (RD).

pub mod chung_lu;
pub mod erdos;
pub mod rmat;
pub mod road;
pub mod web;

pub use chung_lu::ChungLu;
pub use erdos::Erdos;
pub use rmat::Rmat;
pub use road::Road;
pub use web::Web;
