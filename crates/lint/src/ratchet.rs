//! The ratchet baseline: pre-existing `panic-free` debt is pinned in
//! `crates/lint/baseline.txt` so the count can only go down. New
//! violations (a file/rule pair exceeding its baselined count) fail
//! `--check`; improvements print a nudge to re-run `--update-baseline`.
//!
//! Format: one `path<TAB>rule<TAB>count` per line, sorted, `#` comments
//! allowed. Tab-separated so paths with spaces would not break parsing
//! (they do not occur today, but the format should not care).

use std::collections::BTreeMap;

/// Keyed by (workspace-relative path, rule id).
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses baseline text. Malformed lines are reported as errors rather
/// than skipped — a corrupted baseline silently waving findings through
/// would defeat the ratchet.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(path), Some(rule), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `path\\trule\\tcount`",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        out.insert((path.to_string(), rule.to_string()), count);
    }
    Ok(out)
}

/// Renders a baseline back to text (stable order, suitable for
/// check-in).
pub fn render(b: &Baseline) -> String {
    let mut s = String::from(
        "# simdx-lint ratchet baseline: pre-existing findings pinned per (file, rule).\n\
         # Regenerate with `cargo run -p simdx_lint -- --update-baseline`.\n",
    );
    for ((path, rule), count) in b {
        s.push_str(&format!("{path}\t{rule}\t{count}\n"));
    }
    s
}

/// Aggregates findings into baseline form.
pub fn tally<'a>(findings: impl Iterator<Item = &'a crate::rules::Finding>) -> Baseline {
    let mut b = Baseline::new();
    for f in findings {
        *b.entry((f.file.clone(), f.rule.to_string())).or_insert(0) += 1;
    }
    b
}

/// Compares current findings to the baseline. Returns
/// `(regressions, improvements)` as human-readable lines.
pub fn compare(current: &Baseline, baseline: &Baseline) -> (Vec<String>, Vec<String>) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for (key, &now) in current {
        let was = baseline.get(key).copied().unwrap_or(0);
        if now > was {
            regressions.push(format!(
                "{}: [{}] {} finding(s), baseline allows {}",
                key.0, key.1, now, was
            ));
        } else if now < was {
            improvements.push(format!(
                "{}: [{}] down to {} from {} — run --update-baseline to ratchet",
                key.0, key.1, now, was
            ));
        }
    }
    for (key, &was) in baseline {
        if !current.contains_key(key) && was > 0 {
            improvements.push(format!(
                "{}: [{}] down to 0 from {} — run --update-baseline to ratchet",
                key.0, key.1, was
            ));
        }
    }
    (regressions, improvements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: &str, r: &str) -> (String, String) {
        (p.to_string(), r.to_string())
    }

    #[test]
    fn round_trips_through_text() {
        let mut b = Baseline::new();
        b.insert(key("crates/core/src/engine.rs", "panic-free"), 3);
        b.insert(key("crates/core/src/par.rs", "panic-free"), 1);
        let parsed = parse(&render(&b)).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("no tabs here").is_err());
        assert!(parse("a\tb\tnot-a-number").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn compare_detects_regressions_and_improvements() {
        let mut baseline = Baseline::new();
        baseline.insert(key("a.rs", "panic-free"), 2);
        baseline.insert(key("b.rs", "panic-free"), 1);
        let mut current = Baseline::new();
        current.insert(key("a.rs", "panic-free"), 3); // regression
                                                      // b.rs fixed entirely; c.rs is brand new debt.
        current.insert(key("c.rs", "panic-free"), 1);
        let (reg, imp) = compare(&current, &baseline);
        assert_eq!(reg.len(), 2); // a.rs worse + c.rs new
        assert_eq!(imp.len(), 1); // b.rs gone
    }
}
