//! Ligra-style CPU baseline: frontier BSP with push/pull direction
//! switching, executed with real `crossbeam` worker threads.
//!
//! Ligra's signature mechanisms, all present here: `edgeMap` over a
//! sparse frontier (push) with compare-and-swap updates, the
//! direction-optimizing switch to a dense backward `edgeMap` (pull)
//! when the frontier's edge volume crosses |E|/20, and bitvector-free
//! frontier reconstruction. All parallel updates are monotonic
//! (min-CAS, saturating decrement), so results are deterministic
//! regardless of thread interleaving; simulated time comes from the
//! host cost model, not the wall clock.

use crate::cpu::{host_executor, host_kernel, real_threads};
use crate::BaselineError;
use simdx_core::metrics::{RunReport, RunResult};
use simdx_core::ActivationLog;
use simdx_gpu::{Cost, GpuExecutor, SchedUnit};
use simdx_graph::{Graph, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Configuration shared by the Ligra-style runners.
#[derive(Clone, Copy, Debug)]
pub struct LigraConfig {
    /// Device scale divisor (match the dataset twin scale).
    pub parallelism_scale: u32,
    /// Iteration cap.
    pub max_iterations: u32,
}

impl Default for LigraConfig {
    fn default() -> Self {
        Self {
            parallelism_scale: 64,
            max_iterations: 100_000,
        }
    }
}

/// Atomically lowers `slot` to `value` if smaller; returns `true` when
/// this call performed the first lowering below `slot`'s previous value.
fn atomic_min(slot: &AtomicU32, value: u32) -> bool {
    // ORDERING: the distance cells form a join-semilattice (values only
    // ever decrease) and no thread reads a cell to publish *other*
    // data; a stale read here just retries the CAS, and the CAS itself
    // provides the atomicity the min-update needs, so Relaxed on every
    // access is correct. Results are harvested only after the scoped
    // threads have joined (a full synchronization point).
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if value >= cur {
            return false;
        }
        // ORDERING: Relaxed on success and failure alike — see the
        // join-semilattice argument above.
        match slot.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Shared monotone-relaxation core for BFS (all weights 1) and SSSP.
fn relax_run(
    graph: &Graph,
    src: VertexId,
    use_weights: bool,
    name: &'static str,
    cfg: LigraConfig,
) -> Result<RunResult<u32>, BaselineError> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let in_ = graph.in_();
    let num_edges = graph.num_edges();
    let mut executor = host_executor(cfg.parallelism_scale);
    let kernel = host_kernel("ligra-edgemap");
    let threads = real_threads();

    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    // ORDERING: initialization before any thread is spawned; the
    // spawn itself orders this store ahead of every worker read.
    dist[src as usize].store(0, Ordering::Relaxed);
    // Frontier entries carry the distance they were enqueued with, which
    // keeps iteration structure deterministic under real parallelism.
    let mut frontier: Vec<(VertexId, u32)> = vec![(src, 0)];
    let mut iteration = 0u32;

    while !frontier.is_empty() {
        if iteration >= cfg.max_iterations {
            return Err(BaselineError::IterationLimit {
                max_iterations: cfg.max_iterations,
            });
        }
        let deg_sum: u64 = frontier.iter().map(|&(v, _)| out.degree(v) as u64).sum();
        let pull = deg_sum.saturating_mul(20) > num_edges;

        let mut next: Vec<(VertexId, u32)> = if pull {
            // Dense backward edgeMap from a snapshot, parallel over
            // destination ranges (disjoint writes → deterministic).
            // ORDERING: snapshot taken between iterations, after the
            // previous iteration's scoped threads joined; no concurrent
            // writers exist at this point.
            let snapshot: Vec<u32> = dist.iter().map(|d| d.load(Ordering::Relaxed)).collect();
            let chunk = n.div_ceil(threads).max(1);
            let snap = &snapshot;
            let dist_ref = &dist;
            let collected: Vec<Vec<(VertexId, u32)>> = crossbeam::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    handles.push(s.spawn(move |_| {
                        let mut local = Vec::new();
                        for v in lo..hi {
                            // BFS restricts the backward map to unvisited
                            // vertices and stops at the first visited
                            // parent; weighted relaxation must consider
                            // improving every vertex over all in-edges.
                            if !use_weights && snap[v] != u32::MAX {
                                continue;
                            }
                            let (elo, ehi) = in_.range(v as VertexId);
                            let mut best = u32::MAX;
                            for i in elo..ehi {
                                let u = in_.targets()[i] as usize;
                                if snap[u] == u32::MAX {
                                    continue;
                                }
                                let w = if use_weights {
                                    in_.weights().map_or(1, |ws| ws[i])
                                } else {
                                    1
                                };
                                best = best.min(snap[u].saturating_add(w));
                                if !use_weights {
                                    break; // any parent decides a BFS level
                                }
                            }
                            if best < snap[v] {
                                // ORDERING: destination ranges are
                                // disjoint per thread, so this cell has
                                // exactly one writer this iteration;
                                // readers see it only after the scope
                                // joins.
                                dist_ref[v].store(best, Ordering::Relaxed);
                                local.push((v as VertexId, best));
                            }
                        }
                        local
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            })
            .expect("scope");
            collected.into_iter().flatten().collect()
        } else {
            // Sparse forward edgeMap: CAS-min relaxations.
            let chunk = frontier.len().div_ceil(threads).max(1);
            let dist_ref = &dist;
            let frontier_ref = &frontier;
            let collected: Vec<Vec<(VertexId, u32)>> = crossbeam::scope(|s| {
                let mut handles = Vec::new();
                for part in frontier_ref.chunks(chunk) {
                    handles.push(s.spawn(move |_| {
                        let mut local = Vec::new();
                        for &(v, dv) in part {
                            let (elo, ehi) = out.range(v);
                            for i in elo..ehi {
                                let u = out.targets()[i];
                                let w = if use_weights {
                                    out.weights().map_or(1, |ws| ws[i])
                                } else {
                                    1
                                };
                                let nd = dv.saturating_add(w);
                                if atomic_min(&dist_ref[u as usize], nd) {
                                    local.push((u, nd));
                                }
                            }
                        }
                        local
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            })
            .expect("scope");
            collected.into_iter().flatten().collect()
        };

        // Deduplicate the next frontier, keeping the best distance per
        // vertex (sorted pairs put the minimum first).
        next.sort_unstable();
        next.dedup_by_key(|e| e.0);

        // Charge the iteration to the simulated host.
        let tasks: Vec<Cost> = if pull {
            // Dense backward map. The unweighted map stops at the first
            // visited parent (a handful of probes mid-traversal);
            // weighted relaxation must scan every in-edge.
            (0..n as u32)
                .map(|v| {
                    let d = in_.degree(v) as u64;
                    let eff = if use_weights { d } else { d.min(4) };
                    Cost {
                        compute_ops: 2 * eff + 2,
                        coalesced_reads: 1 + eff,
                        random_reads: eff,
                        writes: 1,
                        ..Cost::default()
                    }
                })
                .collect()
        } else {
            frontier
                .iter()
                .map(|&(v, _)| {
                    let d = out.degree(v) as u64;
                    Cost {
                        compute_ops: 2 * d + 2,
                        coalesced_reads: 1 + d,
                        random_reads: d,
                        atomics: d,
                        ..Cost::default()
                    }
                })
                .collect()
        };
        executor.run_kernel(&kernel, SchedUnit::Thread, &tasks, true);
        executor.charge_barrier();

        frontier = next;
        iteration += 1;
    }

    finish(
        name,
        executor,
        iteration,
        // ORDERING: harvested after every scoped worker has joined.
        dist.iter().map(|d| d.load(Ordering::Relaxed)).collect(),
    )
}

/// Ligra BFS (levels).
pub fn bfs(
    graph: &Graph,
    src: VertexId,
    cfg: LigraConfig,
) -> Result<RunResult<u32>, BaselineError> {
    relax_run(graph, src, false, "ligra-bfs", cfg)
}

/// Ligra SSSP (Bellman-Ford over the frontier).
pub fn sssp(
    graph: &Graph,
    src: VertexId,
    cfg: LigraConfig,
) -> Result<RunResult<u32>, BaselineError> {
    relax_run(graph, src, true, "ligra-sssp", cfg)
}

/// Ligra PageRank: dense parallel pull rounds until stability.
pub fn pagerank(
    graph: &Graph,
    damping: f32,
    eps: f32,
    cfg: LigraConfig,
) -> Result<RunResult<f32>, BaselineError> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let in_ = graph.in_();
    let mut executor = host_executor(cfg.parallelism_scale);
    let kernel = host_kernel("ligra-pr");
    let threads = real_threads();
    let base = (1.0 - damping) / n.max(1) as f32;
    let inv_deg: Vec<f32> = (0..n as VertexId)
        .map(|v| {
            let d = out.degree(v);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f32
            }
        })
        .collect();
    let mut rank = vec![1.0f32 / n.max(1) as f32; n];
    let mut iteration = 0u32;
    loop {
        if iteration >= cfg.max_iterations {
            return Err(BaselineError::IterationLimit {
                max_iterations: cfg.max_iterations,
            });
        }
        let chunk = n.div_ceil(threads).max(1);
        let rank_ref = &rank;
        let inv_ref = &inv_deg;
        let parts: Vec<(Vec<f32>, bool)> = crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::with_capacity(hi - lo);
                    let mut moved = false;
                    for v in lo..hi {
                        let mut sum = 0.0f32;
                        for &u in in_.neighbors(v as VertexId) {
                            sum += rank_ref[u as usize] * inv_ref[u as usize];
                        }
                        let r = base + damping * sum;
                        if (r - rank_ref[v]).abs() > eps {
                            moved = true;
                            local.push(r);
                        } else {
                            local.push(rank_ref[v]);
                        }
                    }
                    (local, moved)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");

        let moved = parts.iter().any(|(_, m)| *m);
        rank = parts.into_iter().flat_map(|(part, _)| part).collect();

        let tasks: Vec<Cost> = (0..n as VertexId)
            .map(|v| {
                let d = in_.degree(v) as u64;
                Cost {
                    compute_ops: 2 * d + 3,
                    coalesced_reads: 1 + d,
                    random_reads: d,
                    writes: 1,
                    ..Cost::default()
                }
            })
            .collect();
        executor.run_kernel(&kernel, SchedUnit::Thread, &tasks, true);
        executor.charge_barrier();
        iteration += 1;
        if !moved {
            break;
        }
    }
    finish("ligra-pagerank", executor, iteration, rank)
}

/// Ligra k-Core: parallel peeling with atomic degree decrements.
/// Returns remaining in-degrees with `u32::MAX` marking peeled vertices.
pub fn kcore(graph: &Graph, k: u32, cfg: LigraConfig) -> Result<RunResult<u32>, BaselineError> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let in_ = graph.in_();
    let mut executor = host_executor(cfg.parallelism_scale);
    let kernel = host_kernel("ligra-kcore");
    let threads = real_threads();

    let deg: Vec<AtomicU32> = (0..n as VertexId)
        .map(|v| AtomicU32::new(in_.degree(v)))
        .collect();
    // Deletion is flagged separately: the shared counters keep being
    // decremented after a vertex is peeled (racing threads), so the
    // counter value alone cannot encode aliveness.
    let mut dead = vec![false; n];
    let mut frontier: Vec<VertexId> = (0..n as VertexId)
        // ORDERING: single-threaded seeding pass, before any spawn.
        .filter(|&v| deg[v as usize].load(Ordering::Relaxed) < k)
        .collect();
    for &v in &frontier {
        dead[v as usize] = true;
    }
    let mut iteration = 0u32;

    while !frontier.is_empty() {
        if iteration >= cfg.max_iterations {
            return Err(BaselineError::IterationLimit {
                max_iterations: cfg.max_iterations,
            });
        }
        let chunk = frontier.len().div_ceil(threads).max(1);
        let deg_ref = &deg;
        let frontier_ref = &frontier;
        let collected: Vec<Vec<VertexId>> = crossbeam::scope(|s| {
            let mut handles = Vec::new();
            for part in frontier_ref.chunks(chunk) {
                handles.push(s.spawn(move |_| {
                    let mut local = Vec::new();
                    for &v in part {
                        for &u in out.neighbors(v) {
                            // The unique thread that moves the counter
                            // from k to k-1 owns the deletion. Peeled
                            // vertices' counters keep decrementing but,
                            // with at most in-degree total decrements,
                            // can never cross k again.
                            // ORDERING: the fetch_sub's atomicity
                            // alone decides ownership (exactly one
                            // thread observes old == k); no other data
                            // is published under the counter, so no
                            // acquire/release pairing is needed.
                            let old = deg_ref[u as usize].fetch_sub(1, Ordering::Relaxed);
                            if old == k {
                                local.push(u);
                            }
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");

        let tasks: Vec<Cost> = frontier
            .iter()
            .map(|&v| {
                let d = out.degree(v) as u64;
                Cost {
                    compute_ops: d + 1,
                    coalesced_reads: 1 + d,
                    atomics: d,
                    ..Cost::default()
                }
            })
            .collect();
        executor.run_kernel(&kernel, SchedUnit::Thread, &tasks, true);
        executor.charge_barrier();

        let mut next: Vec<VertexId> = collected.into_iter().flatten().collect();
        next.sort_unstable();
        for &v in &next {
            dead[v as usize] = true;
        }
        frontier = next;
        iteration += 1;
    }

    finish(
        "ligra-kcore",
        executor,
        iteration,
        deg.iter()
            .enumerate()
            .map(|(v, d)| {
                if dead[v] {
                    u32::MAX
                } else {
                    // ORDERING: harvested after all workers joined.
                    d.load(Ordering::Relaxed)
                }
            })
            .collect(),
    )
}

fn finish<M>(
    name: &str,
    executor: GpuExecutor,
    iterations: u32,
    meta: Vec<M>,
) -> Result<RunResult<M>, BaselineError> {
    let elapsed_ms = executor.elapsed_ms();
    Ok(RunResult {
        meta,
        report: RunReport {
            algorithm: name.to_string(),
            device: executor.device().name,
            iterations,
            elapsed_ms,
            stats: executor.stats().clone(),
            // Baseline simulators do not meter host edge traversals.
            edges_examined: 0,
            log: ActivationLog::default(),
            // Baselines run unsupervised.
            elapsed: std::time::Duration::ZERO,
            aborted: None,
            supervision_checks: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_algos::reference;
    use simdx_graph::datasets;

    fn cfg() -> LigraConfig {
        LigraConfig {
            parallelism_scale: 1,
            ..LigraConfig::default()
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = datasets::dataset("PK").unwrap().build_scaled(3, 5);
        let src = datasets::default_source(g.out());
        let r = bfs(&g, src, cfg()).expect("ligra bfs");
        assert_eq!(r.meta, reference::bfs(g.out(), src));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = datasets::dataset("RC").unwrap().build_scaled(5, 4);
        let src = datasets::default_source(g.out());
        let r = sssp(&g, src, cfg()).expect("ligra sssp");
        assert_eq!(r.meta, reference::sssp(g.out(), src));
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = datasets::dataset("PK").unwrap().build_scaled(5, 5);
        let r = pagerank(&g, 0.85, 1e-6, cfg()).expect("ligra pr");
        let expected = reference::pagerank(&g, 0.85, 1e-6, 500);
        for (i, (a, b)) in r.meta.iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-3, "rank {i}: {a} vs {b}");
        }
    }

    #[test]
    fn kcore_matches_reference() {
        let g = datasets::dataset("OR").unwrap().build_scaled(7, 4);
        let r = kcore(&g, 16, cfg()).expect("ligra kcore");
        let alive: Vec<bool> = r.meta.iter().map(|&d| d != u32::MAX).collect();
        assert_eq!(alive, reference::kcore(&g, 16));
    }

    #[test]
    fn bfs_is_deterministic_across_runs() {
        let g = datasets::dataset("LJ").unwrap().build_scaled(3, 4);
        let src = datasets::default_source(g.out());
        let a = bfs(&g, src, cfg()).expect("run a");
        let b = bfs(&g, src, cfg()).expect("run b");
        assert_eq!(a.meta, b.meta);
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(a.report.stats.total_cycles, b.report.stats.total_cycles);
    }

    #[test]
    fn direction_switch_engages_on_social_twin() {
        // Not directly observable from the report; assert the run is
        // correct and bounded instead (the switch is covered by the
        // deterministic totals above).
        let g = datasets::dataset("PK").unwrap().build_scaled(2, 4);
        let src = datasets::default_source(g.out());
        let r = bfs(&g, src, cfg()).expect("ligra bfs");
        assert_eq!(r.meta, reference::bfs(g.out(), src));
        assert!(r.report.iterations < 30);
    }
}
