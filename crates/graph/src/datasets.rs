//! Registry of scaled-down twins of the paper's Table 3 datasets.
//!
//! Each entry mirrors the *structural class* of the original graph
//! (degree skew, diameter class, directedness) at roughly 1/64 of its
//! vertex count so the whole evaluation suite runs on a CPU-simulated
//! GPU in minutes. The mapping is documented per entry; DESIGN.md §7
//! records the substitution rationale.
//!
//! All built graphs carry random edge weights in the Gunrock range
//! `[1, 64)` so SSSP runs on every dataset, matching §6.

use crate::csr::{Csr, Graph};
use crate::gen::{ChungLu, Erdos, Rmat, Road, Web};
use crate::weights;
use crate::EdgeList;

/// Structural class of a dataset (Table 3 groups).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Social networks: power-law degrees, low diameter.
    Social,
    /// Road maps: near-uniform tiny degrees, huge diameter.
    Road,
    /// Hyperlink web: power-law with host locality, medium diameter.
    Web,
    /// Synthetic (Kronecker / R-MAT / uniform random).
    Synthetic,
}

/// Generator configuration for a dataset twin.
#[derive(Clone, Copy, Debug)]
pub enum GenSpec {
    /// Chung-Lu power-law (social graphs).
    ChungLu(ChungLu),
    /// Grid road network.
    Road(Road),
    /// Host-structured web graph.
    Web(Web),
    /// R-MAT / Kronecker.
    Rmat(Rmat),
    /// Uniform random.
    Erdos(Erdos),
}

impl GenSpec {
    /// Generates the raw (unweighted, directed) edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        match self {
            Self::ChungLu(g) => g.generate(seed),
            Self::Road(g) => g.generate(seed),
            Self::Web(g) => g.generate(seed),
            Self::Rmat(g) => g.generate(seed),
            Self::Erdos(g) => g.generate(seed),
        }
    }

    /// Returns a copy shrunk by `2^shift` in vertex count (edge factors
    /// kept), for fast test runs that preserve the structural class.
    pub fn scaled_down(&self, shift: u32) -> Self {
        match *self {
            Self::ChungLu(mut g) => {
                g.num_vertices = (g.num_vertices >> shift).max(64);
                Self::ChungLu(g)
            }
            Self::Road(mut g) => {
                g.width = (g.width >> shift).max(16);
                g.height = (g.height >> shift.min(2)).max(4);
                Self::Road(g)
            }
            Self::Web(mut g) => {
                g.num_vertices = (g.num_vertices >> shift).max(64);
                Self::Web(g)
            }
            Self::Rmat(mut g) => {
                g.scale = g.scale.saturating_sub(shift).max(6);
                Self::Rmat(g)
            }
            Self::Erdos(mut g) => {
                g.num_vertices = (g.num_vertices >> shift).max(64);
                Self::Erdos(g)
            }
        }
    }
}

/// A dataset twin: metadata plus its generator.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Table 3 abbreviation (FB, ER, ...).
    pub abbrev: &'static str,
    /// Original dataset name.
    pub name: &'static str,
    /// Structural class.
    pub class: GraphClass,
    /// Whether the original is directed (directed twins store a
    /// transpose CSR for pull mode, per §6).
    pub directed: bool,
    /// Generator.
    pub gen: GenSpec,
    /// Original vertex count (for the Table 3 report).
    pub paper_vertices: u64,
    /// Original edge count (for the Table 3 report).
    pub paper_edges: u64,
}

impl DatasetSpec {
    /// Builds the weighted graph deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Graph {
        let el = self.gen.generate(seed);
        let el = weights::assign_default_weights(&el, seed ^ 0x5EED_F00D);
        if self.directed {
            Graph::directed_from_edges(el)
        } else {
            Graph::undirected_from_edges(el)
        }
    }

    /// Builds an unweighted variant (for purely topological algorithms).
    pub fn build_unweighted(&self, seed: u64) -> Graph {
        let el = self.gen.generate(seed);
        if self.directed {
            Graph::directed_from_edges(el)
        } else {
            Graph::undirected_from_edges(el)
        }
    }

    /// Builds a `2^shift`-times smaller weighted variant for tests.
    pub fn build_scaled(&self, seed: u64, shift: u32) -> Graph {
        let el = self.gen.scaled_down(shift).generate(seed);
        let el = weights::assign_default_weights(&el, seed ^ 0x5EED_F00D);
        if self.directed {
            Graph::directed_from_edges(el)
        } else {
            Graph::undirected_from_edges(el)
        }
    }
}

/// All eleven dataset twins, in Table 3 / Table 4 column order.
pub fn all() -> &'static [DatasetSpec] {
    &DATASETS
}

/// Looks up a dataset by its Table 3 abbreviation (case-insensitive).
pub fn dataset(abbrev: &str) -> Option<&'static DatasetSpec> {
    DATASETS
        .iter()
        .find(|d| d.abbrev.eq_ignore_ascii_case(abbrev))
}

static DATASETS: [DatasetSpec; 11] = [
    DatasetSpec {
        abbrev: "FB",
        name: "Facebook",
        class: GraphClass::Social,
        directed: false,
        gen: GenSpec::ChungLu(ChungLu {
            num_vertices: 1 << 17,
            edge_factor: 12,
            alpha: 1.9,
            max_degree_fraction: 0.005,
        }),
        paper_vertices: 16_777_215,
        paper_edges: 775_824_943,
    },
    DatasetSpec {
        abbrev: "ER",
        name: "Europe-osm",
        class: GraphClass::Road,
        directed: false,
        gen: GenSpec::Road(Road {
            width: 1600,
            height: 128,
            edge_keep_prob: 0.85,
            diagonal_prob: 0.05,
        }),
        paper_vertices: 50_912_018,
        paper_edges: 108_109_319,
    },
    DatasetSpec {
        abbrev: "KR",
        name: "Kron24",
        class: GraphClass::Synthetic,
        directed: true,
        gen: GenSpec::Rmat(Rmat {
            scale: 16,
            edge_factor: 32,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }),
        paper_vertices: 16_777_216,
        paper_edges: 536_870_911,
    },
    DatasetSpec {
        abbrev: "LJ",
        name: "LiveJournal",
        class: GraphClass::Social,
        directed: true,
        gen: GenSpec::ChungLu(ChungLu {
            num_vertices: 1 << 16,
            edge_factor: 28,
            alpha: 2.1,
            max_degree_fraction: 0.003,
        }),
        paper_vertices: 4_847_571,
        paper_edges: 136_950_781,
    },
    DatasetSpec {
        abbrev: "OR",
        name: "Orkut",
        class: GraphClass::Social,
        directed: false,
        gen: GenSpec::ChungLu(ChungLu {
            num_vertices: 1 << 15,
            edge_factor: 30,
            alpha: 1.8,
            max_degree_fraction: 0.004,
        }),
        paper_vertices: 3_072_626,
        paper_edges: 234_370_165,
    },
    DatasetSpec {
        abbrev: "PK",
        name: "Pokec",
        class: GraphClass::Social,
        directed: true,
        gen: GenSpec::ChungLu(ChungLu {
            num_vertices: 1 << 15,
            edge_factor: 24,
            alpha: 2.05,
            max_degree_fraction: 0.003,
        }),
        paper_vertices: 1_632_803,
        paper_edges: 61_245_127,
    },
    DatasetSpec {
        abbrev: "RD",
        name: "Random",
        class: GraphClass::Synthetic,
        directed: true,
        gen: GenSpec::Erdos(Erdos {
            num_vertices: 1 << 16,
            edge_factor: 32,
        }),
        paper_vertices: 4_000_000,
        paper_edges: 511_999_999,
    },
    DatasetSpec {
        abbrev: "RC",
        name: "RoadCA-net",
        class: GraphClass::Road,
        directed: false,
        gen: GenSpec::Road(Road {
            width: 512,
            height: 60,
            edge_keep_prob: 0.85,
            diagonal_prob: 0.05,
        }),
        paper_vertices: 1_971_281,
        paper_edges: 5_533_213,
    },
    DatasetSpec {
        abbrev: "RM",
        name: "R-MAT",
        class: GraphClass::Synthetic,
        directed: true,
        gen: GenSpec::Rmat(Rmat {
            scale: 16,
            edge_factor: 32,
            a: 0.45,
            b: 0.15,
            c: 0.15,
            noise: 0.0,
        }),
        paper_vertices: 3_999_983,
        paper_edges: 511_999_999,
    },
    DatasetSpec {
        abbrev: "UK",
        name: "UK-2002",
        class: GraphClass::Web,
        directed: true,
        gen: GenSpec::Web(Web {
            num_vertices: 1 << 17,
            edge_factor: 24,
            mean_host_size: 64,
            cross_host_fraction: 0.15,
        }),
        paper_vertices: 18_520_343,
        paper_edges: 596_227_523,
    },
    DatasetSpec {
        abbrev: "TW",
        name: "Twitter",
        class: GraphClass::Social,
        directed: true,
        gen: GenSpec::ChungLu(ChungLu {
            num_vertices: 1 << 17,
            edge_factor: 24,
            alpha: 1.7,
            max_degree_fraction: 0.02,
        }),
        paper_vertices: 25_165_811,
        paper_edges: 787_169_139,
    },
];

/// Picks a canonical BFS/SSSP source for a graph: the highest-out-degree
/// vertex, which is guaranteed non-isolated (Gunrock-style "largest
/// degree" source selection keeps runs comparable across systems).
pub fn default_source(csr: &Csr) -> crate::VertexId {
    let mut best = 0;
    let mut best_deg = 0;
    for v in 0..csr.num_vertices() {
        let d = csr.degree(v);
        if d > best_deg {
            best_deg = d;
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn registry_has_eleven_unique_entries() {
        let names: Vec<_> = all().iter().map(|d| d.abbrev).collect();
        assert_eq!(names.len(), 11);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 11);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(dataset("tw").map(|d| d.abbrev), Some("TW"));
        assert_eq!(dataset("Tw").map(|d| d.abbrev), Some("TW"));
        assert!(dataset("XX").is_none());
    }

    #[test]
    fn scaled_build_is_deterministic_and_weighted() {
        let d = dataset("PK").expect("PK exists");
        let g1 = d.build_scaled(1, 4);
        let g2 = d.build_scaled(1, 4);
        assert_eq!(g1.out().num_edges(), g2.out().num_edges());
        assert!(g1.out().is_weighted());
    }

    #[test]
    fn road_twin_is_high_diameter_class() {
        let d = dataset("RC").expect("RC exists");
        let g = d.build_scaled(3, 2);
        let diam = stats::estimate_diameter(g.out(), 2, 1);
        assert!(diam > 60, "road twin diameter too small: {diam}");
    }

    #[test]
    fn social_twin_is_skewed() {
        let d = dataset("TW").expect("TW exists");
        let g = d.build_scaled(2, 4);
        assert!(stats::degree_gini(g.out()) > 0.4);
    }

    #[test]
    fn uniform_twin_is_flat() {
        let d = dataset("RD").expect("RD exists");
        let g = d.build_scaled(2, 4);
        assert!(stats::degree_gini(g.out()) < 0.2);
    }

    #[test]
    fn directedness_matches_spec() {
        assert!(dataset("LJ").unwrap().build_scaled(1, 6).is_directed());
        assert!(!dataset("FB").unwrap().build_scaled(1, 6).is_directed());
    }

    #[test]
    fn default_source_has_max_degree() {
        let g = dataset("PK").unwrap().build_scaled(1, 6);
        let src = default_source(g.out());
        let deg = g.out().degree(src);
        assert_eq!(deg, g.out().max_degree());
        assert!(deg > 0);
    }
}
