//! Offline stub for the subset of `bytes` 1.x the graph codec uses:
//! little-endian get/put over a growable buffer and a frozen read-only
//! view. No refcounted zero-copy splitting — `Bytes` is a plain
//! `Vec<u8>` behind `Deref<Target = [u8]>`. See `crates/compat/README.md`.

use std::ops::Deref;

/// Read-only byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Converts into a read-only [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads that consume the buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next `N` bytes, panicking on underflow.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Sequential little-endian appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
