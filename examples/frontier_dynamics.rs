//! Frontier dynamics: watch the per-iteration engine decisions (scan
//! direction, filter choice, frontier volume) that drive every result
//! in the paper's evaluation — streamed live through the run builder's
//! `observe` hook instead of read back from the final report.
//!
//! ```text
//! cargo run --release --example frontier_dynamics
//! ```

use simdx::algos::Bfs;
use simdx::core::{EngineConfig, Runtime, SimdxError};
use simdx::graph::datasets;

fn main() -> Result<(), SimdxError> {
    let runtime = Runtime::new(EngineConfig::default())?;
    for abbrev in ["LJ", "RC"] {
        let spec = datasets::dataset(abbrev).expect("twin");
        let graph = spec.build(3);
        let src = datasets::default_source(graph.out());
        let bound = runtime.bind(&graph);

        println!(
            "\nBFS on {} twin ({} vertices, {} edges)",
            spec.name,
            graph.num_vertices(),
            graph.num_edges(),
        );
        println!(
            "{:>5}  {:>5}  {:>9}  {:>10}  {:>7}  {:>9}",
            "iter", "dir", "frontier", "degree sum", "filter", "cycles"
        );
        // Stream the first 12 iterations as they happen (road twins
        // run hundreds).
        let r = bound
            .run(Bfs::new(0))
            .source(src)
            .observe(|rec| {
                if rec.iteration < 12 {
                    println!(
                        "{:>5}  {:>5}  {:>9}  {:>10}  {:>7}  {:>9}",
                        rec.iteration,
                        format!("{:?}", rec.direction),
                        rec.frontier_len,
                        rec.degree_sum,
                        rec.filter.to_string(),
                        rec.cycles
                    );
                }
            })
            .execute()?;
        if r.report.iterations > 12 {
            println!("  ... {} more iterations", r.report.iterations - 12);
        }
        println!(
            "{} iterations; direction heuristic switched {} time(s); filter switched {} time(s)",
            r.report.iterations,
            r.report
                .log
                .records
                .windows(2)
                .filter(|w| w[0].direction != w[1].direction)
                .count(),
            r.report.log.filter_switches()
        );
    }
    Ok(())
}
