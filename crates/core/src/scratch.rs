//! Reusable per-iteration buffers for the engine loop.
//!
//! The seed engine allocated fresh `Vec`s for worklists, candidate
//! lists, task-cost vectors, the changed list and the dirty stamps on
//! every iteration — on iteration-heavy graphs (road networks, long
//! paths) the allocator dominated the host profile. [`IterScratch`]
//! owns all of those buffers for the lifetime of one `Engine::run` call;
//! every iteration clears in place and refills, and the parallel
//! backend's per-worker partitions live in [`WorkerScratch`] so the hot
//! path performs no allocation in steady state in either exec mode.
//!
//! Across runs, the session API pools arenas: a `BoundGraph` keeps a
//! capped per-metadata-type inventory of idle [`IterScratch`] values
//! (`crate::pool::ArenaPool`), so concurrent queries each check out
//! their own arena and steady-state serving allocates nothing. This is
//! why the arena must be `Send` whenever the metadata type is (see the
//! compile-time assertion at the bottom of this module) — it travels
//! between serving threads through the pool, though never *shared*:
//! exactly one query owns an arena at a time.

use crate::config::{FrontierRepr, MetadataLayout};
use crate::filters::ballot::WarpScanScratch;
use crate::frontier::{FrontierBitmap, ThreadBins, Worklists, WORD_BITS};
use crate::metadata::CHUNK_LANES;
use simdx_gpu::Cost;
use simdx_graph::csr::Csr;
use simdx_graph::VertexId;

/// Destination-shard fences for parallel push, computed from the
/// pull-orientation degrees — lazily once per `Engine::run`, or once
/// per graph at `Runtime::bind` time for the session API.
#[derive(Clone, Debug)]
pub(crate) struct PushFences {
    /// Vertex fences over `metadata_curr` (`threads + 1` entries). In
    /// bitmap mode the inner fences are rounded down to word (64)
    /// multiples so every shard covers whole bitmap words; in the
    /// chunked metadata layout they are rounded to 32-vertex chunk
    /// multiples so no shard splits a chunk (word alignment already
    /// implies chunk alignment).
    pub verts: Vec<u32>,
    /// The matching word fences over the changed-bitmap's backing
    /// words (empty in list mode).
    pub words: Vec<u32>,
}

impl PushFences {
    /// Destination-shard fences over `rev_csr` (the transpose of the
    /// push scan direction): contiguous vertex ranges balanced by
    /// incoming-edge volume, so push workers see comparable apply load.
    ///
    /// In bitmap mode the inner fences are rounded down to word (64)
    /// multiples — like the ballot scan's warp alignment, one level up
    /// — so every shard owns whole words of the changed bitmap and the
    /// matching word fences are emitted alongside. In the chunked
    /// metadata layout the fences are additionally rounded to 32-vertex
    /// chunk multiples, so no destination shard splits a metadata chunk
    /// (word alignment already implies it in bitmap mode — one word is
    /// exactly two chunks). Destination sharding is exact for *any*
    /// fence positions (each destination's update sequence is
    /// independent of them), so the rounding cannot affect results.
    pub fn compute(
        rev_csr: &Csr,
        parts: usize,
        repr: FrontierRepr,
        layout: MetadataLayout,
    ) -> Self {
        let n = rev_csr.num_vertices();
        // +1 per vertex keeps zero-degree stretches from collapsing
        // every shard boundary onto the hubs.
        let total: u64 = rev_csr.num_edges() + n as u64;
        let mut verts = Vec::with_capacity(parts + 1);
        verts.push(0u32);
        let mut acc = 0u64;
        let mut v = 0u32;
        for p in 1..parts as u64 {
            let target = total * p / parts as u64;
            while v < n && acc < target {
                acc += rev_csr.degree(v) as u64 + 1;
                v += 1;
            }
            verts.push(v);
        }
        verts.push(n);
        if repr == FrontierRepr::List && layout == MetadataLayout::Chunked {
            for f in &mut verts[1..parts] {
                *f -= *f % CHUNK_LANES as u32;
            }
        }
        let words = match repr {
            FrontierRepr::List => Vec::new(),
            FrontierRepr::Bitmap => {
                let num_words = (n as usize).div_ceil(WORD_BITS) as u32;
                for f in &mut verts[1..parts] {
                    *f -= *f % WORD_BITS as u32;
                }
                let mut words: Vec<u32> = verts.iter().map(|&f| f / WORD_BITS as u32).collect();
                words[parts] = num_words;
                words
            }
        };
        PushFences { verts, words }
    }
}

/// One online-filter activation record, deferred by a parallel worker
/// and replayed into [`ThreadBins`] in deterministic order.
///
/// `key` is `(global task index, edge offset within the task)` — the
/// exact order in which the serial engine calls `ThreadBins::record`,
/// so sorting by `key` and replaying reproduces the serial bins (and
/// therefore the same overflow behaviour and the same concatenated
/// next-frontier) bit for bit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecordEntry {
    /// (task counter, edge offset) sort key.
    pub key: (u64, u32),
    /// Simulated-thread bin slot (`ThreadBins::record`'s first arg).
    pub slot: usize,
    /// Recorded vertex.
    pub v: VertexId,
}

/// Per-worker private buffers for one parallel region.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch<M> {
    /// Classification output (merged in worker order).
    pub lists: Worklists,
    /// Pull-candidate output (merged in worker order).
    pub cands: Vec<VertexId>,
    /// Task-cost output for task-partitioned kernels (charged via
    /// `run_kernel_parts` in worker order).
    pub tasks: Vec<Cost>,
    /// Vertices whose metadata first changed this iteration.
    pub changed: Vec<VertexId>,
    /// Deferred online-filter records.
    pub records: Vec<RecordEntry>,
    /// Push mode: per-task successful-apply counts `(task, applied)`,
    /// merged into the shared cost vector's `writes` fields.
    pub applied: Vec<(u32, u32)>,
    /// Pull mode: deferred metadata writes (disjoint vertices).
    pub writebacks: Vec<(VertexId, M)>,
    /// Ballot-scan partition output.
    pub warp: WarpScanScratch,
    /// Degree-sum partial.
    pub degree_sum: u64,
    /// Host edge traversals this worker performed in the last compute
    /// region (assigned per region, summed into
    /// [`crate::metrics::RunReport::edges_examined`]).
    pub edges_examined: u64,
}

/// All buffers the engine loop reuses across iterations.
#[derive(Debug)]
pub(crate) struct IterScratch<M> {
    /// The iteration's three worklists.
    pub lists: Worklists,
    /// Pull-mode candidate list.
    pub cands: Vec<VertexId>,
    /// Shared task-cost vector (push mode and serial pull mode).
    pub tasks: Vec<Cost>,
    /// Task-management / candidate-sweep cost vector.
    pub mgmt_tasks: Vec<Cost>,
    /// Cached identical-cost vector for the pull-vote candidate scan
    /// (its length only depends on |V|, so it is built once).
    pub vote_scan_tasks: Vec<Cost>,
    /// Vertices whose metadata first changed this iteration (list
    /// mode).
    pub changed: Vec<VertexId>,
    /// Bitmap-mode changed set: bit `v` set iff `curr[v] != prev[v]`
    /// this iteration. Doubles as the ballot scan's occupancy and the
    /// push first-change dedup; drained (publish + clear) at the end
    /// of every iteration.
    pub changed_bits: FrontierBitmap,
    /// Bitmap-mode pull-candidate dedup (replaces the dirty stamps);
    /// drained into the sorted candidate list each aggregation-pull
    /// iteration.
    pub cand_bits: FrontierBitmap,
    /// Aggregation-pull dirty stamps, sized |V| once per run (list
    /// mode).
    pub dirty_stamp: Vec<u32>,
    /// Merged record list (sort + replay buffer).
    pub records: Vec<RecordEntry>,
    /// Online-filter thread bins (persistent, reshaped in place).
    pub bins: ThreadBins,
    /// Next-frontier buffer, swapped with the live frontier each
    /// iteration.
    pub next: Vec<VertexId>,
    /// Per-worker partitions (len = worker count; 1 in serial mode).
    pub workers: Vec<WorkerScratch<M>>,
}

impl<M> IterScratch<M> {
    /// Creates scratch for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            lists: Worklists::default(),
            cands: Vec::new(),
            tasks: Vec::new(),
            mgmt_tasks: Vec::new(),
            vote_scan_tasks: Vec::new(),
            changed: Vec::new(),
            changed_bits: FrontierBitmap::default(),
            cand_bits: FrontierBitmap::default(),
            dirty_stamp: Vec::new(),
            records: Vec::new(),
            bins: ThreadBins::new(1, 0),
            next: Vec::new(),
            workers: (0..threads.max(1))
                .map(|_| WorkerScratch {
                    lists: Worklists::default(),
                    cands: Vec::new(),
                    tasks: Vec::new(),
                    changed: Vec::new(),
                    records: Vec::new(),
                    applied: Vec::new(),
                    writebacks: Vec::new(),
                    warp: WarpScanScratch::default(),
                    degree_sum: 0,
                    edges_examined: 0,
                })
                .collect(),
        }
    }

    /// Clears every buffer a previous run could have left *observable*
    /// state in, so a reused session run starts from exactly the logical
    /// state a fresh engine allocates (allocations are kept — that is
    /// the point of the session API).
    ///
    /// The one deliberately untouched cache, safe across runs on one
    /// bound graph: `vote_scan_tasks` — a pure function of `|V|` and
    /// cost constants, length-gated in the engine loop.
    ///
    /// (The push destination fences live on the `BoundGraph`, not
    /// here: `Runtime::bind` computes them once per graph for every
    /// parallel runtime.)
    ///
    /// `dirty_stamp` is the one buffer whose *contents* could corrupt a
    /// reused run: it is keyed by iteration number, which restarts at 0
    /// every run, so stale stamps from a previous query could suppress
    /// aggregation-pull candidates. Truncating it forces the in-loop
    /// `u32::MAX` refill, identical to a fresh engine.
    ///
    /// The per-worker partitions are cleared here too. Every parallel
    /// region clears the fields it uses before writing them, so for a
    /// run that completes this is redundant — but a run aborted
    /// mid-region (cancellation, deadline, contained worker panic)
    /// leaves partial per-worker output behind, and the serial ballot
    /// path swaps the live next-frontier buffer through
    /// `workers[0].warp.active`. Clearing everything at the next
    /// `execute()` entry makes aborted runs indistinguishable from
    /// fresh engines.
    pub fn reset_for_run(&mut self) {
        crate::fault::hit(crate::fault::FaultSite::ScratchReset);
        self.lists.clear();
        self.cands.clear();
        self.tasks.clear();
        self.mgmt_tasks.clear();
        self.changed.clear();
        self.changed_bits.clear_all();
        self.cand_bits.clear_all();
        self.dirty_stamp.clear();
        self.records.clear();
        self.bins.clear();
        self.next.clear();
        for ws in &mut self.workers {
            ws.lists.clear();
            ws.cands.clear();
            ws.tasks.clear();
            ws.changed.clear();
            ws.records.clear();
            ws.applied.clear();
            ws.writebacks.clear();
            ws.warp.clear();
            ws.degree_sum = 0;
            ws.edges_examined = 0;
        }
    }

    /// Debug-asserts that no per-run transient buffer carries state —
    /// the session-reuse invariant checked at every `execute()` entry.
    /// [`Self::reset_for_run`] establishes it; this guards against a
    /// future scratch field being added without a matching reset (which
    /// would let one query observe a previous query's state).
    pub fn debug_assert_clean(&self) {
        debug_assert!(self.lists.is_empty(), "worklists carry stale entries");
        debug_assert!(
            self.cands.is_empty(),
            "candidate list carries stale entries"
        );
        debug_assert!(self.tasks.is_empty(), "task-cost vector not cleared");
        debug_assert!(self.mgmt_tasks.is_empty(), "mgmt-cost vector not cleared");
        debug_assert!(self.changed.is_empty(), "changed list not published");
        debug_assert!(self.changed_bits.is_empty(), "changed bitmap not drained");
        debug_assert!(self.cand_bits.is_empty(), "candidate bitmap not drained");
        debug_assert!(self.dirty_stamp.is_empty(), "dirty stamps not invalidated");
        debug_assert!(self.records.is_empty(), "deferred records not replayed");
        debug_assert_eq!(self.bins.total_recorded(), 0, "thread bins carry entries");
        debug_assert!(!self.bins.overflowed(), "thread-bin overflow flag stuck");
        debug_assert!(self.next.is_empty(), "next-frontier buffer not cleared");
        for (w, ws) in self.workers.iter().enumerate() {
            debug_assert!(ws.lists.is_empty(), "worker {w} worklists not cleared");
            debug_assert!(ws.cands.is_empty(), "worker {w} candidates not cleared");
            debug_assert!(ws.tasks.is_empty(), "worker {w} task costs not cleared");
            debug_assert!(ws.changed.is_empty(), "worker {w} changed list not cleared");
            debug_assert!(ws.records.is_empty(), "worker {w} records not cleared");
            debug_assert!(
                ws.applied.is_empty(),
                "worker {w} applied counts not cleared"
            );
            debug_assert!(
                ws.writebacks.is_empty(),
                "worker {w} writebacks not cleared"
            );
            debug_assert!(
                ws.warp.tasks.is_empty() && ws.warp.active.is_empty(),
                "worker {w} warp-scan scratch not cleared"
            );
            debug_assert_eq!(ws.degree_sum, 0, "worker {w} degree sum not cleared");
            debug_assert_eq!(ws.edges_examined, 0, "worker {w} edge meter not cleared");
        }
    }
}

// The session arena pool moves `IterScratch` between serving threads
// (checkout on one, check-in possibly on another); `Send` for any
// sendable metadata type is what makes that hand-off sound. Removing
// any auto-trait here is an API break for `crate::session` — fail the
// build rather than letting it regress silently.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<IterScratch<u32>>();
    assert_send::<WorkerScratch<u32>>();
};
