//! Sparse matrix-vector multiplication — listed in the paper's
//! architecture diagram (Fig. 3) as one of the algorithms SIMD-X hosts.
//!
//! `y = A·x` where `A` is the weighted adjacency matrix in the pull
//! orientation: `y[v] = Σ_{(u,v) ∈ E} w_uv · x[u]`. One aggregation
//! iteration over all vertices; the interest for the framework is that
//! it exercises the all-active, compute-dense path (like PageRank's
//! first iteration) in a single round.

use simdx_core::acc::{AccProgram, CombineKind, DirectionCtx};
use simdx_core::{EngineConfig, RunResult, Runtime, SimdxError};
use simdx_graph::csr::Direction;
use simdx_graph::{Graph, VertexId, Weight};

/// One SpMV round.
#[derive(Clone, Debug)]
pub struct Spmv {
    /// The input vector `x`.
    pub x: Vec<f32>,
}

impl Spmv {
    /// Creates an SpMV program for input vector `x`.
    pub fn new(x: Vec<f32>) -> Self {
        Self { x }
    }

    /// Creates an SpMV with the all-ones vector (row sums).
    pub fn ones(graph: &Graph) -> Self {
        Self::new(vec![1.0; graph.num_vertices() as usize])
    }
}

impl AccProgram for Spmv {
    type Meta = f32;
    type Update = f32;

    fn name(&self) -> &'static str {
        "spmv"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Aggregation
    }

    fn init(&self, graph: &Graph) -> (Vec<f32>, Vec<VertexId>) {
        let n = graph.num_vertices();
        assert_eq!(self.x.len(), n as usize, "x must have one entry per vertex");
        (vec![0.0; n as usize], (0..n).collect())
    }

    fn compute(
        &self,
        src: VertexId,
        _dst: VertexId,
        w: Weight,
        _m_src: &f32,
        _m_dst: &f32,
    ) -> Option<f32> {
        Some(w as f32 * self.x[src as usize])
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _v: VertexId, current: &f32, update: f32) -> Option<f32> {
        (update != *current).then_some(update)
    }

    fn direction(&self, _ctx: &DirectionCtx) -> Option<Direction> {
        Some(Direction::Pull)
    }

    fn converged(&self, iteration: u32, _frontier: u64, _meta: &[f32]) -> bool {
        iteration >= 1
    }
}

/// Runs one SpMV round; returns `y` plus the run report. A mis-sized
/// input vector is a typed [`SimdxError::InvalidQuery`].
pub fn run(graph: &Graph, x: Vec<f32>, config: EngineConfig) -> Result<RunResult<f32>, SimdxError> {
    let n = graph.num_vertices() as usize;
    if x.len() != n {
        return Err(SimdxError::InvalidQuery {
            reason: format!(
                "spmv input vector has {} entries for a graph with {n} vertices",
                x.len()
            ),
        });
    }
    let runtime = Runtime::new(config)?;
    runtime.bind(graph).run(Spmv::new(x)).execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use simdx_graph::{datasets, EdgeList};

    #[test]
    fn matches_manual_product() {
        let el = EdgeList::from_weighted(3, vec![(0, 2), (1, 2), (2, 0)], vec![2, 3, 4]);
        let g = Graph::directed_from_edges(el);
        let r = run(&g, vec![1.0, 2.0, 3.0], EngineConfig::unscaled()).expect("spmv");
        // y[2] = 2*1 + 3*2 = 8; y[0] = 4*3 = 12.
        assert_eq!(r.meta, vec![12.0, 0.0, 8.0]);
        assert_eq!(r.report.iterations, 1);
    }

    #[test]
    fn matches_reference_on_dataset_twin() {
        let g = datasets::dataset("RM").unwrap().build_scaled(6, 5);
        let x: Vec<f32> = (0..g.num_vertices()).map(|v| (v % 7) as f32).collect();
        let r = run(&g, x.clone(), EngineConfig::default()).expect("spmv");
        let expected = reference::spmv(&g, &x);
        for (i, (a, b)) in r.meta.iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-3, "y[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn ones_vector_gives_weighted_in_degree() {
        let el = EdgeList::from_weighted(3, vec![(0, 1), (2, 1)], vec![5, 7]);
        let g = Graph::directed_from_edges(el);
        let r = run(&g, vec![1.0; 3], EngineConfig::unscaled()).expect("spmv");
        assert_eq!(r.meta[1], 12.0);
    }

    #[test]
    fn wrong_x_length_rejected_with_typed_error() {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(vec![(0, 1)]));
        let err = run(&g, vec![1.0], EngineConfig::unscaled()).expect_err("bad x");
        assert!(matches!(err, SimdxError::InvalidQuery { .. }));
    }
}
