//! Deterministic GPU execution-model simulator.
//!
//! This crate substitutes for the CUDA hardware the paper evaluates on
//! (NVIDIA K20/K40/P100). It provides two things:
//!
//! 1. **Functional warp semantics** — [`warp`] implements the lane-level
//!    primitives SIMD-X's mechanisms are built from (`__ballot`,
//!    `__shfl_down`, warp-wide reductions and prefix scans), so the
//!    filters and combiners in `simdx-core` execute the *same logic* a
//!    CUDA kernel would, bit for bit.
//! 2. **An architectural cost model** — [`device`], [`occupancy`],
//!    [`memory`], [`cost`] and [`executor`] charge simulated cycles for
//!    compute, coalesced/uncoalesced memory transactions, atomics,
//!    kernel launches and global barriers, with parallelism bounded by
//!    the register-file occupancy formula the paper gives as Equation 1.
//!
//! The [`barrier`] module models the software global barrier of §5,
//! including the deadlock that occurs when more CTAs are launched than
//! can be simultaneously resident — the failure mode SIMD-X's
//! compiler-based configuration provably avoids.
//!
//! Absolute cycle counts are calibration constants, not measurements;
//! the model's purpose is preserving *relative* behaviour (who wins,
//! where crossovers fall). See DESIGN.md §2.

pub mod barrier;
pub mod cost;
pub mod device;
pub mod executor;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod warp;

pub use cost::{Cost, CycleCount};
pub use device::DeviceSpec;
pub use executor::{GpuExecutor, KernelReport};
pub use kernel::{KernelDesc, LaunchConfig, SchedUnit};

/// Number of lanes in a warp. Fixed at 32 on every NVIDIA architecture
/// the paper uses.
pub const WARP_SIZE: usize = 32;
