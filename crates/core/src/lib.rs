//! SIMD-X core: the ACC programming model, just-in-time task management
//! and push-pull based kernel fusion over the simulated GPU.
//!
//! The crate mirrors the paper's architecture diagram (Fig. 3):
//!
//! ```text
//!          BFS  BP  k-Core  PageRank  SpMV  SSSP   (simdx-algos)
//!        ┌──────────────────────────────────────┐
//!        │        ACC programming model          │  acc
//!        ├──────────────────┬───────────────────┤
//!        │ Just-in-time     │ Push-pull based   │  jit, filters /
//!        │ task management  │ kernel fusion     │  fusion
//!        │ online + ballot  │ deadlock-free     │
//!        │ filters, JIT ctl │ global barrier    │
//!        └──────────────────┴───────────────────┘
//!                      GPU (simdx-gpu)
//! ```
//!
//! # Example: running a program
//!
//! ```
//! use simdx_core::prelude::*;
//! use simdx_graph::{EdgeList, Graph, VertexId, Weight};
//!
//! // A 4-vertex cycle and a trivial "levels" vote program.
//! struct Levels;
//! impl AccProgram for Levels {
//!     type Meta = u32;
//!     type Update = u32;
//!     fn name(&self) -> &'static str { "levels" }
//!     fn combine_kind(&self) -> CombineKind { CombineKind::Vote }
//!     fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
//!         let mut m = vec![u32::MAX; g.num_vertices() as usize];
//!         m[0] = 0;
//!         (m, vec![0])
//!     }
//!     fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight,
//!                ms: &u32, md: &u32) -> Option<u32> {
//!         (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
//!     }
//!     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
//!         (u < *c).then_some(u)
//!     }
//! }
//!
//! let g = Graph::directed_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//! let result = Engine::new(Levels, &g, EngineConfig::unscaled())
//!     .run()
//!     .expect("run succeeds");
//! assert_eq!(result.meta, vec![0, 1, 2, 3]);
//! ```

pub mod acc;
pub mod config;
pub mod engine;
pub mod filters;
pub mod frontier;
pub mod fusion;
pub mod jit;
pub mod metadata;
pub mod metrics;
pub mod par;
mod scratch;

pub use acc::{AccProgram, CombineKind, DirectionCtx};
pub use config::{
    DirectionPolicy, EngineConfig, ExecMode, FilterPolicy, FrontierRepr, MetadataLayout,
};
pub use engine::Engine;
pub use filters::FilterKind;
pub use frontier::FrontierBitmap;
pub use fusion::FusionStrategy;
pub use jit::{ActivationLog, EngineError};
pub use metadata::MetadataStore;
pub use metrics::{RunReport, RunResult};

/// Convenience re-exports for programs and harnesses.
pub mod prelude {
    pub use crate::acc::{AccProgram, CombineKind, DirectionCtx};
    pub use crate::config::{
        DirectionPolicy, EngineConfig, ExecMode, FilterPolicy, FrontierRepr, MetadataLayout,
    };
    pub use crate::engine::Engine;
    pub use crate::frontier::FrontierBitmap;
    pub use crate::fusion::FusionStrategy;
    pub use crate::jit::EngineError;
    pub use crate::metadata::MetadataStore;
    pub use crate::metrics::{RunReport, RunResult};
}
