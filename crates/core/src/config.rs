//! Engine configuration.

use crate::error::SimdxError;
use crate::frontier::ClassifyThresholds;
use crate::fusion::FusionStrategy;
use simdx_gpu::DeviceSpec;

// All `SIMDX_*` knobs share the same contract: unset or empty selects
// the default; values are matched case-insensitively; anything
// unrecognized is an `SimdxError::InvalidKnob`, so a CI typo can never
// silently fall back to the default configuration. Each knob type
// splits the contract into `try_from_env` (one fresh `getenv` — the
// path every session-API construction takes via
// `EngineConfig::from_env`) and a pure `try_from_raw` half.

/// Applies the knob contract to an already-read raw value — the pure
/// half of every knob's `try_from_env`, so tests can exercise parsing
/// and rejection without mutating the process environment (libc
/// `setenv` racing concurrent `getenv` from parallel tests is
/// undefined behavior).
fn parse_knob<T>(
    var: &'static str,
    expected: &'static str,
    default: T,
    raw: Option<String>,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<T, SimdxError> {
    match raw {
        None => Ok(default),
        Some(raw) => {
            let v = raw.to_ascii_lowercase();
            if v.is_empty() {
                Ok(default)
            } else {
                parse(&v).ok_or(SimdxError::InvalidKnob {
                    var,
                    expected,
                    value: raw,
                })
            }
        }
    }
}

// The per-process knob-default caches (`ExecMode::default()` and
// friends) have no error channel, so each caches the *fallible* parse
// result once: `Default` hands out the hard-coded fallback on a bad
// value (never a panic — this used to abort the process), and
// [`EngineConfig::validate`] consults `cached_knob_error` so a session
// built from `Default` (`Runtime::new(EngineConfig::default())`)
// surfaces the typo as a typed `SimdxError::InvalidConfig` — a CI typo
// still cannot silently select the default configuration.
//
// THE CACHING CONTRACT: each cache reads its `SIMDX_*` variable once
// per process, at the first `Default` construction. A knob set (or
// fixed) *after* that point is invisible to `Default` and to
// `validate` forever — that is the price of keeping
// `EngineConfig::default()` allocation-free inside timed bench
// regions. Embedders that change knobs at run time must construct
// through [`EngineConfig::from_env`] / `Runtime::from_env`, which
// bypass the caches entirely: fresh reads, and only the pure
// [`EngineConfig::consistency`] half of validation (never
// `cached_knob_error`), so neither a stale cached value nor a stale
// cached *error* can leak into that path.

/// First error among the cached per-process knob defaults, if any.
pub(crate) fn cached_knob_error() -> Option<SimdxError> {
    cached_exec_knob()
        .err()
        .or_else(|| cached_frontier_knob().err())
        .or_else(|| cached_layout_knob().err())
        .or_else(|| cached_push_knob().err())
}

fn cached_exec_knob() -> Result<ExecMode, SimdxError> {
    static CACHE: std::sync::OnceLock<Result<ExecMode, SimdxError>> = std::sync::OnceLock::new();
    CACHE.get_or_init(ExecMode::try_from_env).clone()
}

fn cached_frontier_knob() -> Result<FrontierRepr, SimdxError> {
    static CACHE: std::sync::OnceLock<Result<FrontierRepr, SimdxError>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(FrontierRepr::try_from_env).clone()
}

fn cached_layout_knob() -> Result<MetadataLayout, SimdxError> {
    static CACHE: std::sync::OnceLock<Result<MetadataLayout, SimdxError>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(MetadataLayout::try_from_env).clone()
}

fn cached_push_knob() -> Result<PushStrategy, SimdxError> {
    static CACHE: std::sync::OnceLock<Result<PushStrategy, SimdxError>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(PushStrategy::try_from_env).clone()
}

/// Which frontier-filter strategy the engine uses each iteration (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterPolicy {
    /// Just-in-time control: online filter until a thread bin overflows,
    /// ballot filter for that iteration, back to online when bins fit.
    /// This is SIMD-X's default.
    Jit,
    /// Always use the ballot filter (the Fig. 12 "Ballot" baseline).
    BallotOnly,
    /// Always use the online filter; a bin overflow aborts the run (the
    /// Fig. 12 "Online" baseline, which "cannot work for many graphs").
    OnlineOnly,
}

/// Host execution backend for the engine's per-iteration hot path.
///
/// Both modes produce **bit-equal results**: identical metadata,
/// identical iteration logs and identical simulated cycle counts (the
/// determinism contract in `crates/core/README.md`). `Parallel` only
/// changes how fast the host computes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded reference path.
    Serial,
    /// Multi-threaded path over a persistent worker pool.
    Parallel {
        /// Worker count; `0` resolves to the machine's available
        /// parallelism at run time.
        threads: usize,
    },
}

impl ExecMode {
    /// The backend selected by the `SIMDX_EXEC` environment variable:
    /// `"parallel"` selects `Parallel { threads: 0 }` (auto width),
    /// `"parallel:N"` selects `N` workers; `"serial"`, empty or unset
    /// select `Serial`. Any other value is an
    /// [`SimdxError::InvalidKnob`].
    pub fn try_from_env() -> Result<Self, SimdxError> {
        Self::try_from_raw(std::env::var("SIMDX_EXEC").ok())
    }

    /// The pure half of [`Self::try_from_env`] (see [`parse_knob`]).
    pub(crate) fn try_from_raw(raw: Option<String>) -> Result<Self, SimdxError> {
        parse_knob(
            "SIMDX_EXEC",
            "'serial', 'parallel' or 'parallel:N'",
            Self::Serial,
            raw,
            |v| match v {
                "serial" => Some(Self::Serial),
                "parallel" => Some(Self::Parallel { threads: 0 }),
                other => other
                    .strip_prefix("parallel:")
                    .and_then(|n| n.parse().ok())
                    .map(|threads| Self::Parallel { threads }),
            },
        )
    }

    /// Resolved worker count: `Serial` is 1, `Parallel { threads: 0 }`
    /// asks the OS.
    pub fn worker_count(&self) -> usize {
        match *self {
            Self::Serial => 1,
            Self::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Self::Parallel { threads } => threads,
        }
    }

    /// Short label for reports and bench artifacts.
    pub fn label(&self) -> String {
        match *self {
            Self::Serial => "serial".to_string(),
            Self::Parallel { threads: 0 } => "parallel/auto".to_string(),
            Self::Parallel { threads } => format!("parallel/{threads}"),
        }
    }
}

impl Default for ExecMode {
    /// Defers to the cached `SIMDX_EXEC` parse so `SIMDX_EXEC=parallel`
    /// flips the default for a whole test/bench process. A malformed
    /// value falls back to `Serial` here (no panic in `Default`);
    /// [`EngineConfig::validate`] reports it as a typed error.
    fn default() -> Self {
        cached_exec_knob().unwrap_or(Self::Serial)
    }
}

/// How the engine represents set-shaped frontier state.
///
/// Orthogonal to [`ExecMode`], and under the same contract: `Bitmap`
/// is **bit-equal** to `List` — identical metadata, activation logs
/// and simulated cycle counts (`tests/frontier_equivalence.rs`
/// enforces the full algorithm × exec-mode matrix). Only host-side
/// data structures change:
///
/// * `List` keeps every frontier artifact as a `Vec<VertexId>`
///   worklist (the seed behaviour) — cheapest for sparse push
///   frontiers.
/// * `Bitmap` uses [`crate::frontier::FrontierBitmap`] (one `u64`
///   word per 64 vertices, two warp chunks) for the changed-vertex
///   set, pull-candidate dedup and the ballot scan's occupancy, so
///   membership tests are single-bit loads and all-zero words are
///   skipped 64 vertices at a time — wins on dense frontiers and
///   pull-heavy phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrontierRepr {
    /// Sorted/concatenated vertex worklists (seed behaviour).
    List,
    /// Word-per-64-vertices bitmaps for set-shaped frontier state.
    Bitmap,
}

impl FrontierRepr {
    /// The representation selected by the `SIMDX_FRONTIER` environment
    /// variable: `"bitmap"` selects `Bitmap`; `"list"`, empty or unset
    /// select `List`. Any other value is an
    /// [`SimdxError::InvalidKnob`].
    pub fn try_from_env() -> Result<Self, SimdxError> {
        Self::try_from_raw(std::env::var("SIMDX_FRONTIER").ok())
    }

    /// The pure half of [`Self::try_from_env`] (see [`parse_knob`]).
    pub(crate) fn try_from_raw(raw: Option<String>) -> Result<Self, SimdxError> {
        parse_knob(
            "SIMDX_FRONTIER",
            "'list' or 'bitmap'",
            Self::List,
            raw,
            |v| match v {
                "list" => Some(Self::List),
                "bitmap" => Some(Self::Bitmap),
                _ => None,
            },
        )
    }

    /// Short label for reports and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Self::List => "list",
            Self::Bitmap => "bitmap",
        }
    }
}

impl Default for FrontierRepr {
    /// Defers to the cached `SIMDX_FRONTIER` parse so
    /// `SIMDX_FRONTIER=bitmap` flips the default for a whole
    /// test/bench process. The parse is cached: benches call
    /// `EngineConfig::default()` inside timed regions, and an env
    /// lookup per construction would leak into wall-clock numbers. A
    /// malformed value falls back to `List` (no panic in `Default`);
    /// [`EngineConfig::validate`] reports it as a typed error.
    fn default() -> Self {
        cached_frontier_knob().unwrap_or(Self::List)
    }
}

/// How the engine lays out the per-vertex metadata pair in host
/// memory.
///
/// Orthogonal to [`ExecMode`] and [`FrontierRepr`], and under the same
/// contract: `Chunked` is **bit-equal** to `Flat` — identical
/// metadata, activation logs and simulated cycle counts
/// (`tests/frontier_equivalence.rs` enforces the full
/// algorithm × exec × repr × layout matrix). Only the host-side
/// storage and loop shapes change:
///
/// * `Flat` keeps `metadata_prev`/`metadata_curr` as plain `Vec<M>`s
///   (the seed behaviour) and sweeps them with scalar per-vertex
///   indexing.
/// * `Chunked` stores them in
///   [`crate::metadata::MetadataStore::Chunked`] — a 64-byte-aligned
///   buffer padded to whole 32-vertex chunks (one chunk = one warp of
///   ballot lanes; two chunks = one
///   [`crate::frontier::FrontierBitmap`] word). The ballot scan, the
///   pull-vote candidate sweep and the bitmap publish step walk it
///   chunk-at-a-time with fixed-width inner loops the compiler can
///   vectorize, and parallel partitions never split a chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetadataLayout {
    /// Plain `Vec<M>` metadata arrays (seed behaviour).
    Flat,
    /// Warp-chunked, cache-line-aligned metadata storage.
    Chunked,
}

impl MetadataLayout {
    /// The layout selected by the `SIMDX_LAYOUT` environment variable:
    /// `"chunked"` selects `Chunked`; `"flat"`, empty or unset select
    /// `Flat`. Any other value is an [`SimdxError::InvalidKnob`].
    pub fn try_from_env() -> Result<Self, SimdxError> {
        Self::try_from_raw(std::env::var("SIMDX_LAYOUT").ok())
    }

    /// The pure half of [`Self::try_from_env`] (see [`parse_knob`]).
    pub(crate) fn try_from_raw(raw: Option<String>) -> Result<Self, SimdxError> {
        parse_knob(
            "SIMDX_LAYOUT",
            "'flat' or 'chunked'",
            Self::Flat,
            raw,
            |v| match v {
                "flat" => Some(Self::Flat),
                "chunked" => Some(Self::Chunked),
                _ => None,
            },
        )
    }

    /// Short label for reports and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Chunked => "chunked",
        }
    }
}

impl Default for MetadataLayout {
    /// Defers to the cached `SIMDX_LAYOUT` parse so
    /// `SIMDX_LAYOUT=chunked` flips the default for a whole test/bench
    /// process, cached like [`FrontierRepr`]'s default. A malformed
    /// value falls back to `Flat` (no panic in `Default`);
    /// [`EngineConfig::validate`] reports it as a typed error.
    fn default() -> Self {
        cached_layout_knob().unwrap_or(Self::Flat)
    }
}

/// How the parallel backend distributes push-mode edge work across its
/// destination shards.
///
/// Orthogonal to [`ExecMode`], [`FrontierRepr`] and [`MetadataLayout`],
/// and under the same contract: `Grid` is **bit-equal** to `Scan` —
/// identical metadata, activation logs and simulated cycle counts
/// (`tests/frontier_equivalence.rs` sweeps the strategy axis across
/// the full matrix). Only the host-side edge traversal changes; the
/// serial backend ignores the knob entirely (there is exactly one
/// shard).
///
/// * `Scan` is the seed behaviour: every worker replays the *entire*
///   frontier task list and discards the edges that land outside its
///   destination shard, so one iteration traverses
///   `threads × |E_frontier|` edges.
/// * `Grid` iterates a bind-time destination-bucketed sub-CSR
///   ([`crate::grid::GridCsr`]): worker `s` sees only the edges whose
///   destination falls in shard `s`, pre-sliced per source in the
///   original adjacency order, so one iteration traverses each
///   frontier edge exactly once — the work-optimal form. The
///   [`crate::metrics::RunReport::edges_examined`] counter records the
///   difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PushStrategy {
    /// Scan-and-skip: full task-list replay per destination shard
    /// (seed behaviour).
    Scan,
    /// Work-optimal replay over the bind-time grid CSR.
    Grid,
}

impl PushStrategy {
    /// The strategy selected by the `SIMDX_PUSH` environment variable:
    /// `"scan"` selects `Scan`; `"grid"`, empty or unset select
    /// `Grid`. Any other value is an [`SimdxError::InvalidKnob`].
    pub fn try_from_env() -> Result<Self, SimdxError> {
        Self::try_from_raw(std::env::var("SIMDX_PUSH").ok())
    }

    /// The pure half of [`Self::try_from_env`] (see [`parse_knob`]).
    pub(crate) fn try_from_raw(raw: Option<String>) -> Result<Self, SimdxError> {
        parse_knob(
            "SIMDX_PUSH",
            "'scan' or 'grid'",
            Self::Grid,
            raw,
            |v| match v {
                "scan" => Some(Self::Scan),
                "grid" => Some(Self::Grid),
                _ => None,
            },
        )
    }

    /// Short label for reports and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Scan => "scan",
            Self::Grid => "grid",
        }
    }
}

impl Default for PushStrategy {
    /// Defers to the cached `SIMDX_PUSH` parse so `SIMDX_PUSH=scan`
    /// flips the default for a whole test/bench process, cached like
    /// the other knob defaults. A malformed value falls back to `Grid`
    /// (no panic in `Default`); [`EngineConfig::validate`] reports it
    /// as a typed error.
    fn default() -> Self {
        cached_push_knob().unwrap_or(Self::Grid)
    }
}

/// What a session does when a parallel run fails with a contained
/// worker panic ([`crate::error::SimdxError::WorkerPanicked`]).
///
/// Either way the pool is poisoned and transparently rebuilt before
/// the next run; the policy only decides whether the *failed query*
/// comes back as an error or is retried. The retry is safe to offer
/// because the serial path is the bit-equality reference: a successful
/// retry returns exactly what the parallel run would have.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Surface the typed error to the caller (default).
    #[default]
    Fail,
    /// Retry the failed query once in [`ExecMode::Serial`] — graceful
    /// degradation instead of a failed query. A successful retry is
    /// flagged via [`crate::metrics::RunReport::aborted`] with
    /// [`crate::supervise::AbortReason::WorkerPanic`].
    RetrySerial,
}

/// Push/pull direction selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectionPolicy {
    /// Frontier-volume heuristic: pull when the frontier's out-degree
    /// sum exceeds `|E| / alpha`, push otherwise (Beamer-style; the
    /// engine consults [`crate::acc::AccProgram::direction`] first).
    Adaptive {
        /// Volume divisor; the paper-era conventional value is 20.
        alpha: u64,
    },
    /// Always push.
    FixedPush,
    /// Always pull.
    FixedPull,
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        Self::Adaptive { alpha: 20 }
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Simulated device.
    pub device: DeviceSpec,
    /// Kernel-fusion strategy (§5).
    pub fusion: FusionStrategy,
    /// Frontier filter policy (§4).
    pub filter: FilterPolicy,
    /// Online-filter per-thread bin capacity. §4 selects 64.
    pub overflow_threshold: usize,
    /// Worklist degree thresholds. §4 defaults to 32 / 128.
    pub thresholds: ClassifyThresholds,
    /// Threads per CTA for every kernel. §5 default is 128.
    pub threads_per_cta: u32,
    /// Device scale divisor matching the dataset twin scale (see
    /// [`simdx_gpu::GpuExecutor::set_scale`]). Default 64, the twin
    /// shrink factor of `simdx-graph::datasets`.
    pub parallelism_scale: u32,
    /// Direction policy.
    pub direction: DirectionPolicy,
    /// Hard iteration cap (defense against non-converging programs).
    pub max_iterations: u32,
    /// Host execution backend (serial reference vs worker pool).
    pub exec: ExecMode,
    /// Frontier representation (vertex worklists vs bitmaps).
    pub frontier: FrontierRepr,
    /// Metadata memory layout (flat vectors vs warp-chunked storage).
    pub layout: MetadataLayout,
    /// Parallel push edge distribution (scan-and-skip vs grid CSR).
    pub push: PushStrategy,
    /// Reaction to a contained worker panic (fail the query vs retry
    /// it once serially).
    pub degrade: DegradePolicy,
}

impl Default for EngineConfig {
    /// Paper defaults with the four host knobs read from their cached
    /// per-process environment defaults (`SIMDX_EXEC`,
    /// `SIMDX_FRONTIER`, `SIMDX_LAYOUT`, `SIMDX_PUSH`); an unparsable
    /// knob selects the hard-coded fallback here and is reported as a
    /// typed error by [`Self::validate`] (which every session
    /// construction calls). Session construction should prefer the
    /// fallible [`Self::from_env`].
    fn default() -> Self {
        Self::with_knobs(
            ExecMode::default(),
            FrontierRepr::default(),
            MetadataLayout::default(),
            PushStrategy::default(),
        )
    }
}

impl EngineConfig {
    /// The paper-default configuration around the given host knobs —
    /// the one constructor that does not consult the environment, so
    /// the fallible path can report a bad knob instead of panicking
    /// halfway through `Default::default()`.
    fn with_knobs(
        exec: ExecMode,
        frontier: FrontierRepr,
        layout: MetadataLayout,
        push: PushStrategy,
    ) -> Self {
        Self {
            device: DeviceSpec::k40(),
            fusion: FusionStrategy::PushPull,
            filter: FilterPolicy::Jit,
            overflow_threshold: 64,
            thresholds: ClassifyThresholds::default(),
            threads_per_cta: 128,
            parallelism_scale: 64,
            direction: DirectionPolicy::default(),
            max_iterations: 100_000,
            exec,
            frontier,
            layout,
            push,
            degrade: DegradePolicy::Fail,
        }
    }

    /// The default configuration with every `SIMDX_*` host knob parsed
    /// fallibly from the environment: a typo in `SIMDX_EXEC`,
    /// `SIMDX_FRONTIER`, `SIMDX_LAYOUT` or `SIMDX_PUSH` comes back as
    /// [`SimdxError::InvalidKnob`] instead of a panic. This reads the
    /// environment on every call (no cache) — it is meant for
    /// session-construction time, not hot loops.
    pub fn from_env() -> Result<Self, SimdxError> {
        Self::from_knob_values(
            std::env::var("SIMDX_EXEC").ok(),
            std::env::var("SIMDX_FRONTIER").ok(),
            std::env::var("SIMDX_LAYOUT").ok(),
            std::env::var("SIMDX_PUSH").ok(),
        )
    }

    /// The pure half of [`Self::from_env`]: build a configuration from
    /// raw knob strings (each `None` meaning "variable unset"), parse
    /// them fallibly and check only [`Self::consistency`] — never the
    /// per-process caches, since the raw values given here are by
    /// definition fresh.
    pub(crate) fn from_knob_values(
        exec: Option<String>,
        frontier: Option<String>,
        layout: Option<String>,
        push: Option<String>,
    ) -> Result<Self, SimdxError> {
        let cfg = Self::with_knobs(
            ExecMode::try_from_raw(exec)?,
            FrontierRepr::try_from_raw(frontier)?,
            MetadataLayout::try_from_raw(layout)?,
            PushStrategy::try_from_raw(push)?,
        );
        cfg.consistency()?;
        Ok(cfg)
    }

    /// Checks the configuration for internal consistency; the session
    /// API ([`crate::session::Runtime::new`]) rejects broken configs up
    /// front instead of letting the engine panic mid-run.
    pub fn validate(&self) -> Result<(), SimdxError> {
        // The cached per-process knob defaults swallow a malformed
        // SIMDX_* value into a fallback (Default has no error channel);
        // surface it here so every session construction fails typed
        // instead of silently running the fallback configuration.
        // Configs built through `from_env` / `from_knob_values` skip
        // this gate — their knobs were read fresh, not from the caches.
        if let Some(err) = cached_knob_error() {
            return Err(SimdxError::InvalidConfig {
                reason: format!("cached knob default is invalid: {err}"),
            });
        }
        self.consistency()
    }

    /// The pure, environment-independent half of [`Self::validate`].
    pub(crate) fn consistency(&self) -> Result<(), SimdxError> {
        let fail = |reason: String| Err(SimdxError::InvalidConfig { reason });
        if self.threads_per_cta == 0 {
            return fail("threads_per_cta must be at least 1".to_string());
        }
        if self.parallelism_scale == 0 {
            return fail("parallelism_scale must be at least 1".to_string());
        }
        if self.thresholds.small_max > self.thresholds.med_max {
            return fail(format!(
                "worklist thresholds inverted: small_max {} > med_max {}",
                self.thresholds.small_max, self.thresholds.med_max
            ));
        }
        if let DirectionPolicy::Adaptive { alpha: 0 } = self.direction {
            return fail("adaptive direction alpha must be at least 1".to_string());
        }
        Ok(())
    }

    /// A configuration for unscaled micro-tests: tiny graphs against an
    /// unscaled device with deterministic defaults.
    pub fn unscaled() -> Self {
        Self {
            parallelism_scale: 1,
            ..Self::default()
        }
    }

    /// Builder: set the filter policy.
    pub fn with_filter(mut self, filter: FilterPolicy) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: set the fusion strategy.
    pub fn with_fusion(mut self, fusion: FusionStrategy) -> Self {
        self.fusion = fusion;
        self
    }

    /// Builder: set the device.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Builder: set the online-filter overflow threshold (Fig. 9(a)
    /// sweeps this).
    pub fn with_overflow_threshold(mut self, threshold: usize) -> Self {
        self.overflow_threshold = threshold;
        self
    }

    /// Builder: set the direction policy.
    pub fn with_direction(mut self, direction: DirectionPolicy) -> Self {
        self.direction = direction;
        self
    }

    /// Builder: set the host execution backend.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Builder: parallel host execution with `threads` workers (0 =
    /// available parallelism).
    pub fn parallel(self, threads: usize) -> Self {
        self.with_exec(ExecMode::Parallel { threads })
    }

    /// Builder: set the frontier representation.
    pub fn with_frontier(mut self, frontier: FrontierRepr) -> Self {
        self.frontier = frontier;
        self
    }

    /// Builder: bitmap frontier representation.
    pub fn bitmap(self) -> Self {
        self.with_frontier(FrontierRepr::Bitmap)
    }

    /// Builder: set the metadata layout.
    pub fn with_layout(mut self, layout: MetadataLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Builder: warp-chunked metadata layout.
    pub fn chunked(self) -> Self {
        self.with_layout(MetadataLayout::Chunked)
    }

    /// Builder: set the parallel push strategy.
    pub fn with_push(mut self, push: PushStrategy) -> Self {
        self.push = push;
        self
    }

    /// Builder: the legacy scan-and-skip push replay.
    pub fn scan_push(self) -> Self {
        self.with_push(PushStrategy::Scan)
    }

    /// Builder: set the worker-panic degradation policy.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Builder: retry panicked parallel queries once serially.
    pub fn degrade_serial(self) -> Self {
        self.with_degrade(DegradePolicy::RetrySerial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.overflow_threshold, 64);
        assert_eq!(c.threads_per_cta, 128);
        assert_eq!(c.thresholds.small_max, 32);
        assert_eq!(c.thresholds.med_max, 128);
        assert_eq!(c.filter, FilterPolicy::Jit);
        assert_eq!(c.fusion, FusionStrategy::PushPull);
        assert_eq!(c.device.name, "Tesla K40");
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::unscaled()
            .with_filter(FilterPolicy::BallotOnly)
            .with_fusion(FusionStrategy::None)
            .with_overflow_threshold(8);
        assert_eq!(c.parallelism_scale, 1);
        assert_eq!(c.filter, FilterPolicy::BallotOnly);
        assert_eq!(c.fusion, FusionStrategy::None);
        assert_eq!(c.overflow_threshold, 8);
    }

    #[test]
    fn exec_mode_resolution() {
        assert_eq!(ExecMode::Serial.worker_count(), 1);
        assert_eq!(ExecMode::Parallel { threads: 4 }.worker_count(), 4);
        assert!(ExecMode::Parallel { threads: 0 }.worker_count() >= 1);
        assert_eq!(ExecMode::Serial.label(), "serial");
        assert_eq!(ExecMode::Parallel { threads: 4 }.label(), "parallel/4");
        let c = EngineConfig::unscaled().parallel(2);
        assert_eq!(c.exec, ExecMode::Parallel { threads: 2 });
        // Without SIMDX_EXEC the default backend is serial; with it,
        // the whole process flips (both are bit-equal by contract).
        assert!(matches!(
            EngineConfig::default().exec,
            ExecMode::Serial | ExecMode::Parallel { .. }
        ));
    }

    #[test]
    fn metadata_layout_builders_and_labels() {
        assert_eq!(MetadataLayout::Flat.label(), "flat");
        assert_eq!(MetadataLayout::Chunked.label(), "chunked");
        let c = EngineConfig::unscaled().chunked();
        assert_eq!(c.layout, MetadataLayout::Chunked);
        let c = c.with_layout(MetadataLayout::Flat);
        assert_eq!(c.layout, MetadataLayout::Flat);
        // Without SIMDX_LAYOUT in the test environment the default is
        // flat; with it, CI flips every default config to chunked
        // (both are valid here by the bit-equality contract).
        assert!(matches!(
            EngineConfig::default().layout,
            MetadataLayout::Flat | MetadataLayout::Chunked
        ));
    }

    #[test]
    fn env_knob_contract() {
        // Unset and empty fall back to the default; matching is
        // case-insensitive. Driven through the pure half so the test
        // never mutates the process environment.
        assert_eq!(
            parse_knob("SIMDX_NO_SUCH_KNOB", "anything", 7, None, |_| None),
            Ok(7)
        );
        assert_eq!(
            parse_knob("SIMDX_NO_SUCH_KNOB", "x", 0, None, |v| (v == "set")
                .then_some(1)),
            Ok(0),
            "parser only runs on present, non-empty values"
        );
    }

    #[test]
    fn from_env_path_never_consults_the_stale_caches() {
        // Populate the per-process caches with the clean-environment
        // defaults first — this is the state a long-lived embedder is
        // in when it later changes SIMDX_* and constructs a new
        // runtime.
        let _ = EngineConfig::default();
        // The fresh-read path must honor the new raw values, not the
        // cached defaults.
        let cfg = EngineConfig::from_knob_values(
            Some("parallel:3".to_string()),
            Some("bitmap".to_string()),
            Some("chunked".to_string()),
            Some("scan".to_string()),
        )
        .expect("all four knob values are valid");
        assert_eq!(cfg.exec, ExecMode::Parallel { threads: 3 });
        assert_eq!(cfg.frontier, FrontierRepr::Bitmap);
        assert_eq!(cfg.layout, MetadataLayout::Chunked);
        assert_eq!(cfg.push, PushStrategy::Scan);
        // And a typo surfaces as a typed error from the fresh read,
        // regardless of what the caches hold.
        let err = EngineConfig::from_knob_values(Some("warp9".to_string()), None, None, None)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimdxError::InvalidKnob {
                    var: "SIMDX_EXEC",
                    ..
                }
            ),
            "wrong error: {err:?}"
        );
    }

    #[test]
    fn knob_parser_reports_typos_as_typed_errors() {
        // The pure half is driven directly — no process-environment
        // mutation, which would race concurrent `getenv` from the
        // other tests in this binary.
        let parse = |v: &str| (v == "a" || v == "b").then_some(1);
        let err = parse_knob(
            "SIMDX_TEST_KNOB",
            "'a' or 'b'",
            0,
            Some("Bogus".to_string()),
            parse,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimdxError::InvalidKnob {
                var: "SIMDX_TEST_KNOB",
                expected: "'a' or 'b'",
                value: "Bogus".to_string(),
            }
        );
        // The error's display is the exact historical panic message.
        assert_eq!(
            err.to_string(),
            "SIMDX_TEST_KNOB must be 'a' or 'b', got 'Bogus'"
        );
        // Case-insensitive accept, empty-selects-default.
        assert_eq!(parse_knob("K", "x", 0, Some("B".to_string()), parse), Ok(1));
        assert_eq!(parse_knob("K", "x", 7, Some(String::new()), parse), Ok(7));
    }

    #[test]
    fn push_strategy_builders_and_labels() {
        assert_eq!(PushStrategy::Scan.label(), "scan");
        assert_eq!(PushStrategy::Grid.label(), "grid");
        let c = EngineConfig::unscaled().scan_push();
        assert_eq!(c.push, PushStrategy::Scan);
        let c = c.with_push(PushStrategy::Grid);
        assert_eq!(c.push, PushStrategy::Grid);
        // Without SIMDX_PUSH the default strategy is the work-optimal
        // grid; with it, CI flips every default config to the legacy
        // scan replay (both are valid here by the bit-equality
        // contract).
        assert!(matches!(
            EngineConfig::default().push,
            PushStrategy::Grid | PushStrategy::Scan
        ));
    }

    #[test]
    fn push_knob_rejects_typos() {
        let parse = |v: &str| match v {
            "scan" => Some(PushStrategy::Scan),
            "grid" => Some(PushStrategy::Grid),
            _ => None,
        };
        let err = parse_knob(
            "SIMDX_PUSH",
            "'scan' or 'grid'",
            PushStrategy::Grid,
            Some("mesh".to_string()),
            parse,
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "SIMDX_PUSH must be 'scan' or 'grid', got 'mesh'"
        );
        assert_eq!(
            parse_knob("SIMDX_PUSH", "x", PushStrategy::Grid, None, parse),
            Ok(PushStrategy::Grid)
        );
    }

    #[test]
    fn degrade_policy_defaults_to_fail_and_composes() {
        assert_eq!(EngineConfig::default().degrade, DegradePolicy::Fail);
        let c = EngineConfig::unscaled().degrade_serial();
        assert_eq!(c.degrade, DegradePolicy::RetrySerial);
        let c = c.with_degrade(DegradePolicy::Fail);
        assert_eq!(c.degrade, DegradePolicy::Fail);
    }

    #[test]
    fn clean_environment_has_no_cached_knob_error() {
        // The test processes never set SIMDX_* to invalid values, so
        // the cached defaults parse cleanly and validate() does not
        // reject on their account.
        assert_eq!(cached_knob_error(), None);
    }

    #[test]
    fn from_env_matches_default_when_unset() {
        // The test processes never set SIMDX_* to invalid values, so
        // the fallible path must agree with the cached defaults.
        let cfg = EngineConfig::from_env().expect("clean environment");
        let def = EngineConfig::default();
        assert_eq!(cfg.exec, def.exec);
        assert_eq!(cfg.frontier, def.frontier);
        assert_eq!(cfg.layout, def.layout);
        assert_eq!(cfg.push, def.push);
        assert_eq!(cfg.max_iterations, def.max_iterations);
    }

    #[test]
    fn validate_rejects_broken_configs() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
        let cfg = EngineConfig {
            threads_per_cta: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(SimdxError::InvalidConfig { .. })
        ));
        let cfg = EngineConfig {
            parallelism_scale: 0,
            ..EngineConfig::default()
        };
        assert!(cfg.validate().is_err());
        let mut cfg = EngineConfig::default();
        cfg.thresholds.small_max = cfg.thresholds.med_max + 1;
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig {
            direction: DirectionPolicy::Adaptive { alpha: 0 },
            ..EngineConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn frontier_repr_builders_and_labels() {
        assert_eq!(FrontierRepr::List.label(), "list");
        assert_eq!(FrontierRepr::Bitmap.label(), "bitmap");
        let c = EngineConfig::unscaled().bitmap();
        assert_eq!(c.frontier, FrontierRepr::Bitmap);
        let c = c.with_frontier(FrontierRepr::List);
        assert_eq!(c.frontier, FrontierRepr::List);
        // Without SIMDX_FRONTIER in the test environment the default
        // is the list representation; with it, CI flips every default
        // config to bitmap (both are valid here by the bit-equality
        // contract).
        assert!(matches!(
            EngineConfig::default().frontier,
            FrontierRepr::List | FrontierRepr::Bitmap
        ));
    }
}
