//! The ballot filter (§4).
//!
//! Threads cooperatively scan the metadata arrays in warp-sized,
//! coalesced chunks; `__ballot` condenses each chunk's Active results
//! into a lane mask, and the set bits are appended — in vertex order —
//! to the next active list. Because each warp owns a contiguous vertex
//! range, the output is **sorted and duplicate-free**, the property that
//! makes next-iteration memory access sequential (§4's "dual benefits:
//! coalesced scan and sorted active vertices").

use crate::acc::AccProgram;
use crate::config::MetadataLayout;
use crate::frontier::WORD_BITS;
use simdx_gpu::warp::{ballot, popc};
use simdx_gpu::{Cost, GpuExecutor, KernelDesc, SchedUnit, WARP_SIZE};
use simdx_graph::VertexId;

/// Per-warp-chunk scan cost: two coalesced metadata loads per lane,
/// the compare + ballot + popc ALU work, and the compacted append of
/// the `votes` voting lanes. Shared by the dense and sparse scans so
/// their charged sequences cannot drift apart.
fn chunk_cost(chunk: usize, votes: u32) -> Cost {
    Cost {
        compute_ops: 3 * chunk as u64,
        coalesced_reads: 2 * chunk as u64,
        writes: u64::from(votes),
        width: WARP_SIZE as u64,
        ..Cost::default()
    }
}

/// Reusable output buffers of one ballot-scan partition (also the
/// serial scan's scratch — the serial engine is the one-partition case).
#[derive(Clone, Debug, Default)]
pub struct WarpScanScratch {
    /// Per-warp-chunk scan costs, in chunk order.
    pub tasks: Vec<Cost>,
    /// Active vertices found, in vertex order.
    pub active: Vec<VertexId>,
}

impl WarpScanScratch {
    /// Clears both buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.active.clear();
    }
}

/// Scans vertices `[start, end)` of the metadata arrays in warp-sized
/// chunks, appending active vertices and per-chunk costs to `out`.
///
/// `start` must be warp-aligned so that partition boundaries fall on
/// the same chunk boundaries the whole-array scan uses — partitions
/// concatenated in range order are then bit-identical (same actives,
/// same cost sequence) to one scan of the full range.
pub fn scan_range<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    out: &mut WarpScanScratch,
) {
    assert_eq!(curr.len(), prev.len(), "metadata arrays must be parallel");
    assert!(
        start.is_multiple_of(WARP_SIZE),
        "partition start must be warp-aligned"
    );
    let mut preds = [false; WARP_SIZE];
    let mut base = start;
    while base < end {
        let chunk = (end - base).min(WARP_SIZE);
        for lane in 0..chunk {
            let v = (base + lane) as VertexId;
            preds[lane] = program.active(v, &curr[base + lane], &prev[base + lane]);
        }
        // `__ballot` across the warp, then the warp appends its set
        // lanes in order — keeping the global output sorted because
        // warp w owns vertices [32w, 32w+32).
        let mask = ballot(&preds[..chunk]);
        let votes = popc(mask);
        for lane in 0..chunk {
            if mask & (1 << lane) != 0 {
                out.active.push((base + lane) as VertexId);
            }
        }
        out.tasks.push(chunk_cost(chunk, votes));
        base += chunk;
    }
}

/// The chunked-layout form of [`scan_range`]: full 32-vertex chunks
/// are swept through `[M; 32]` array windows with a fixed-width lane
/// loop, so the compiler can unroll/vectorize the Active compares into
/// a mask (the host analogue of `__ballot`); the partial tail chunk
/// (when `end % 32 != 0`) falls back to the scalar loop and never
/// reads the chunked buffer's padding lanes.
///
/// The output — actives *and* per-chunk cost sequence — is
/// bit-identical to [`scan_range`] over the same range: same lane
/// order inside each chunk (ascending, the bit order `ballot` packs),
/// same `chunk_cost` per chunk.
pub fn scan_range_chunked<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    out: &mut WarpScanScratch,
) {
    assert_eq!(curr.len(), prev.len(), "metadata arrays must be parallel");
    assert!(
        start.is_multiple_of(WARP_SIZE),
        "partition start must be warp-aligned"
    );
    let mut base = start;
    while base + WARP_SIZE <= end {
        let c: &[P::Meta; WARP_SIZE] = curr[base..base + WARP_SIZE]
            .try_into()
            .expect("exact chunk");
        let p: &[P::Meta; WARP_SIZE] = prev[base..base + WARP_SIZE]
            .try_into()
            .expect("exact chunk");
        let mut mask = 0u32;
        for lane in 0..WARP_SIZE {
            mask |= (program.active((base + lane) as VertexId, &c[lane], &p[lane]) as u32) << lane;
        }
        let votes = popc(mask);
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            out.active.push((base + lane) as VertexId);
            m &= m - 1;
        }
        out.tasks.push(chunk_cost(WARP_SIZE, votes));
        base += WARP_SIZE;
    }
    if base < end {
        scan_range(program, curr, prev, base, end, out);
    }
}

/// Layout dispatch for the dense scan: `Chunked` takes the fixed-width
/// chunk sweep, `Flat` the scalar reference loop. Both are
/// bit-identical; only the loop shape (and therefore what the host
/// compiler can vectorize) differs.
pub fn scan_range_layout<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    layout: MetadataLayout,
    out: &mut WarpScanScratch,
) {
    match layout {
        MetadataLayout::Flat => scan_range(program, curr, prev, start, end, out),
        MetadataLayout::Chunked => scan_range_chunked(program, curr, prev, start, end, out),
    }
}

/// [`scan_range`] with a word-level occupancy skip: `occupancy` is the
/// changed-vertex bitmap's backing words (bit `v % 64` of word
/// `v / 64`), and any all-zero word — 64 vertices, two warp chunks —
/// is charged without touching the metadata arrays.
///
/// The output (actives *and* per-chunk cost sequence) is bit-identical
/// to [`scan_range`] over the same range because a vertex whose
/// metadata still equals the iteration-start snapshot cannot satisfy
/// the Active condition (`active(v, m, m)` is `false` for every ACC
/// program), so a zero occupancy word proves its two chunks vote
/// nothing: same zero `writes`, same scan reads, no actives. `start`
/// must be word-aligned (64) so partition boundaries fall on occupancy
/// words; partitions concatenated in range order remain bit-identical
/// to one scan of the full range.
pub fn scan_range_sparse<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    occupancy: &[u64],
    out: &mut WarpScanScratch,
) {
    scan_range_sparse_layout(
        program,
        curr,
        prev,
        start,
        end,
        occupancy,
        MetadataLayout::Flat,
        out,
    );
}

/// [`scan_range_sparse`] with the metadata-layout dispatch of
/// [`scan_range_layout`]: occupied words (two warp chunks — a bitmap
/// word is exactly two metadata chunks) are swept with the fixed-width
/// chunked loop when `layout` is `Chunked`. All-zero-word charging is
/// shared, so the dense and sparse, flat and chunked scans can never
/// drift apart in cost.
#[allow(clippy::too_many_arguments)]
pub fn scan_range_sparse_layout<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    occupancy: &[u64],
    layout: MetadataLayout,
    out: &mut WarpScanScratch,
) {
    assert_eq!(curr.len(), prev.len(), "metadata arrays must be parallel");
    assert!(
        start.is_multiple_of(WORD_BITS),
        "partition start must be word-aligned"
    );
    assert!(
        occupancy.len() * WORD_BITS >= end,
        "occupancy must cover the scanned range"
    );
    let mut base = start;
    while base < end {
        let word_end = (base + WORD_BITS).min(end);
        if occupancy[base / WORD_BITS] == 0 {
            // No vertex in this word changed: charge the two warp
            // chunks (or the partial tail) exactly as the dense scan
            // would — full coalesced reads, zero votes — without
            // loading metadata.
            while base < word_end {
                let chunk = (word_end - base).min(WARP_SIZE);
                out.tasks.push(chunk_cost(chunk, 0));
                base += chunk;
            }
        } else {
            scan_range_layout(program, curr, prev, base, word_end, layout, out);
            base = word_end;
        }
    }
}

/// Scans `curr` vs `prev` metadata with the program's Active condition
/// and returns the sorted, duplicate-free active list, charging the scan
/// kernel to `executor`.
///
/// # Panics
///
/// Panics if the metadata arrays have different lengths.
pub fn scan<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
) -> Vec<VertexId> {
    let mut out = WarpScanScratch::default();
    scan_range(program, curr, prev, 0, curr.len(), &mut out);
    executor.run_kernel(kernel, SchedUnit::Warp, &out.tasks, launch);
    out.active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CombineKind;
    use simdx_gpu::DeviceSpec;
    use simdx_graph::{Graph, Weight};

    /// Trivial program whose Active is the default curr != prev.
    struct Diff;

    impl AccProgram for Diff {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "diff"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Vote
        }

        fn init(&self, _g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            unreachable!("not used by filter tests")
        }

        fn compute(
            &self,
            _s: VertexId,
            _d: VertexId,
            _w: Weight,
            _ms: &u32,
            _md: &u32,
        ) -> Option<u32> {
            None
        }

        fn combine(&self, a: u32, _b: u32) -> u32 {
            a
        }

        fn apply(&self, _v: VertexId, _c: &u32, _u: u32) -> Option<u32> {
            None
        }
    }

    fn setup() -> (GpuExecutor, KernelDesc) {
        (
            GpuExecutor::new(DeviceSpec::k40()),
            KernelDesc::new("taskmgmt", 24),
        )
    }

    #[test]
    fn finds_changed_vertices_sorted() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 100];
        let mut curr = prev.clone();
        curr[97] = 1;
        curr[3] = 1;
        curr[40] = 2;
        let list = scan(&Diff, &curr, &prev, &mut ex, &k, true);
        assert_eq!(list, vec![3, 40, 97]);
        assert_eq!(ex.stats().kernel_launches, 1);
    }

    #[test]
    fn no_changes_empty_list_but_scan_still_paid() {
        let (mut ex, k) = setup();
        let meta = vec![7u32; 1000];
        let list = scan(&Diff, &meta, &meta, &mut ex, &k, false);
        assert!(list.is_empty());
        // The scan cost is proportional to V even with nothing active —
        // the weakness JIT control exists to avoid (ER/RC in §4).
        assert!(ex.stats().total_cycles > 0);
    }

    #[test]
    fn partial_last_warp_handled() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 33];
        let mut curr = prev.clone();
        curr[32] = 5;
        let list = scan(&Diff, &curr, &prev, &mut ex, &k, false);
        assert_eq!(list, vec![32]);
    }

    #[test]
    fn cost_proportional_to_vertices_not_actives() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 32 * 1024];
        let mut curr = prev.clone();
        curr[5] = 1;
        scan(&Diff, &curr, &prev, &mut ex, &k, false);
        let one_active = ex.stats().total_cycles;

        ex.reset();
        let mut all = prev.clone();
        for m in all.iter_mut() {
            *m = 1;
        }
        scan(&Diff, &all, &prev, &mut ex, &k, false);
        let all_active = ex.stats().total_cycles;
        // The scan dominates, not the append volume: the all-active case
        // adds write traffic but stays within a small factor.
        assert!(all_active < one_active * 8);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_arrays_panic() {
        let (mut ex, k) = setup();
        scan(&Diff, &[1u32, 2], &[1u32], &mut ex, &k, false);
    }

    #[test]
    fn empty_metadata_ok() {
        let (mut ex, k) = setup();
        let list = scan(&Diff, &[] as &[u32], &[], &mut ex, &k, false);
        assert!(list.is_empty());
    }

    /// Builds the occupancy words for a metadata pair (bit set iff
    /// curr != prev), the invariant the engine maintains.
    fn occupancy(curr: &[u32], prev: &[u32]) -> Vec<u64> {
        let mut words = vec![0u64; curr.len().div_ceil(64)];
        for (v, (c, p)) in curr.iter().zip(prev).enumerate() {
            if c != p {
                words[v / 64] |= 1 << (v % 64);
            }
        }
        words
    }

    #[test]
    fn sparse_scan_is_bit_identical_to_dense() {
        // Misaligned length: 33 words plus a 5-vertex tail.
        let n = 64 * 33 + 5;
        let prev = vec![0u32; n];
        let mut curr = prev.clone();
        for v in [0usize, 63, 64, 1000, 2100, n - 1] {
            curr[v] = 1;
        }
        let occ = occupancy(&curr, &prev);
        let mut dense = WarpScanScratch::default();
        scan_range(&Diff, &curr, &prev, 0, n, &mut dense);
        let mut sparse = WarpScanScratch::default();
        scan_range_sparse(&Diff, &curr, &prev, 0, n, &occ, &mut sparse);
        assert_eq!(sparse.active, dense.active);
        assert_eq!(sparse.tasks, dense.tasks);
    }

    #[test]
    fn sparse_scan_partitions_concatenate() {
        let n = 64 * 8;
        let prev = vec![0u32; n];
        let mut curr = prev.clone();
        curr[70] = 1;
        curr[400] = 2;
        let occ = occupancy(&curr, &prev);
        let mut whole = WarpScanScratch::default();
        scan_range_sparse(&Diff, &curr, &prev, 0, n, &occ, &mut whole);
        // Word-aligned split at vertex 256 (word 4).
        let mut parts = WarpScanScratch::default();
        scan_range_sparse(&Diff, &curr, &prev, 0, 256, &occ, &mut parts);
        scan_range_sparse(&Diff, &curr, &prev, 256, n, &occ, &mut parts);
        assert_eq!(parts.active, whole.active);
        assert_eq!(parts.tasks, whole.tasks);
    }

    #[test]
    fn sparse_scan_all_zero_still_charges_every_chunk() {
        let n = 64 * 4 + 17;
        let meta = vec![3u32; n];
        let occ = vec![0u64; n.div_ceil(64)];
        let mut out = WarpScanScratch::default();
        scan_range_sparse(&Diff, &meta, &meta, 0, n, &occ, &mut out);
        assert!(out.active.is_empty());
        // Same chunk count as the dense scan: the JIT cost model sees
        // the same V-proportional kernel either way.
        assert_eq!(out.tasks.len(), n.div_ceil(WARP_SIZE));
        assert!(out.tasks.iter().all(|t| t.writes == 0));
    }

    #[test]
    fn chunked_scan_is_bit_identical_to_scalar() {
        // Warp-misaligned length: 40 full chunks plus a 13-vertex tail.
        let n = 32 * 40 + 13;
        let prev = vec![0u32; n];
        let mut curr = prev.clone();
        for v in [0usize, 31, 32, 33, 500, 1000, n - 1] {
            curr[v] = 1;
        }
        let mut scalar = WarpScanScratch::default();
        scan_range(&Diff, &curr, &prev, 0, n, &mut scalar);
        let mut chunked = WarpScanScratch::default();
        scan_range_chunked(&Diff, &curr, &prev, 0, n, &mut chunked);
        assert_eq!(chunked.active, scalar.active);
        assert_eq!(chunked.tasks, scalar.tasks);
        // Layout dispatch reaches the same two paths.
        for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
            let mut out = WarpScanScratch::default();
            scan_range_layout(&Diff, &curr, &prev, 0, n, layout, &mut out);
            assert_eq!(out.active, scalar.active, "{layout:?}");
            assert_eq!(out.tasks, scalar.tasks, "{layout:?}");
        }
    }

    #[test]
    fn chunked_scan_partitions_concatenate() {
        let n = 32 * 9 + 7;
        let prev = vec![0u32; n];
        let mut curr = prev.clone();
        curr[5] = 1;
        curr[200] = 2;
        curr[n - 1] = 3;
        let mut whole = WarpScanScratch::default();
        scan_range_chunked(&Diff, &curr, &prev, 0, n, &mut whole);
        let mut parts = WarpScanScratch::default();
        scan_range_chunked(&Diff, &curr, &prev, 0, 96, &mut parts);
        scan_range_chunked(&Diff, &curr, &prev, 96, n, &mut parts);
        assert_eq!(parts.active, whole.active);
        assert_eq!(parts.tasks, whole.tasks);
    }

    #[test]
    fn sparse_chunked_scan_is_bit_identical_to_sparse() {
        let n = 64 * 21 + 39;
        let prev = vec![0u32; n];
        let mut curr = prev.clone();
        for v in [1usize, 64, 65, 127, 700, n - 2] {
            curr[v] = 9;
        }
        let occ = occupancy(&curr, &prev);
        let mut flat = WarpScanScratch::default();
        scan_range_sparse(&Diff, &curr, &prev, 0, n, &occ, &mut flat);
        let mut chunked = WarpScanScratch::default();
        scan_range_sparse_layout(
            &Diff,
            &curr,
            &prev,
            0,
            n,
            &occ,
            MetadataLayout::Chunked,
            &mut chunked,
        );
        assert_eq!(chunked.active, flat.active);
        assert_eq!(chunked.tasks, flat.tasks);
    }

    #[test]
    #[should_panic(expected = "warp-aligned")]
    fn chunked_scan_rejects_misaligned_start() {
        let meta = vec![0u32; 64];
        let mut out = WarpScanScratch::default();
        scan_range_chunked(&Diff, &meta, &meta, 5, 64, &mut out);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn sparse_scan_rejects_misaligned_start() {
        let meta = vec![0u32; 128];
        let occ = vec![0u64; 2];
        let mut out = WarpScanScratch::default();
        scan_range_sparse(&Diff, &meta, &meta, 32, 128, &occ, &mut out);
    }
}
