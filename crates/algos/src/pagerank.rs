//! PageRank in the ACC model (§6).
//!
//! "PageRank updates the rank value of one vertex based on the
//! contribution of all in-neighbors iteratively till all vertices have
//! stable rank values. Because the contributions of in neighbors are
//! summarized to the destination vertex, we start PageRank with the
//! pull model and agg_sum as the merge operation."
//!
//! This implementation keeps the pull model throughout (the paper's
//! final push phase is a tail optimization; see DESIGN.md). The Active
//! condition is rank movement beyond `eps`, so the frontier shrinks as
//! ranks stabilize and the run terminates when no rank moves — exactly
//! the "majority of the vertices are stable" dynamics that drive the
//! Fig. 8 filter pattern (ballot at the first iteration, online later).

use simdx_core::acc::{AccProgram, CombineKind, DirectionCtx};
use simdx_core::{EngineConfig, RunResult, Runtime, SimdxError};
use simdx_graph::csr::Direction;
use simdx_graph::{Graph, VertexId, Weight};

/// PageRank configuration and precomputed degree table.
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 conventionally).
    pub damping: f32,
    /// Rank-movement threshold below which a vertex is stable.
    pub eps: f32,
    /// Reciprocal out-degrees, indexed by vertex.
    inv_out_degree: Vec<f32>,
    /// `(1 - damping) / |V|`.
    base: f32,
}

impl PageRank {
    /// Creates a PageRank program for `graph` with standard damping.
    pub fn new(graph: &Graph) -> Self {
        Self::with_params(graph, 0.85, 1e-6)
    }

    /// Creates a PageRank program with explicit damping and epsilon.
    pub fn with_params(graph: &Graph, damping: f32, eps: f32) -> Self {
        let n = graph.num_vertices();
        let out = graph.out();
        let inv_out_degree = (0..n)
            .map(|v| {
                let d = out.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f32
                }
            })
            .collect();
        Self {
            damping,
            eps,
            inv_out_degree,
            base: (1.0 - damping) / n.max(1) as f32,
        }
    }
}

impl AccProgram for PageRank {
    type Meta = f32;
    type Update = f32;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Aggregation
    }

    fn init(&self, graph: &Graph) -> (Vec<f32>, Vec<VertexId>) {
        let n = graph.num_vertices();
        let in_ = graph.in_();
        // Vertices without in-edges never receive updates; seed them at
        // their fixpoint value so results match the Jacobi reference.
        let meta = (0..n)
            .map(|v| {
                if in_.degree(v) == 0 {
                    self.base
                } else {
                    1.0 / n as f32
                }
            })
            .collect();
        (meta, (0..n).collect())
    }

    fn active(&self, _v: VertexId, curr: &f32, prev: &f32) -> bool {
        (curr - prev).abs() > self.eps
    }

    fn compute(
        &self,
        src: VertexId,
        _dst: VertexId,
        _w: Weight,
        m_src: &f32,
        _m_dst: &f32,
    ) -> Option<f32> {
        Some(m_src * self.inv_out_degree[src as usize])
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _v: VertexId, current: &f32, update: f32) -> Option<f32> {
        let rank = self.base + self.damping * update;
        ((rank - current).abs() > self.eps).then_some(rank)
    }

    fn direction(&self, _ctx: &DirectionCtx) -> Option<Direction> {
        Some(Direction::Pull)
    }
}

/// Runs PageRank and returns ranks plus the run report.
pub fn run(graph: &Graph, config: EngineConfig) -> Result<RunResult<f32>, SimdxError> {
    let runtime = Runtime::new(config)?;
    runtime.bind(graph).run(PageRank::new(graph)).execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use simdx_graph::{datasets, EdgeList};

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "rank mismatch at {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn matches_reference_on_diamond() {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(vec![
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 0),
        ]));
        let r = run(&g, EngineConfig::unscaled()).expect("pagerank");
        let expected = reference::pagerank(&g, 0.85, 1e-6, 500);
        assert_close(&r.meta, &expected, 1e-4);
    }

    #[test]
    fn matches_reference_on_dataset_twin() {
        let g = datasets::dataset("PK").unwrap().build_scaled(4, 5);
        let r = run(&g, EngineConfig::default()).expect("pagerank");
        let expected = reference::pagerank(&g, 0.85, 1e-6, 500);
        assert_close(&r.meta, &expected, 1e-4);
    }

    #[test]
    fn chunked_layout_preserves_float_bit_patterns() {
        // PageRank's f32 accumulation order is the sharpest layout
        // probe: any chunk-induced reordering of the sums would move
        // rank bits. Compare exactly, not within tolerance.
        use simdx_core::MetadataLayout;
        let g = datasets::dataset("PK").unwrap().build_scaled(4, 5);
        let flat = run(
            &g,
            EngineConfig::default().with_layout(MetadataLayout::Flat),
        )
        .expect("pr flat");
        let chunked = run(&g, EngineConfig::default().chunked()).expect("pr chunked");
        assert_eq!(chunked.meta, flat.meta);
        assert_eq!(chunked.report.log, flat.report.log);
        assert_eq!(chunked.report.stats, flat.report.stats);
    }

    #[test]
    fn hub_outranks_leaf() {
        let g =
            Graph::directed_from_edges(EdgeList::from_pairs(vec![(1, 0), (2, 0), (3, 0), (0, 1)]));
        let r = run(&g, EngineConfig::unscaled()).expect("pagerank");
        assert!(r.meta[0] > r.meta[2]);
    }

    #[test]
    fn first_iteration_uses_ballot_filter() {
        // "PageRank need the ballot filter at exactly the first
        // iteration of computation" (§4) — all vertices change at once.
        let g = datasets::dataset("PK").unwrap().build_scaled(4, 4);
        // The twin is shrunk 16x below dataset scale; shrink the device
        // by the same factor so bin capacity tracks frontier volume.
        let cfg = EngineConfig {
            parallelism_scale: 64 * 16,
            ..EngineConfig::default()
        };
        let r = run(&g, cfg).expect("pagerank");
        let first = &r.report.log.records[0];
        assert!(first.overflowed, "iteration 0 should overflow the bins");
        use simdx_core::FilterKind;
        assert_eq!(first.filter, FilterKind::Ballot);
        // Later iterations shrink back under the threshold.
        let last = r.report.log.records.last().unwrap();
        assert_eq!(last.filter, FilterKind::Online);
    }

    #[test]
    fn terminates_on_stability() {
        let g = datasets::dataset("RC").unwrap().build_scaled(5, 4);
        let r = run(&g, EngineConfig::default()).expect("pagerank");
        assert!(r.report.iterations < 200, "PR should converge");
    }
}
