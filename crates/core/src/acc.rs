//! The Active-Compute-Combine (ACC) programming model (§3).
//!
//! ACC asks a program for three data-parallel functions:
//!
//! * **Active** — the condition deciding whether a vertex is active,
//!   evaluated over its current and previous metadata (`∃v ← active(Mv, v)`);
//! * **Compute** — the computation on one edge
//!   (`update_{v→u} ← compute(Mv, M(v,u), Mu)`);
//! * **Combine** — merging updates with a commutative, associative `⊕`
//!   (`update_u ← ⊕_{v∈Nbr[u]} update_{v→u}`).
//!
//! The engine schedules these over Thread/Warp/CTA kernels and applies
//! the combined result with a single non-atomic write per vertex, which
//! is the model's key difference from Gunrock's atomic-update approach
//! (Fig. 5).

use simdx_graph::csr::Direction;
use simdx_graph::{Graph, VertexId, Weight};

/// The two classes of Combine operators SIMD-X optimizes (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CombineKind {
    /// Every update is needed (sum, min over distinct values): PageRank,
    /// SSSP, k-Core. Overwrites cannot be tolerated.
    Aggregation,
    /// All updates are identical, any single one suffices: BFS, WCC,
    /// SCC. Enables collaborative early termination.
    Vote,
}

/// Context handed to [`AccProgram::direction`] so programs can request
/// push/pull switches (§5's "push in the first and last iterations, pull
/// in between" patterns are expressed through this hook).
#[derive(Clone, Copy, Debug)]
pub struct DirectionCtx {
    /// Zero-based iteration index about to run.
    pub iteration: u32,
    /// Number of entries in the active worklists.
    pub frontier_len: u64,
    /// Sum of scan-direction degrees over the frontier (the workload
    /// volume the Beamer-style direction heuristic uses).
    pub frontier_degree_sum: u64,
    /// Total vertices in the graph.
    pub num_vertices: u64,
    /// Total directed edges in the graph.
    pub num_edges: u64,
    /// Direction used by the previous iteration.
    pub previous: Direction,
}

/// A graph algorithm expressed in the ACC model.
///
/// Implementations provide pure per-vertex/per-edge logic; all
/// scheduling, filtering and fusion decisions belong to the engine.
/// `Meta` is the per-vertex algorithmic metadata (the "distance array"
/// of Fig. 1), kept in current/previous pairs so `active` can compare
/// across iterations.
///
/// Programs must be `Sync`: the engine's parallel host backend
/// ([`crate::config::ExecMode::Parallel`]) shares the program across
/// its worker threads. ACC functions are pure per-vertex/per-edge logic
/// over immutable `&self`, so this holds structurally for every
/// implementation.
pub trait AccProgram: Sync {
    /// Per-vertex metadata.
    type Meta: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static;
    /// The value produced by `compute` on one edge and folded by
    /// `combine`.
    type Update: Copy + std::fmt::Debug + Send + Sync + 'static;

    /// Short algorithm name for reports ("bfs", "sssp", ...).
    fn name(&self) -> &'static str;

    /// Which Combine class this program uses.
    fn combine_kind(&self) -> CombineKind;

    /// Produces the initial metadata array and initial frontier
    /// (Fig. 4(a) `Init`).
    fn init(&self, graph: &Graph) -> (Vec<Self::Meta>, Vec<VertexId>);

    /// The Active condition: is `v` active given its current and
    /// previous-iteration metadata? (Fig. 4(a): `metadata_curr[v] !=
    /// metadata_prev[v]` for SSSP.)
    fn active(&self, v: VertexId, curr: &Self::Meta, prev: &Self::Meta) -> bool {
        let _ = v;
        curr != prev
    }

    /// The Compute function on edge `(src, dst)` with weight `w`.
    /// Returns `None` when the edge produces no useful update — this is
    /// how BFS skips already-visited destinations (collaborative early
    /// termination) and k-Core stops decrementing dead vertices.
    fn compute(
        &self,
        src: VertexId,
        dst: VertexId,
        w: Weight,
        m_src: &Self::Meta,
        m_dst: &Self::Meta,
    ) -> Option<Self::Update>;

    /// The Combine operator `⊕`. Must be commutative and associative;
    /// the warp-level reduction pairs operands in hardware order.
    fn combine(&self, a: Self::Update, b: Self::Update) -> Self::Update;

    /// Applies a combined update to `v`'s metadata. Returns the new
    /// metadata if the vertex actually changed, `None` otherwise; the
    /// engine uses the change signal to feed the online filter.
    fn apply(&self, v: VertexId, current: &Self::Meta, update: Self::Update) -> Option<Self::Meta>;

    /// Whether an applied change activates `v` for the next iteration
    /// (i.e. gets recorded by the online filter). Defaults to `true`.
    /// k-Core overrides this: a degree decrement updates metadata but
    /// only an actual deletion activates the vertex — the optimization
    /// §7.1 credits for "reducing tremendous unnecessary updates".
    /// Must agree with [`Self::active`], which the ballot filter uses.
    fn activates(&self, v: VertexId, new_meta: &Self::Meta) -> bool {
        let _ = (v, new_meta);
        true
    }

    /// Pull-mode candidate predicate: should `v` be recomputed when the
    /// engine gathers? Defaults to every vertex; BFS restricts this to
    /// unvisited vertices, k-Core to still-alive ones.
    fn pull_candidate(&self, v: VertexId, meta: &Self::Meta) -> bool {
        let _ = (v, meta);
        true
    }

    /// Optional direction override. Returning `None` delegates to the
    /// engine's frontier-volume heuristic.
    fn direction(&self, ctx: &DirectionCtx) -> Option<Direction> {
        let _ = ctx;
        None
    }

    /// Extra convergence condition checked when the frontier is empty
    /// *or* each iteration for always-active algorithms (PageRank's rank
    /// stability, BP's residual). Returning `true` stops the run even
    /// with a non-empty frontier.
    fn converged(&self, iteration: u32, frontier_len: u64, meta: &[Self::Meta]) -> bool {
        let _ = (iteration, frontier_len, meta);
        false
    }
}

/// Delegating impl so borrowed programs run anywhere an owned program
/// does — the session API's run builder takes the program by value, and
/// this lets callers (like the deprecated one-shot `Engine` shim) hand
/// in `&program` instead of cloning. Every method delegates explicitly:
/// relying on the trait defaults here would silently drop a concrete
/// program's overrides (`activates`, `pull_candidate`, ...).
impl<P: AccProgram + ?Sized> AccProgram for &P {
    type Meta = P::Meta;
    type Update = P::Update;

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn combine_kind(&self) -> CombineKind {
        (**self).combine_kind()
    }

    fn init(&self, graph: &Graph) -> (Vec<Self::Meta>, Vec<VertexId>) {
        (**self).init(graph)
    }

    fn active(&self, v: VertexId, curr: &Self::Meta, prev: &Self::Meta) -> bool {
        (**self).active(v, curr, prev)
    }

    fn compute(
        &self,
        src: VertexId,
        dst: VertexId,
        w: Weight,
        m_src: &Self::Meta,
        m_dst: &Self::Meta,
    ) -> Option<Self::Update> {
        (**self).compute(src, dst, w, m_src, m_dst)
    }

    fn combine(&self, a: Self::Update, b: Self::Update) -> Self::Update {
        (**self).combine(a, b)
    }

    fn apply(&self, v: VertexId, current: &Self::Meta, update: Self::Update) -> Option<Self::Meta> {
        (**self).apply(v, current, update)
    }

    fn activates(&self, v: VertexId, new_meta: &Self::Meta) -> bool {
        (**self).activates(v, new_meta)
    }

    fn pull_candidate(&self, v: VertexId, meta: &Self::Meta) -> bool {
        (**self).pull_candidate(v, meta)
    }

    fn direction(&self, ctx: &DirectionCtx) -> Option<Direction> {
        (**self).direction(ctx)
    }

    fn converged(&self, iteration: u32, frontier_len: u64, meta: &[Self::Meta]) -> bool {
        (**self).converged(iteration, frontier_len, meta)
    }
}

/// A program whose query is parameterized by a single seed vertex —
/// BFS levels from a root, SSSP distances from a source. The session
/// API uses this for [`crate::session::RunBuilder::source`] and the
/// batched [`crate::session::BoundGraph::run_batch`] entry point, which
/// re-roots one prototype program per query seed.
pub trait SourcedProgram: AccProgram + Clone {
    /// The same program re-rooted at `src`.
    fn with_source(self, src: VertexId) -> Self;
}

/// Folds updates with a program's Combine using the warp-reduction pair
/// ordering, asserting the result is independent of operand grouping in
/// debug builds (the §3.2 requirement on `⊕`).
pub fn combine_all<P: AccProgram>(program: &P, updates: &[P::Update]) -> Option<P::Update> {
    let mut it = updates.iter().copied();
    let first = it.next()?;
    Some(it.fold(first, |acc, u| program.combine(acc, u)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::EdgeList;

    /// A minimal aggregation program (integer min-plus) for trait-level
    /// tests.
    struct MinPlus;

    impl AccProgram for MinPlus {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "min-plus"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Aggregation
        }

        fn init(&self, graph: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            let mut meta = vec![u32::MAX; graph.num_vertices() as usize];
            meta[0] = 0;
            (meta, vec![0])
        }

        fn compute(
            &self,
            _src: VertexId,
            _dst: VertexId,
            w: Weight,
            m_src: &u32,
            m_dst: &u32,
        ) -> Option<u32> {
            let cand = m_src.checked_add(w)?;
            (cand < *m_dst).then_some(cand)
        }

        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
            (update < *current).then_some(update)
        }
    }

    fn graph() -> Graph {
        Graph::directed_from_edges(EdgeList::from_pairs(vec![(0, 1), (1, 2)]))
    }

    #[test]
    fn default_active_compares_metadata() {
        let p = MinPlus;
        assert!(p.active(3, &1, &2));
        assert!(!p.active(3, &5, &5));
    }

    #[test]
    fn init_seeds_source() {
        let (meta, frontier) = MinPlus.init(&graph());
        assert_eq!(meta[0], 0);
        assert_eq!(meta[1], u32::MAX);
        assert_eq!(frontier, vec![0]);
    }

    #[test]
    fn compute_skips_non_improving() {
        let p = MinPlus;
        assert_eq!(p.compute(0, 1, 5, &10, &20), Some(15));
        assert_eq!(p.compute(0, 1, 5, &10, &12), None);
        // Overflow-safe: an unreached source yields no update.
        assert_eq!(p.compute(0, 1, 5, &u32::MAX, &1), None);
    }

    #[test]
    fn combine_all_folds() {
        let p = MinPlus;
        assert_eq!(combine_all(&p, &[7, 3, 9]), Some(3));
        assert_eq!(combine_all(&p, &[] as &[u32]), None);
    }

    #[test]
    fn apply_reports_change() {
        let p = MinPlus;
        assert_eq!(p.apply(0, &10, 4), Some(4));
        assert_eq!(p.apply(0, &4, 10), None);
    }
}
