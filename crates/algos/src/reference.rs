//! Sequential reference implementations used to validate every ACC
//! program. These are deliberately simple, textbook versions — the
//! ground truth the simulated engine must reproduce bit-for-bit (BFS,
//! SSSP, k-Core, WCC) or within floating-point tolerance (PageRank, BP,
//! SpMV).

use simdx_graph::csr::Csr;
use simdx_graph::{Graph, VertexId};
use std::collections::BinaryHeap;

/// Sentinel for unreachable vertices in BFS and SSSP outputs.
pub const UNREACHED: u32 = u32::MAX;

/// Level-synchronous BFS distances from `src`.
pub fn bfs(csr: &Csr, src: VertexId) -> Vec<u32> {
    simdx_graph::stats::bfs_levels(csr, src)
}

/// Dijkstra shortest-path distances from `src`.
pub fn sssp(csr: &Csr, src: VertexId) -> Vec<u32> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    if n == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    // Max-heap of Reverse'd (dist, vertex) pairs.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, VertexId)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let ws = csr.neighbor_weights(v);
        for (i, &u) in csr.neighbors(v).iter().enumerate() {
            let w = ws.map_or(1, |ws| ws[i]);
            let nd = d.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Jacobi PageRank over the pull (in-neighbor) orientation, with
/// damping `d`, run until no rank moves by more than `eps` or
/// `max_iters` is reached. Returns the rank vector.
pub fn pagerank(graph: &Graph, d: f32, eps: f32, max_iters: u32) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let out = graph.out();
    let in_ = graph.in_();
    let base = (1.0 - d) / n as f32;
    let inv_deg: Vec<f32> = (0..n as VertexId)
        .map(|v| {
            let deg = out.degree(v);
            if deg == 0 {
                0.0
            } else {
                1.0 / deg as f32
            }
        })
        .collect();
    let mut rank = vec![1.0f32 / n as f32; n];
    for _ in 0..max_iters {
        let mut moved = false;
        let mut next = vec![0.0f32; n];
        for v in 0..n as VertexId {
            let mut sum = 0.0f32;
            for &u in in_.neighbors(v) {
                sum += rank[u as usize] * inv_deg[u as usize];
            }
            let r = base + d * sum;
            if (r - rank[v as usize]).abs() > eps {
                moved = true;
                next[v as usize] = r;
            } else {
                next[v as usize] = rank[v as usize];
            }
        }
        rank = next;
        if !moved {
            break;
        }
    }
    rank
}

/// Sequential k-core peeling: returns `true` per vertex that survives
/// the k-core.
///
/// Degrees are taken in the *in*-orientation and deletions propagate
/// along *out*-edges (deleting `u` removes the in-edge `(u, v)` from
/// every out-neighbor `v`), which is self-consistent on directed graphs
/// and coincides with plain degree peeling on undirected ones.
pub fn kcore(graph: &Graph, k: u32) -> Vec<bool> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let in_ = graph.in_();
    let mut deg: Vec<u32> = (0..n as VertexId).map(|v| in_.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut queue: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] < k)
        .collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &u in out.neighbors(v) {
            if alive[u as usize] {
                deg[u as usize] -= 1;
                if deg[u as usize] < k {
                    alive[u as usize] = false;
                    queue.push(u);
                }
            }
        }
    }
    alive
}

/// Label-propagation connected components over the out-orientation
/// (weakly connected when the CSR is symmetric). Returns the minimum
/// reachable label per vertex at fixpoint.
pub fn wcc(csr: &Csr) -> Vec<u32> {
    let n = csr.num_vertices() as usize;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n as VertexId {
            let lv = label[v as usize];
            for &u in csr.neighbors(v) {
                if lv < label[u as usize] {
                    label[u as usize] = lv;
                    changed = true;
                }
            }
        }
    }
    label
}

/// Reference belief propagation: damped, weight-normalized belief
/// averaging over in-neighbors (the simplified sum-product variant the
/// BP program implements; see `crate::bp`). Runs exactly `rounds`
/// Jacobi rounds.
pub fn belief_propagation(graph: &Graph, priors: &[f32], lambda: f32, rounds: u32) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    assert_eq!(priors.len(), n, "one prior per vertex");
    let in_ = graph.in_();
    let mut belief = priors.to_vec();
    for _ in 0..rounds {
        let mut next = vec![0.0f32; n];
        for v in 0..n as VertexId {
            let ws = in_.neighbor_weights(v);
            let mut acc = 0.0f32;
            let mut wsum = 0.0f32;
            for (i, &u) in in_.neighbors(v).iter().enumerate() {
                let w = ws.map_or(1, |ws| ws[i]) as f32;
                acc += w * belief[u as usize];
                wsum += w;
            }
            next[v as usize] = if wsum > 0.0 {
                (1.0 - lambda) * priors[v as usize] + lambda * acc / wsum
            } else {
                priors[v as usize]
            };
        }
        belief = next;
    }
    belief
}

/// Sparse matrix-vector product `y = A·x` where `A` is the weighted
/// in-orientation adjacency (so `y[v] = Σ_{(u,v)} w_uv · x[u]`).
pub fn spmv(graph: &Graph, x: &[f32]) -> Vec<f32> {
    let n = graph.num_vertices() as usize;
    assert_eq!(x.len(), n, "input vector length must equal |V|");
    let in_ = graph.in_();
    let mut y = vec![0.0f32; n];
    for v in 0..n as VertexId {
        let ws = in_.neighbor_weights(v);
        let mut acc = 0.0f32;
        for (i, &u) in in_.neighbors(v).iter().enumerate() {
            acc += ws.map_or(1, |ws| ws[i]) as f32 * x[u as usize];
        }
        y[v as usize] = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::EdgeList;

    fn weighted_diamond() -> Graph {
        // 0 →(1) 1 →(1) 3, 0 →(5) 2 →(1) 3.
        let el = EdgeList::from_weighted(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], vec![1, 5, 1, 1]);
        Graph::directed_from_edges(el)
    }

    #[test]
    fn dijkstra_picks_shorter_path() {
        let g = weighted_diamond();
        let dist = sssp(g.out(), 0);
        assert_eq!(dist, vec![0, 1, 5, 2]);
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(vec![(1, 2), (2, 0)]));
        let dist = sssp(g.out(), 0);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], UNREACHED);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = weighted_diamond();
        let pr = pagerank(&g, 0.85, 1e-7, 200);
        // Dangling mass leaks (standard non-dangling-fix Jacobi); the
        // sum stays below 1 but every rank is at least the base.
        let n = g.num_vertices() as f32;
        for &r in &pr {
            assert!(r >= (1.0 - 0.85) / n - 1e-6);
        }
        // Vertex 3 (two in-links) outranks vertex 1 (one in-link).
        assert!(pr[3] > pr[1]);
    }

    #[test]
    fn kcore_peels_cascade() {
        // A triangle with a pendant: k=2 keeps the triangle only.
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = Graph::undirected_from_edges(el);
        let alive = kcore(&g, 2);
        assert_eq!(alive, vec![true, true, true, false]);
    }

    #[test]
    fn kcore_everything_dies_for_large_k() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]);
        let g = Graph::undirected_from_edges(el);
        assert!(kcore(&g, 5).iter().all(|&a| !a));
    }

    #[test]
    fn wcc_two_components() {
        let el = EdgeList::from_pairs(vec![(0, 1), (2, 3)]);
        let g = Graph::undirected_from_edges(el);
        assert_eq!(wcc(g.out()), vec![0, 0, 2, 2]);
    }

    #[test]
    fn bp_converges_toward_neighborhood_average() {
        let g = weighted_diamond();
        let priors = vec![1.0, 0.0, 0.0, 0.0];
        let b = belief_propagation(&g, &priors, 0.5, 10);
        // Mass flows from vertex 0 toward 3.
        assert!(b[1] > 0.0 && b[3] > 0.0);
        assert!(b[0] >= 0.5, "prior anchors vertex 0");
    }

    #[test]
    fn spmv_matches_manual() {
        let g = weighted_diamond();
        let y = spmv(&g, &[1.0, 2.0, 3.0, 4.0]);
        // y[3] = 1*x[1] + 1*x[2] = 5; y[1] = 1*x[0] = 1; y[2] = 5*x[0].
        assert_eq!(y, vec![0.0, 1.0, 5.0, 5.0]);
    }
}
