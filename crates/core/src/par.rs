//! Deterministic host-side parallel runtime for the engine.
//!
//! The engine's per-iteration hot path (worklist classification, the
//! three compute-kernel task loops, the pull-candidate sweeps and the
//! warp-chunked ballot scan) is data-parallel, but the *report* must be
//! bit-equal to the serial engine: identical metadata, identical bins,
//! identical simulated cycle counts. The runtime here provides the two
//! building blocks that make that possible:
//!
//! * [`WorkerPool`] — a persistent pool of OS threads executing one
//!   shared closure per parallel region, indexed by worker id. The
//!   submitting thread participates as worker 0, so `threads = N` means
//!   `N` CPUs busy, and the pool is reused across all iterations of a
//!   run (no per-region spawn cost).
//! * [`chunk_range`] — the static, contiguous partition both modes use.
//!   Contiguous chunks concatenated in worker order reproduce the serial
//!   processing order exactly; every parallel stage in the engine merges
//!   its per-worker output that way (or replays it in an explicit
//!   deterministic sort order, for the online-filter bin records).
//!
//! Worker closures are `Fn(usize) + Sync` borrowed for the duration of
//! one [`WorkerPool::run`] call. Mutable state is handed out through
//! [`SliceShards`], which splits a slice into disjoint per-worker
//! ranges; the pool's "one invocation per worker index per region"
//! guarantee makes that aliasing-free.

//! Worker panics are *contained*: [`WorkerPool::try_run`] catches a
//! panic on any worker (including the submitting thread), still drains
//! the epoch so no worker is left touching the borrowed job, and
//! returns a [`WorkerPanic`] describing the first failure. The pool is
//! then **poisoned** — the sharding invariants of the aborted region
//! may not hold, so every subsequent `try_run` refuses with the stored
//! panic until the pool is rebuilt (the session's pool stash discards
//! a poisoned pool at lease check-in and spawns a replacement at the
//! next checkout). The panicking [`WorkerPool::run`] wrapper keeps the
//! fail-fast behaviour for callers without an error path.
//!
//! # Sharing model
//!
//! `WorkerPool` is `Send + Sync` (asserted at the bottom of this
//! module), but a pool runs **one region at a time**: `run` hands the
//! single shared job slot to every worker and blocks until the epoch
//! drains, so two overlapping regions on one pool would serialize at
//! best and interleave worker indices at worst. Concurrent queries
//! therefore never share a pool — `crate::pool::PoolStash` leases each
//! query its own pool for the query's duration, which also confines
//! poisoning to the query that caused it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use crate::sync::{Arc, Condvar, Mutex};

/// A contained panic from one pool worker: the typed form of what used
/// to be a process abort. Converts into
/// [`crate::error::SimdxError::WorkerPanicked`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Worker index that panicked (0 is the submitting thread).
    pub worker: usize,
    /// The panic payload, stringified.
    pub payload: String,
}

/// Best-effort stringification of a panic payload (`&str` and `String`
/// payloads — i.e. everything `panic!` produces — round-trip exactly).
pub(crate) fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Contiguous chunk `[start, end)` of `len` items for worker `w` of
/// `parts`: the canonical deterministic partition.
pub fn chunk_range(len: usize, parts: usize, w: usize) -> (usize, usize) {
    debug_assert!(w < parts);
    let chunk = len.div_ceil(parts.max(1)).max(1);
    ((w * chunk).min(len), ((w + 1) * chunk).min(len))
}

/// [`chunk_range`] with boundaries rounded to `align` multiples (the
/// final fence clamps to `len`): partitions `ceil(len / align)` whole
/// units, so no worker range ever splits a unit. The engine uses this
/// to keep ballot-scan partitions on 32-vertex warp chunks, bitmap
/// partitions on 64-vertex words and chunked-layout metadata sweeps on
/// [`crate::metadata::CHUNK_LANES`] boundaries.
pub fn chunk_range_aligned(len: usize, parts: usize, w: usize, align: usize) -> (usize, usize) {
    debug_assert!(align > 0);
    let (u0, u1) = chunk_range(len.div_ceil(align), parts, w);
    let lo = u0 * align;
    let hi = (u1 * align).min(len);
    if lo >= hi {
        // Worker past the end of a short range: canonicalize to an
        // empty range whose bound is still aligned *and* in bounds, so
        // callers can both slice it and assert alignment.
        let floor = len - len % align;
        (floor, floor)
    } else {
        (lo, hi)
    }
}

type Job<'a> = &'a (dyn Fn(usize) + Sync);

struct PoolState {
    /// Borrowed job pointer, lifetime-erased; valid exactly while
    /// `remaining > 0` for the current epoch (the submitter blocks in
    /// [`WorkerPool::run`] until every worker has finished with it).
    job: Option<Job<'static>>,
    epoch: u64,
    remaining: usize,
    /// First worker panic of the current epoch, if any.
    epoch_panic: Option<WorkerPanic>,
    /// Sticky: set when any region panicked; the pool refuses further
    /// regions until rebuilt.
    poisoned: Option<WorkerPanic>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Persistent worker pool; see the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// `[0, 1, ..., threads]` — unit fences for per-worker slot shards.
    unit_fences: Vec<u32>,
}

impl WorkerPool {
    /// Creates a pool presenting `threads` workers. Worker 0 is the
    /// submitting thread itself, so only `threads - 1` OS threads are
    /// spawned; `threads <= 1` spawns none and `run` degenerates to an
    /// inline call.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                epoch_panic: None,
                poisoned: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simdx-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
            unit_fences: (0..=threads as u32).collect(),
        }
    }

    /// Runs `f(w, &mut workers[w])` on every worker concurrently.
    /// `workers.len()` must equal [`Self::threads`].
    pub fn for_each_worker<T: Send>(&self, workers: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        if let Err(p) = self.try_for_each_worker(workers, f) {
            panic!("engine worker {} panicked: {}", p.worker, p.payload);
        }
    }

    /// Fallible form of [`Self::for_each_worker`]: a contained worker
    /// panic comes back as `Err` instead of aborting.
    pub fn try_for_each_worker<T: Send>(
        &self,
        workers: &mut [T],
        f: impl Fn(usize, &mut T) + Sync,
    ) -> Result<(), WorkerPanic> {
        assert_eq!(workers.len(), self.threads, "one scratch slot per worker");
        let slots = SliceShards::new(workers, &self.unit_fences);
        self.try_run(&|w| {
            // SAFETY: each worker index runs exactly once per region.
            let (_, slot) = unsafe { slots.shard(w) };
            f(w, &mut slot[0]);
        })
    }

    /// Runs `f(w, &mut workers[w], shard_offset, shard)` on every worker
    /// concurrently, where `shard` is the `[bounds[w], bounds[w+1])`
    /// range of `data` — the destination-sharded form the push kernels
    /// use under both [`crate::config::PushStrategy`]s (the strategy
    /// only changes which edges a worker *traverses*; the metadata
    /// shard it may write is this range either way). `bounds` must be
    /// a monotone fence list with `threads + 1` entries covering
    /// `data`.
    pub fn for_each_worker_sharded<T: Send, U: Send>(
        &self,
        workers: &mut [T],
        data: &mut [U],
        bounds: &[u32],
        f: impl Fn(usize, &mut T, usize, &mut [U]) + Sync,
    ) {
        if let Err(p) = self.try_for_each_worker_sharded(workers, data, bounds, f) {
            panic!("engine worker {} panicked: {}", p.worker, p.payload);
        }
    }

    /// Fallible form of [`Self::for_each_worker_sharded`].
    pub fn try_for_each_worker_sharded<T: Send, U: Send>(
        &self,
        workers: &mut [T],
        data: &mut [U],
        bounds: &[u32],
        f: impl Fn(usize, &mut T, usize, &mut [U]) + Sync,
    ) -> Result<(), WorkerPanic> {
        assert_eq!(workers.len(), self.threads, "one scratch slot per worker");
        assert_eq!(bounds.len(), self.threads + 1, "one shard per worker");
        let slots = SliceShards::new(workers, &self.unit_fences);
        let shards = SliceShards::new(data, bounds);
        self.try_run(&|w| {
            // SAFETY: each worker index runs exactly once per region.
            let (_, slot) = unsafe { slots.shard(w) };
            // SAFETY: same claim, second shard set.
            let (off, shard) = unsafe { shards.shard(w) };
            f(w, &mut slot[0], off, shard);
        })
    }

    /// The two-slice form of [`Self::for_each_worker_sharded`]: worker
    /// `w` additionally receives the `[bounds2[w], bounds2[w+1])` range
    /// of `data2`. The engine's bitmap push mode uses this to hand each
    /// destination shard its word-aligned window of the changed-vertex
    /// bitmap, so first-change dedup is an atomic-free bit set.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_worker_sharded2<T: Send, U: Send, V: Send>(
        &self,
        workers: &mut [T],
        data: &mut [U],
        bounds: &[u32],
        data2: &mut [V],
        bounds2: &[u32],
        f: impl Fn(usize, &mut T, usize, &mut [U], usize, &mut [V]) + Sync,
    ) {
        if let Err(p) = self.try_for_each_worker_sharded2(workers, data, bounds, data2, bounds2, f)
        {
            panic!("engine worker {} panicked: {}", p.worker, p.payload);
        }
    }

    /// Fallible form of [`Self::for_each_worker_sharded2`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_for_each_worker_sharded2<T: Send, U: Send, V: Send>(
        &self,
        workers: &mut [T],
        data: &mut [U],
        bounds: &[u32],
        data2: &mut [V],
        bounds2: &[u32],
        f: impl Fn(usize, &mut T, usize, &mut [U], usize, &mut [V]) + Sync,
    ) -> Result<(), WorkerPanic> {
        assert_eq!(workers.len(), self.threads, "one scratch slot per worker");
        assert_eq!(bounds.len(), self.threads + 1, "one shard per worker");
        assert_eq!(bounds2.len(), self.threads + 1, "one shard per worker");
        let slots = SliceShards::new(workers, &self.unit_fences);
        let shards = SliceShards::new(data, bounds);
        let shards2 = SliceShards::new(data2, bounds2);
        self.try_run(&|w| {
            // SAFETY: each worker index runs exactly once per region.
            let (_, slot) = unsafe { slots.shard(w) };
            // SAFETY: same claim, second shard set.
            let (off, shard) = unsafe { shards.shard(w) };
            // SAFETY: same claim, third shard set.
            let (off2, shard2) = unsafe { shards2.shard(w) };
            f(w, &mut slot[0], off, shard, off2, shard2);
        })
    }

    /// Number of workers (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a region panicked since construction. A poisoned pool
    /// refuses further regions; rebuild it (the session `Runtime` does
    /// so transparently before the next run).
    pub fn is_poisoned(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("pool lock")
            .poisoned
            .is_some()
    }

    /// Runs `job(w)` once for every worker index `w in 0..threads`,
    /// returning when all invocations completed — even on failure, so
    /// the borrowed job is never left referenced. Returns the first
    /// [`WorkerPanic`] if any worker (including the submitter, worker 0)
    /// panicked; the pool is then poisoned and every later call returns
    /// that same panic without running.
    pub fn try_run(&self, job: &(dyn Fn(usize) + Sync)) -> Result<(), WorkerPanic> {
        if self.threads == 1 {
            if let Some(p) = &self.shared.state.lock().expect("pool lock").poisoned {
                return Err(p.clone());
            }
            return match catch_unwind(AssertUnwindSafe(|| job(0))) {
                Ok(()) => Ok(()),
                Err(payload) => {
                    let panic = WorkerPanic {
                        worker: 0,
                        payload: payload_string(&*payload),
                    };
                    self.shared.state.lock().expect("pool lock").poisoned = Some(panic.clone());
                    Err(panic)
                }
            };
        }
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            if let Some(p) = &state.poisoned {
                return Err(p.clone());
            }
            debug_assert!(state.remaining == 0, "overlapping pool regions");
            // SAFETY: lifetime erasure only — the 'static is a lie the
            // epoch protocol makes unobservable. The erased pointer is
            // dereferenced exclusively by workers between this store
            // and the completion wait below, and this function does not
            // return (not even by panic: the submitter's own panic is
            // caught and deferred) before `remaining == 0` and the slot
            // is cleared, so no worker can still hold the reference
            // when the borrow of `job` ends.
            state.job = Some(unsafe { std::mem::transmute::<Job<'_>, Job<'static>>(job) });
            state.epoch += 1;
            state.remaining = self.threads - 1;
            state.epoch_panic = None;
            self.shared.work_cv.notify_all();
        }
        // The submitter is worker 0. Defer its panic until the other
        // workers are done with the borrowed job (drain the epoch).
        let mine = catch_unwind(AssertUnwindSafe(|| job(0)));
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.remaining > 0 {
            state = self.shared.done_cv.wait(state).expect("pool wait");
        }
        state.job = None;
        // A submitter panic wins the report (lowest worker index); any
        // concurrent worker panic still poisons identically.
        let panic = match mine {
            Err(payload) => Some(WorkerPanic {
                worker: 0,
                payload: payload_string(&*payload),
            }),
            Ok(()) => state.epoch_panic.take(),
        };
        match panic {
            Some(p) => {
                state.poisoned = Some(p.clone());
                Err(p)
            }
            None => Ok(()),
        }
    }

    /// Panicking wrapper over [`Self::try_run`] for callers without an
    /// error path (tests, benches).
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if let Err(p) = self.try_run(job) {
            panic!("engine worker {} panicked: {}", p.worker, p.payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.expect("job set for new epoch");
                }
                state = shared.work_cv.wait(state).expect("pool wait");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| job(w)));
        let mut state = shared.state.lock().expect("pool lock");
        if let Err(payload) = outcome {
            // First panic of the epoch wins the report; the rest are
            // dropped (they are almost always the same root cause).
            state.epoch_panic.get_or_insert_with(|| WorkerPanic {
                worker: w,
                payload: payload_string(&*payload),
            });
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Disjoint mutable shards of one slice, one per worker.
///
/// Construction records the shard boundaries; [`SliceShards::shard`]
/// hands out `&mut` views. Safety rests on the boundaries being
/// non-overlapping (checked at construction) and on each worker taking
/// only its own shard (the pool invokes each worker index exactly once
/// per region).
pub struct SliceShards<'a, T> {
    ptr: *mut T,
    len: usize,
    bounds: &'a [u32],
    /// Debug-build misuse detector: bit `w` set once shard `w` has been
    /// handed out. A second claim of the same index would alias a
    /// `&mut` — [`Self::shard`] asserts against it in debug builds
    /// (release builds keep the zero-cost contract).
    #[cfg(debug_assertions)]
    claimed: crate::sync::atomic::AtomicU64,
}

// SAFETY: shards are disjoint; cross-thread handoff of &mut T ranges is
// sound for T: Send.
unsafe impl<T: Send> Sync for SliceShards<'_, T> {}

impl<'a, T> SliceShards<'a, T> {
    /// Splits `slice` at `bounds` (a monotone fence list of `parts + 1`
    /// entries starting at 0 and ending at `slice.len()`).
    pub fn new(slice: &'a mut [T], bounds: &'a [u32]) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().expect("non-empty") as usize, slice.len());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds monotone");
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            bounds,
            #[cfg(debug_assertions)]
            claimed: crate::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Shard `[bounds[w], bounds[w+1])` as a mutable slice, plus its
    /// starting offset in the underlying slice.
    ///
    /// # Safety
    ///
    /// The returned `&mut` aliases nothing only if the caller upholds
    /// both of:
    ///
    /// * `w` is a valid worker index: `w + 1 < bounds.len()` as passed
    ///   to [`SliceShards::new`] (out of range panics on the bounds
    ///   lookup — it never yields a wild slice — but is still a
    ///   contract violation);
    /// * each worker index is claimed **at most once** per
    ///   `SliceShards` instance, by exactly one thread — the
    ///   [`WorkerPool::run`] contract ("one invocation per worker index
    ///   per region"). Claiming the same `w` twice would hand out two
    ///   live `&mut` views of the same range.
    ///
    /// Debug builds enforce both with assertions (a claim ledger
    /// catches double handouts for the first 64 worker indices, which
    /// covers every pool width the engine constructs); release builds
    /// rely on the caller.
    // SAFETY: declared unsafe to push the two `# Safety` obligations
    // above onto the caller; the body itself only materializes the
    // `&mut` after the debug guards run.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn shard(&self, w: usize) -> (usize, &mut [T]) {
        debug_assert!(
            w + 1 < self.bounds.len(),
            "worker index {w} out of range for {} shards",
            self.bounds.len() - 1
        );
        #[cfg(debug_assertions)]
        if w < 64 {
            // ORDERING: the ledger is a debug-only misuse detector; the
            // fetch_or is already atomic read-modify-write, so two
            // racing claims of the same index cannot both observe a
            // clear bit regardless of memory ordering.
            let prev = self
                .claimed
                .fetch_or(1 << w, crate::sync::atomic::Ordering::Relaxed);
            debug_assert!(
                prev & (1 << w) == 0,
                "shard {w} handed out twice from one SliceShards"
            );
        }
        let lo = self.bounds[w] as usize;
        let hi = self.bounds[w + 1] as usize;
        debug_assert!(lo <= hi && hi <= self.len);
        (
            lo,
            std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo),
        )
    }
}

// The session's pool stash moves pools between querying threads, so
// `WorkerPool` must stay `Send + Sync` (it is, automatically: the job
// slot holds `&(dyn Fn(usize) + Sync)`, which is both). The assertion
// turns an accidental `!Send` field into a build failure instead of a
// distant type error inside `crate::pool`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorkerPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunk_ranges_cover_and_preserve_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8] {
                let mut got = Vec::new();
                for w in 0..parts {
                    let (lo, hi) = chunk_range(len, parts, w);
                    got.extend(lo..hi);
                }
                assert_eq!(got, (0..len).collect::<Vec<_>>(), "len={len} parts={parts}");
            }
        }
    }

    #[test]
    fn aligned_chunk_ranges_cover_without_splitting_units() {
        for len in [0usize, 1, 31, 32, 97, 1000] {
            for parts in [1usize, 2, 3, 8] {
                for align in [1usize, 32, 64] {
                    let mut got = Vec::new();
                    for w in 0..parts {
                        let (lo, hi) = chunk_range_aligned(len, parts, w, align);
                        assert!(lo <= hi && hi <= len, "range out of bounds");
                        assert!(lo % align == 0, "lo splits a unit");
                        assert!(hi % align == 0 || hi == len, "hi splits a unit");
                        got.extend(lo..hi);
                    }
                    assert_eq!(
                        got,
                        (0..len).collect::<Vec<_>>(),
                        "len={len} parts={parts} align={align}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_runs_every_worker_every_region() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(&|w| {
                hits.fetch_add(1 << (8 * w), Ordering::Relaxed);
            });
        }
        // 100 (= 0x64) hits per worker, one byte lane each.
        assert_eq!(hits.load(Ordering::Relaxed), 0x6464_6464);
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let calls = AtomicU64::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_borrows_stack_data() {
        let data: Vec<u64> = (0..1000).collect();
        let partial = Mutex::new(vec![0u64; 4]);
        let pool = WorkerPool::new(4);
        pool.run(&|w| {
            let (lo, hi) = chunk_range(data.len(), 4, w);
            let sum: u64 = data[lo..hi].iter().sum();
            partial.lock().expect("lock")[w] = sum;
        });
        let total: u64 = partial.lock().expect("lock").iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn worker_panic_is_contained_and_poisons() {
        let pool = WorkerPool::new(3);
        let err = pool
            .try_run(&|w| {
                if w == 2 {
                    panic!("worker boom");
                }
            })
            .expect_err("panic contained");
        assert_eq!(err.worker, 2);
        assert_eq!(err.payload, "worker boom");
        assert!(pool.is_poisoned());
        // Poisoned: further regions refuse with the same panic, without
        // running the job.
        let hits = AtomicU64::new(0);
        let again = pool.try_run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again, Err(err));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn submitter_panic_is_contained_too() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(&|w| {
                if w == 0 {
                    panic!("submitter boom");
                }
            })
            .expect_err("panic contained");
        assert_eq!(err.worker, 0);
        assert_eq!(err.payload, "submitter boom");
        assert!(pool.is_poisoned());
    }

    #[test]
    fn run_wrapper_panics_on_contained_panic() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn poisoned_pool_rebuilds_and_matches_serial() {
        // The recovery path the session Runtime uses: poison a pool,
        // rebuild it with the same width, and check the rebuilt pool's
        // deterministic merge order matches the serial result bit-for-bit.
        let data: Vec<u64> = (0..4096).map(|i| i * 2654435761 % 97).collect();
        let serial_sum: u64 = data.iter().sum();

        let pool = WorkerPool::new(4);
        assert!(pool
            .try_run(&|w| {
                if w == 3 {
                    panic!("injected");
                }
            })
            .is_err());
        assert!(pool.is_poisoned());

        let rebuilt = WorkerPool::new(pool.threads());
        drop(pool);
        let mut partial = vec![0u64; 4];
        rebuilt
            .try_for_each_worker(&mut partial, |w, slot| {
                let (lo, hi) = chunk_range(data.len(), 4, w);
                *slot = data[lo..hi].iter().sum();
            })
            .expect("rebuilt pool is clean");
        assert!(!rebuilt.is_poisoned());
        assert_eq!(partial.iter().sum::<u64>(), serial_sum);
    }

    #[test]
    fn pool_of_one_contains_panics() {
        let pool = WorkerPool::new(1);
        let err = pool
            .try_run(&|_| panic!("inline boom"))
            .expect_err("contained");
        assert_eq!(err.worker, 0);
        assert!(pool.is_poisoned());
        assert!(pool.try_run(&|_| {}).is_err(), "stays poisoned");
    }

    #[test]
    fn string_payloads_are_captured() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(&|w| {
                if w == 1 {
                    panic!("formatted {}", 42);
                }
            })
            .expect_err("contained");
        assert_eq!(err.payload, "formatted 42");
    }

    #[test]
    fn sharded2_hands_out_both_slices() {
        let pool = WorkerPool::new(2);
        let mut scratch = vec![0usize; 2];
        let mut verts = vec![0u32; 10];
        let vbounds = [0u32, 6, 10];
        let mut words = vec![0u64; 3];
        let wbounds = [0u32, 1, 3];
        pool.for_each_worker_sharded2(
            &mut scratch,
            &mut verts,
            &vbounds,
            &mut words,
            &wbounds,
            |w, slot, off, shard, woff, wshard| {
                *slot = w + 1;
                for (i, x) in shard.iter_mut().enumerate() {
                    *x = (off + i) as u32;
                }
                for word in wshard.iter_mut() {
                    *word = woff as u64 + 1;
                }
            },
        );
        assert_eq!(scratch, vec![1, 2]);
        assert_eq!(verts, (0..10).collect::<Vec<u32>>());
        assert_eq!(words, vec![1, 2, 2]);
    }

    #[test]
    fn shards_are_disjoint_and_offset() {
        let mut data = vec![0u32; 10];
        let bounds = [0u32, 3, 3, 10];
        let shards = SliceShards::new(&mut data, &bounds);
        let pool = WorkerPool::new(3);
        pool.run(&|w| {
            // SAFETY: one claim per worker index per region.
            let (off, shard) = unsafe { shards.shard(w) };
            for (i, x) in shard.iter_mut().enumerate() {
                *x = (off + i) as u32 + 100 * (w as u32 + 1);
            }
        });
        assert_eq!(data, vec![100, 101, 102, 303, 304, 305, 306, 307, 308, 309]);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn shard_double_handout_trips_the_debug_ledger() {
        let mut data = vec![0u32; 4];
        let bounds = [0u32, 2, 4];
        let shards = SliceShards::new(&mut data, &bounds);
        // SAFETY: indices 0 and 1 are each claimed once, per contract.
        let _a = unsafe { shards.shard(0) };
        // SAFETY: as above — a distinct index, claimed once.
        let _b = unsafe { shards.shard(1) };
        // The ledger assertion fires *before* the aliasing view would
        // be materialized, so this misuse is caught, not UB.
        let again = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: deliberate contract violation; the debug ledger
            // panics before any slice is formed.
            let _ = unsafe { shards.shard(0) };
        }));
        assert!(again.is_err(), "double handout must panic in debug");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn shard_out_of_range_worker_trips_the_debug_assert() {
        let mut data = vec![0u32; 4];
        let bounds = [0u32, 2, 4];
        let shards = SliceShards::new(&mut data, &bounds);
        let oob = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: deliberate contract violation; the bounds
            // assertion panics before any slice is formed.
            let _ = unsafe { shards.shard(2) };
        }));
        assert!(oob.is_err(), "out-of-range worker index must panic");
    }
}
