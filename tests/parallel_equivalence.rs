//! The determinism contract of the parallel host backend
//! (`crates/core/README.md`): for every algorithm, graph class and
//! thread count, `ExecMode::Parallel` must be **bit-equal** to
//! `ExecMode::Serial` — identical final metadata, identical per-iteration
//! activation logs (directions, filters, frontier sizes, per-iteration
//! cycles) and identical total simulated cycle counts.
//!
//! The graphs cover the structural classes that stress different engine
//! paths: RMAT (skewed degrees → CTA worklists, ballot switches, pull
//! phases), road strips (tiny frontiers over many iterations → online
//! filter steady state), and Erdős–Rényi (uniform mid-size frontiers →
//! push/pull direction flips). PageRank additionally locks the
//! aggregation float path (f32 accumulation order), and k-Core the
//! non-idempotent decrement path.

use simdx::algos::{bfs, kcore, pagerank, sssp};
use simdx::core::jit::ActivationLog;
use simdx::core::prelude::*;
use simdx::graph::gen::{Erdos, Rmat, Road};
use simdx::graph::{weights, EdgeList, Graph};
use simdx_gpu::executor::ExecutorStats;

const THREAD_COUNTS: [usize; 3] = [2, 3, 6];

/// Everything that must match bit for bit between the two exec modes.
#[derive(Debug, PartialEq)]
struct Fingerprint<M: PartialEq + std::fmt::Debug> {
    meta: Vec<M>,
    iterations: u32,
    stats: ExecutorStats,
    log: ActivationLog,
}

fn fingerprint<M: PartialEq + std::fmt::Debug>(r: RunResult<M>) -> Fingerprint<M> {
    Fingerprint {
        meta: r.meta,
        iterations: r.report.iterations,
        stats: r.report.stats,
        log: r.report.log,
    }
}

/// Runs `run` under serial and parallel modes and asserts equality.
/// The thread-count sweep runs in both frontier representations —
/// bitmap mode partitions the ballot scan and the push destination
/// shards on 64-vertex word boundaries (the word-level analogue of the
/// list scan's warp alignment), and that partitioning must be just as
/// thread-count-independent as the list one.
fn assert_equivalent<M, F>(what: &str, run: F)
where
    M: PartialEq + std::fmt::Debug,
    F: Fn(EngineConfig) -> RunResult<M>,
{
    let base = EngineConfig::default().with_frontier(FrontierRepr::List);
    let serial = fingerprint(run(base.clone()));
    assert!(serial.iterations > 0, "{what}: trivial run proves nothing");
    for threads in THREAD_COUNTS {
        for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
            let par = fingerprint(run(base.clone().parallel(threads).with_frontier(repr)));
            assert_eq!(
                par,
                serial,
                "{what} with {threads} threads ({}) diverged from serial",
                repr.label()
            );
        }
    }
}

fn rmat_graph() -> Graph {
    Graph::directed_from_edges(Rmat::gtgraph(12, 8).generate(5))
}

fn road_graph() -> Graph {
    Graph::undirected_from_edges(Road::strip(256, 16).generate(5))
}

fn er_graph() -> Graph {
    Graph::directed_from_edges(Erdos::new(4096, 8).generate(5))
}

fn weighted(el: EdgeList) -> Graph {
    Graph::directed_from_edges(weights::assign_default_weights(&el, 9))
}

#[test]
fn bfs_parallel_equals_serial_on_rmat() {
    let g = rmat_graph();
    assert_equivalent("bfs/rmat", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn bfs_parallel_equals_serial_on_road() {
    let g = road_graph();
    assert_equivalent("bfs/road", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn bfs_parallel_equals_serial_on_er() {
    let g = er_graph();
    assert_equivalent("bfs/er", |cfg| bfs::run(&g, 0, cfg).expect("bfs"));
}

#[test]
fn sssp_parallel_equals_serial_on_rmat() {
    let g = weighted(Rmat::gtgraph(12, 8).generate(5));
    assert_equivalent("sssp/rmat", |cfg| sssp::run(&g, 0, cfg).expect("sssp"));
}

#[test]
fn sssp_parallel_equals_serial_on_road() {
    let g = weighted(Road::strip(128, 16).generate(5));
    assert_equivalent("sssp/road", |cfg| sssp::run(&g, 0, cfg).expect("sssp"));
}

#[test]
fn sssp_parallel_equals_serial_on_er() {
    let g = weighted(Erdos::new(4096, 8).generate(5));
    assert_equivalent("sssp/er", |cfg| sssp::run(&g, 0, cfg).expect("sssp"));
}

#[test]
fn pagerank_parallel_equals_serial_on_rmat() {
    // Float accumulation order is the sharpest bit-equality probe: any
    // reordering of PageRank's f32 sums shows up here.
    let g = rmat_graph();
    assert_equivalent("pagerank/rmat", |cfg| pagerank::run(&g, cfg).expect("pr"));
}

#[test]
fn pagerank_parallel_equals_serial_on_er() {
    let g = er_graph();
    assert_equivalent("pagerank/er", |cfg| pagerank::run(&g, cfg).expect("pr"));
}

#[test]
fn pagerank_parallel_equals_serial_on_road() {
    let g = road_graph();
    assert_equivalent("pagerank/road", |cfg| pagerank::run(&g, cfg).expect("pr"));
}

#[test]
fn kcore_parallel_equals_serial_on_rmat() {
    // k-Core's decrements are non-idempotent: duplicate or re-ordered
    // applies would corrupt metadata and show up here.
    let g = Graph::undirected_from_edges(Rmat::gtgraph(12, 8).generate(5));
    assert_equivalent("kcore/rmat", |cfg| kcore::run(&g, 4, cfg).expect("kcore"));
}

#[test]
fn kcore_parallel_equals_serial_on_er() {
    // k = 12 partially peels this ER graph (some vertices survive),
    // covering the cascade *and* the fixed-point iterations.
    let g = Graph::undirected_from_edges(Erdos::new(4096, 8).generate(5));
    assert_equivalent("kcore/er", |cfg| kcore::run(&g, 12, cfg).expect("kcore"));
}

#[test]
fn kcore_parallel_equals_serial_on_road() {
    // k = 3 fully peels the strip over ~60 iterations — the long
    // low-frontier cascade regime.
    let g = road_graph();
    assert_equivalent("kcore/road", |cfg| kcore::run(&g, 3, cfg).expect("kcore"));
}

#[test]
fn grid_push_is_work_optimal_scan_is_not() {
    // The work-optimality regression guard: a push iteration's edge
    // work is the frontier's out-degree sum (what the serial engine
    // examines and what every `IterationRecord` logs). The grid
    // strategy must examine exactly that — one traversal of each
    // frontier edge per iteration, regardless of the worker count —
    // while the scan strategy replays the full task list per worker
    // and therefore examines exactly `threads ×` it.
    let g = rmat_graph();
    let cfg = EngineConfig::default()
        .with_direction(DirectionPolicy::FixedPush)
        .with_frontier(FrontierRepr::List);
    let serial = bfs::run(&g, 0, cfg.clone().with_exec(ExecMode::Serial)).expect("bfs");
    let frontier_edges: u64 = serial.report.log.records.iter().map(|r| r.degree_sum).sum();
    assert!(frontier_edges > 0, "trivial run proves nothing");
    assert_eq!(serial.report.edges_examined, frontier_edges);
    for threads in THREAD_COUNTS {
        for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
            let base = cfg.clone().parallel(threads).with_frontier(repr);
            let grid = bfs::run(&g, 0, base.clone().with_push(PushStrategy::Grid)).expect("bfs");
            assert_eq!(
                grid.report.edges_examined,
                frontier_edges,
                "{threads} threads ({}): grid push must examine each frontier edge exactly once",
                repr.label()
            );
            let scan = bfs::run(&g, 0, base.scan_push()).expect("bfs");
            assert_eq!(
                scan.report.edges_examined,
                threads as u64 * frontier_edges,
                "{threads} threads ({}): scan push replays the task list per worker",
                repr.label()
            );
        }
    }
}

#[test]
fn grid_examined_matches_serial_under_direction_switches() {
    // With adaptive direction the run mixes push scatters and pull
    // gathers (whose early-termination scan counts are deterministic):
    // the grid backend's total host edge work must equal the serial
    // engine's in every phase, not just pure push.
    let g = er_graph();
    let check = |run: &dyn Fn(EngineConfig) -> RunReport| {
        let serial = run(EngineConfig::default().with_exec(ExecMode::Serial));
        assert!(serial.log.records.len() > 1, "trivial run proves nothing");
        for threads in THREAD_COUNTS {
            let grid = run(EngineConfig::default()
                .parallel(threads)
                .with_push(PushStrategy::Grid));
            assert_eq!(
                grid.edges_examined, serial.edges_examined,
                "{threads} threads: grid backend examined different edge work"
            );
        }
    };
    check(&|cfg| bfs::run(&g, 0, cfg).expect("bfs").report);
    check(&|cfg| pagerank::run(&g, cfg).expect("pr").report);
}

#[test]
fn filter_policies_stay_equivalent_in_parallel() {
    // The ballot-only and online-only paths skip/force bin recording;
    // both must stay bit-equal under the parallel backend too.
    let g = er_graph();
    for policy in [FilterPolicy::Jit, FilterPolicy::BallotOnly] {
        let serial =
            fingerprint(bfs::run(&g, 0, EngineConfig::default().with_filter(policy)).expect("bfs"));
        for threads in THREAD_COUNTS {
            let par = fingerprint(
                bfs::run(
                    &g,
                    0,
                    EngineConfig::default()
                        .with_filter(policy)
                        .parallel(threads),
                )
                .expect("bfs"),
            );
            assert_eq!(par, serial, "{policy:?} with {threads} threads diverged");
        }
    }
}

#[test]
fn unscaled_device_stays_equivalent_in_parallel() {
    // The unscaled device changes slot counts and therefore bin shapes
    // and task-to-slot assignment; equality must be scale-independent.
    let g = er_graph();
    let serial = fingerprint(bfs::run(&g, 0, EngineConfig::unscaled()).expect("bfs"));
    for threads in THREAD_COUNTS {
        let par =
            fingerprint(bfs::run(&g, 0, EngineConfig::unscaled().parallel(threads)).expect("bfs"));
        assert_eq!(par, serial, "unscaled with {threads} threads diverged");
    }
}
