//! Frontier dynamics: watch the per-iteration engine decisions (scan
//! direction, filter choice, frontier volume) that drive every result
//! in the paper's evaluation.
//!
//! ```text
//! cargo run --release --example frontier_dynamics
//! ```

use simdx::algos::bfs;
use simdx::core::EngineConfig;
use simdx::graph::datasets;

fn main() {
    for abbrev in ["LJ", "RC"] {
        let spec = datasets::dataset(abbrev).expect("twin");
        let graph = spec.build(3);
        let src = datasets::default_source(graph.out());
        let r = bfs::run(&graph, src, EngineConfig::default()).expect("bfs");

        println!(
            "\nBFS on {} twin ({} vertices, {} edges): {} iterations",
            spec.name,
            graph.num_vertices(),
            graph.num_edges(),
            r.report.iterations
        );
        println!(
            "{:>5}  {:>5}  {:>9}  {:>10}  {:>7}  {:>9}",
            "iter", "dir", "frontier", "degree sum", "filter", "cycles"
        );
        // Print the first 12 iterations (road twins run hundreds).
        for rec in r.report.log.records.iter().take(12) {
            println!(
                "{:>5}  {:>5}  {:>9}  {:>10}  {:>7}  {:>9}",
                rec.iteration,
                format!("{:?}", rec.direction),
                rec.frontier_len,
                rec.degree_sum,
                rec.filter.to_string(),
                rec.cycles
            );
        }
        if r.report.iterations > 12 {
            println!("  ... {} more iterations", r.report.iterations - 12);
        }
        println!(
            "direction heuristic switched {} time(s); filter switched {} time(s)",
            r.report
                .log
                .records
                .windows(2)
                .filter(|w| w[0].direction != w[1].direction)
                .count(),
            r.report.log.filter_switches()
        );
    }
}
