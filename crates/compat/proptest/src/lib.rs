//! Offline stub for the subset of `proptest` the integration tests use:
//! the `proptest!` macro over range and `prop::sample::select`
//! strategies, `prop_assert!`, and `ProptestConfig::with_cases`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds — cases are drawn from a deterministic splitmix64 stream, so a
//! failure reproduces identically on every run. That trade is fine for
//! this workspace: the properties are cheap invariants over small
//! numeric domains. See `crates/compat/README.md`.

/// Failure raised by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic sample stream for one property run.
#[derive(Clone, Debug)]
pub struct SampleRng(u64);

impl SampleRng {
    /// Seeds the stream (the macro derives the seed from the case index).
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (`x in strategy` in the macro).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn proptest_sample(&self, rng: &mut SampleRng) -> Self::Value;

    /// Derives a dependent strategy from each drawn value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy always yielding a fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn proptest_sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn proptest_sample(&self, rng: &mut SampleRng) -> Self::Value {
        let v = self.base.proptest_sample(rng);
        (self.f)(v).proptest_sample(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn proptest_sample(&self, rng: &mut SampleRng) -> Self::Value {
        (self.0.proptest_sample(rng), self.1.proptest_sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn proptest_sample(&self, rng: &mut SampleRng) -> Self::Value {
        (
            self.0.proptest_sample(rng),
            self.1.proptest_sample(rng),
            self.2.proptest_sample(rng),
        )
    }
}

/// Collection strategies under their real-crate path.
pub mod collection {
    use crate::{SampleRng, Strategy};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `size` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn proptest_sample(&self, rng: &mut SampleRng) -> Self::Value {
            let len = self.size.proptest_sample(rng);
            (0..len)
                .map(|_| self.element.proptest_sample(rng))
                .collect()
        }
    }

    /// Vec strategy constructor (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn proptest_sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy combinators under their real-crate paths.
pub mod prop {
    /// Sampling combinators.
    pub mod sample {
        use crate::{SampleRng, Strategy};

        /// Uniform choice from a fixed set.
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn proptest_sample(&self, rng: &mut SampleRng) -> T {
                assert!(!self.0.is_empty(), "select over empty set");
                let idx = ((rng.next_u64() as u128 * self.0.len() as u128) >> 64) as usize;
                self.0[idx].clone()
            }
        }

        /// Strategy drawing uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select(options)
        }
    }
}

/// Everything the `use proptest::prelude::*` sites need.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, SampleRng, Strategy,
        TestCaseError,
    };
}

/// Asserts inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "property assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError(format!(
                "{}: {:?} vs {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a `#[test]`
/// looping over `cases` samples; the body may use `prop_assert!` and
/// `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)+
    ) => {
        $crate::proptest!(@inner ($cfg) $($rest)+);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)+
    ) => {
        $crate::proptest!(
            @inner ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)+);
    };
    (
        @inner ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::SampleRng::new(
                        0x5EED ^ ((case as u64) << 1));
                    $(
                        let $arg = $crate::Strategy::proptest_sample(
                            &($strat), &mut rng);
                    )+
                    let outcome: Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "{} failed at case {case}: {}",
                            stringify!($name), e.0
                        );
                    }
                }
            }
        )+
    };
}
