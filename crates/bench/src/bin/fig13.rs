//! Regenerates **Figure 13**: benefit of push-pull based kernel fusion —
//! non-fusion, all-fusion and push-pull fusion on all five algorithms,
//! normalized to non-fusion.

use simdx_algos::{bfs::Bfs, bp::BeliefPropagation, kcore::KCore, pagerank::PageRank, sssp::Sssp};
use simdx_bench::{load, print_table, run_one, source, GRAPH_ORDER, SEED};
use simdx_core::{EngineConfig, FusionStrategy};

fn run_ms(algo: &str, g: &simdx_graph::Graph, fusion: FusionStrategy) -> f64 {
    let src = source(g);
    let cfg = EngineConfig::default().with_fusion(fusion);
    let report = match algo {
        "BFS" => run_one(g, cfg, Bfs::new(src)).expect("bfs").report,
        "BP" => {
            run_one(
                g,
                cfg,
                BeliefPropagation::with_random_priors(g, SEED, 0.4, 10),
            )
            .expect("bp")
            .report
        }
        "k-Core" => run_one(g, cfg, KCore::new(16)).expect("kcore").report,
        "PageRank" => run_one(g, cfg, PageRank::new(g)).expect("pr").report,
        _ => run_one(g, cfg, Sssp::new(src)).expect("sssp").report,
    };
    report.elapsed_ms
}

fn main() {
    let mut header: Vec<String> = vec!["Strategy".into()];
    header.extend(GRAPH_ORDER.iter().map(|s| s.to_string()));
    header.push("Avg".into());

    for algo in ["BFS", "BP", "k-Core", "PageRank", "SSSP"] {
        let graphs: Vec<_> = GRAPH_ORDER.iter().map(|a| load(a).1).collect();
        let base: Vec<f64> = graphs
            .iter()
            .map(|g| run_ms(algo, g, FusionStrategy::None))
            .collect();
        let mut rows = Vec::new();
        for (label, strategy) in [
            ("Non-fusion", FusionStrategy::None),
            ("All-fusion", FusionStrategy::All),
            ("Push-pull fusion", FusionStrategy::PushPull),
        ] {
            let mut row = vec![label.to_string()];
            let mut log_sum = 0.0;
            for (g, b) in graphs.iter().zip(&base) {
                let ms = if strategy == FusionStrategy::None {
                    *b
                } else {
                    run_ms(algo, g, strategy)
                };
                let speedup = b / ms;
                log_sum += speedup.ln();
                row.push(format!("{speedup:.2}"));
            }
            row.push(format!("{:.2}", (log_sum / graphs.len() as f64).exp()));
            rows.push(row);
        }
        print_table(
            &format!("Figure 13 ({algo}): speedup over non-fusion"),
            &header,
            &rows,
        );
    }
    println!(
        "\nPaper shape: push-pull fusion averages +43% over non-fusion and +25% over \
         all-fusion; gains concentrate on iteration-heavy, compute-light runs \
         (BFS/k-Core/SSSP, especially ER and RC); all-fusion can lose to non-fusion \
         on compute-dense PageRank."
    );
}
