//! Edge-list representation and normalization.
//!
//! The edge list is the ingestion format: generators emit edge lists and
//! the CSR builder consumes them. CuSha-style baselines also compute on
//! edge lists directly, which is why the paper notes the format "doubles
//! the memory consumption" relative to CSR (§3.1, §7.1) — we model that
//! in the baselines crate from the sizes reported here.

use crate::error::GraphError;
use crate::{VertexId, Weight};

/// A list of directed edges, optionally weighted.
///
/// Invariant: if `weights` is `Some`, it has exactly one entry per edge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (IDs are in `0..num_vertices`).
    num_vertices: VertexId,
    /// `(source, destination)` pairs.
    edges: Vec<(VertexId, VertexId)>,
    /// Optional per-edge weights, parallel to `edges`.
    weights: Option<Vec<Weight>>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Creates an edge list from raw pairs, inferring the vertex count
    /// from the largest endpoint.
    pub fn from_pairs(edges: Vec<(VertexId, VertexId)>) -> Self {
        let num_vertices = edges
            .iter()
            .map(|&(s, d)| s.max(d).saturating_add(1))
            .max()
            .unwrap_or(0);
        Self {
            num_vertices,
            edges,
            weights: None,
        }
    }

    /// Creates a weighted edge list from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != edges.len()`.
    pub fn from_weighted(
        num_vertices: VertexId,
        edges: Vec<(VertexId, VertexId)>,
        weights: Vec<Weight>,
    ) -> Self {
        Self::try_from_weighted(num_vertices, edges, weights).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible [`Self::from_weighted`]: a skewed weights vector comes
    /// back as [`GraphError::WeightsLengthMismatch`].
    pub fn try_from_weighted(
        num_vertices: VertexId,
        edges: Vec<(VertexId, VertexId)>,
        weights: Vec<Weight>,
    ) -> Result<Self, GraphError> {
        if edges.len() != weights.len() {
            return Err(GraphError::WeightsLengthMismatch {
                weights: weights.len(),
                edges: edges.len(),
            });
        }
        Ok(Self {
            num_vertices,
            edges,
            weights: Some(weights),
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list carries weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The edge pairs.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// The weights, if present.
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Appends an unweighted edge.
    ///
    /// # Panics
    ///
    /// Panics if the list is weighted (mixing weighted and unweighted
    /// edges would break the parallel-vector invariant) or if an endpoint
    /// is out of range.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        self.try_push(src, dst)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible [`Self::push`]: mixing weightedness or an out-of-range
    /// endpoint is a typed [`GraphError`], and the list is left
    /// unmodified on error.
    pub fn try_push(&mut self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        if self.weights.is_some() {
            return Err(GraphError::WeightedPush);
        }
        self.check_endpoints(src, dst)?;
        self.edges.push((src, dst));
        Ok(())
    }

    /// Appends a weighted edge.
    ///
    /// # Panics
    ///
    /// Panics if previous edges were pushed unweighted, or on an
    /// out-of-range endpoint.
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        self.try_push_weighted(src, dst, w)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible [`Self::push_weighted`]; the list is left unmodified
    /// on error.
    pub fn try_push_weighted(
        &mut self,
        src: VertexId,
        dst: VertexId,
        w: Weight,
    ) -> Result<(), GraphError> {
        self.check_endpoints(src, dst)?;
        if self.weights.is_none() {
            if !self.edges.is_empty() {
                return Err(GraphError::UnweightedPush);
            }
            self.weights = Some(Vec::new());
        }
        self.edges.push((src, dst));
        self.weights
            .as_mut()
            .expect("weights vector was just ensured")
            .push(w);
        Ok(())
    }

    fn check_endpoints(&self, src: VertexId, dst: VertexId) -> Result<(), GraphError> {
        if src >= self.num_vertices || dst >= self.num_vertices {
            return Err(GraphError::EndpointOutOfRange {
                src,
                dst,
                num_vertices: self.num_vertices,
            });
        }
        Ok(())
    }

    /// Adds the reverse of every edge, turning a directed list into the
    /// symmetric closure used for undirected graphs. Weights are copied
    /// onto the mirrored edge.
    pub fn symmetrize(&mut self) {
        let n = self.edges.len();
        self.edges.reserve(n);
        for i in 0..n {
            let (s, d) = self.edges[i];
            self.edges.push((d, s));
        }
        if let Some(w) = &mut self.weights {
            w.reserve(n);
            for i in 0..n {
                let wi = w[i];
                w.push(wi);
            }
        }
    }

    /// Removes self-loops and exact duplicate edges (keeping the first
    /// occurrence of each `(src, dst)` pair). Returns the number of edges
    /// removed.
    ///
    /// Sorting is by `(src, dst)`; for weighted lists the weight of the
    /// *smallest-weight* duplicate is kept, so SSSP results are unaffected
    /// by duplicate-collapsing.
    pub fn dedup(&mut self) -> usize {
        let before = self.edges.len();
        match self.weights.take() {
            None => {
                self.edges.retain(|&(s, d)| s != d);
                self.edges.sort_unstable();
                self.edges.dedup();
            }
            Some(w) => {
                let mut combined: Vec<((VertexId, VertexId), Weight)> = self
                    .edges
                    .iter()
                    .copied()
                    .zip(w)
                    .filter(|&((s, d), _)| s != d)
                    .collect();
                // Sort by endpoint then weight so dedup keeps the minimum weight.
                combined.sort_unstable();
                combined.dedup_by_key(|&mut (e, _)| e);
                self.edges = combined.iter().map(|&(e, _)| e).collect();
                self.weights = Some(combined.into_iter().map(|(_, w)| w).collect());
            }
        }
        before - self.edges.len()
    }

    /// Approximate in-memory footprint in bytes when stored as an edge
    /// list (the CuSha input format): 8 bytes per edge plus 4 per weight.
    pub fn footprint_bytes(&self) -> u64 {
        let per_edge = 8 + if self.is_weighted() { 4 } else { 0 };
        self.edges.len() as u64 * per_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_infers_vertex_count() {
        let el = EdgeList::from_pairs(vec![(0, 3), (2, 1)]);
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 2);
        assert!(!el.is_weighted());
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::from_pairs(vec![]);
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
    }

    #[test]
    fn push_and_push_weighted() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.num_edges(), 2);

        let mut wl = EdgeList::new(4);
        wl.push_weighted(0, 1, 10);
        wl.push_weighted(1, 2, 20);
        assert_eq!(wl.weights(), Some(&[10, 20][..]));
    }

    #[test]
    #[should_panic(expected = "edge list is weighted")]
    fn mixing_weighted_then_unweighted_panics() {
        let mut el = EdgeList::new(2);
        el.push_weighted(0, 1, 1);
        el.push(1, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_panics() {
        let mut el = EdgeList::new(2);
        el.push(0, 2);
    }

    #[test]
    fn symmetrize_doubles_edges_and_copies_weights() {
        let mut el = EdgeList::from_weighted(3, vec![(0, 1), (1, 2)], vec![5, 7]);
        el.symmetrize();
        assert_eq!(el.num_edges(), 4);
        assert_eq!(el.edges()[2], (1, 0));
        assert_eq!(el.edges()[3], (2, 1));
        assert_eq!(el.weights(), Some(&[5, 7, 5, 7][..]));
    }

    #[test]
    fn dedup_removes_self_loops_and_duplicates() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 1), (0, 1), (1, 0)]);
        let removed = el.dedup();
        assert_eq!(removed, 2);
        assert_eq!(el.edges(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn dedup_weighted_keeps_min_weight() {
        let mut el =
            EdgeList::from_weighted(3, vec![(0, 1), (0, 1), (2, 2), (1, 2)], vec![9, 3, 1, 4]);
        let removed = el.dedup();
        assert_eq!(removed, 2);
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(el.weights(), Some(&[3, 4][..]));
    }

    #[test]
    fn try_push_reports_typed_errors_and_leaves_the_list_intact() {
        let mut el = EdgeList::new(2);
        el.try_push(0, 1).expect("in range");
        assert_eq!(
            el.try_push(0, 2),
            Err(GraphError::EndpointOutOfRange {
                src: 0,
                dst: 2,
                num_vertices: 2
            })
        );
        assert_eq!(
            el.try_push_weighted(0, 1, 7),
            Err(GraphError::UnweightedPush)
        );
        assert_eq!(el.num_edges(), 1, "failed pushes must not append");

        let mut wl = EdgeList::new(2);
        wl.try_push_weighted(0, 1, 7).expect("first weighted");
        assert_eq!(wl.try_push(1, 0), Err(GraphError::WeightedPush));
        assert_eq!(wl.weights(), Some(&[7][..]));

        assert_eq!(
            EdgeList::try_from_weighted(3, vec![(0, 1)], vec![1, 2]),
            Err(GraphError::WeightsLengthMismatch {
                weights: 2,
                edges: 1
            })
        );
    }

    #[test]
    fn footprint_counts_weights() {
        let un = EdgeList::from_pairs(vec![(0, 1), (1, 0)]);
        assert_eq!(un.footprint_bytes(), 16);
        let w = EdgeList::from_weighted(2, vec![(0, 1)], vec![1]);
        assert_eq!(w.footprint_bytes(), 12);
    }
}
