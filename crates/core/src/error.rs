//! The unified, typed error surface of the engine and session API.
//!
//! Every failure mode a service caller can hit — a bad `SIMDX_*`
//! environment knob, an inconsistent [`crate::config::EngineConfig`],
//! a malformed query, or a run that aborts inside the engine — is one
//! variant of [`SimdxError`], so callers match on variants instead of
//! catching panics. The pre-session `EngineError` (which only covered
//! the two in-run aborts) is absorbed as a deprecated alias.
//!
//! Supervision aborts ([`SimdxError::Cancelled`],
//! [`SimdxError::DeadlineExceeded`], [`SimdxError::BudgetExhausted`])
//! carry a [`RunProgress`] partial-progress summary; a contained worker
//! panic surfaces as [`SimdxError::WorkerPanicked`] with the worker
//! index and stringified payload. None of these poison the session:
//! the `BoundGraph` stays reusable and the next run is bit-equal to a
//! fresh engine.

use crate::par::WorkerPanic;
use crate::supervise::RunProgress;
use simdx_graph::GraphError;

/// Why a session construction, query setup or engine run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimdxError {
    /// The online-only policy hit a bin overflow: the filter alone
    /// "cannot work for many graphs, particularly large ones" (§7.2).
    OnlineOverflow {
        /// Iteration at which the overflow occurred.
        iteration: u32,
    },
    /// The configured iteration cap was reached before convergence.
    IterationLimit {
        /// The cap that was hit.
        max_iterations: u32,
    },
    /// A `SIMDX_*` environment knob (`SIMDX_EXEC`, `SIMDX_FRONTIER`,
    /// `SIMDX_LAYOUT`, `SIMDX_PUSH`) held an unrecognized value.
    InvalidKnob {
        /// The environment variable.
        var: &'static str,
        /// Human description of the accepted values.
        expected: &'static str,
        /// The rejected raw value.
        value: String,
    },
    /// The engine configuration is internally inconsistent.
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
    /// A query was malformed for the bound graph (out-of-range source,
    /// missing edge weights, mis-sized input vector, ...).
    InvalidQuery {
        /// What is wrong with it.
        reason: String,
    },
    /// The graph failed ingestion validation (see
    /// [`simdx_graph::GraphError`] for the invariant that broke).
    InvalidGraph {
        /// What is wrong with it.
        reason: String,
    },
    /// The run's [`crate::supervise::CancelToken`] was cancelled.
    Cancelled {
        /// Work completed before the abort.
        progress: RunProgress,
    },
    /// The run's wall-clock deadline expired.
    DeadlineExceeded {
        /// Work completed before the abort.
        progress: RunProgress,
    },
    /// The run's simulated-cycle budget was exhausted.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
        /// Work completed before the abort.
        progress: RunProgress,
    },
    /// An engine worker panicked; the panic was contained, the
    /// poisoned pool discarded (the `Runtime`'s stash spawns a
    /// replacement at the next checkout), and the session remains
    /// usable — concurrent queries hold their own pools and are
    /// unaffected.
    WorkerPanicked {
        /// Index of the worker that panicked (0 is the submitter).
        worker: usize,
        /// The panic payload, stringified.
        payload: String,
    },
    /// A [`crate::service::QueryPool`] submission found the bounded
    /// queue full under
    /// [`crate::service::AdmissionPolicy::Reject`]: the query was
    /// never admitted (no ticket, no partial work) — retry later or
    /// shed the load.
    Overloaded {
        /// The queue capacity that was exhausted
        /// ([`crate::service::ServiceConfig::queue_depth`]).
        capacity: usize,
        /// Queue occupancy observed at rejection. Always equals
        /// `capacity` today (a submission is only rejected when the
        /// queue is full), but carried separately so producers can
        /// implement informed backoff without hard-coding that
        /// equality.
        depth: usize,
    },
    /// The [`crate::service::QueryPool`]'s circuit breaker is open
    /// after too many consecutive worker panics
    /// ([`crate::service::ServiceConfig::breaker_threshold`]): the
    /// submission was shed without being admitted. Unlike
    /// [`Self::Overloaded`] this is not a capacity signal — the
    /// service is refusing work to protect itself while it probes its
    /// way back to health.
    Unavailable {
        /// How long until the breaker half-opens and admits a probe —
        /// the producer's backoff hint.
        retry_after: std::time::Duration,
    },
    /// A durable checkpoint failed integrity validation
    /// ([`crate::persist`]): truncated file, CRC mismatch, bad magic,
    /// schema-version skew or a malformed section. The blob is
    /// diagnosed, never trusted — recovery skips it and reports it
    /// ([`crate::service::RecoveryReport::skipped`]).
    CheckpointCorrupt {
        /// What failed to validate (offset/section detail included).
        reason: String,
    },
    /// A checkpoint-store I/O operation failed
    /// ([`crate::persist::CheckpointStore`]): the underlying
    /// filesystem error, stringified (the error type stays `Clone` +
    /// `Eq`, which `std::io::Error` is not).
    CheckpointIo {
        /// The failed operation and its OS error.
        reason: String,
    },
}

impl From<WorkerPanic> for SimdxError {
    fn from(p: WorkerPanic) -> Self {
        Self::WorkerPanicked {
            worker: p.worker,
            payload: p.payload,
        }
    }
}

impl From<GraphError> for SimdxError {
    fn from(e: GraphError) -> Self {
        Self::InvalidGraph {
            reason: e.to_string(),
        }
    }
}

impl std::fmt::Display for SimdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OnlineOverflow { iteration } => {
                write!(f, "online filter bin overflow at iteration {iteration}")
            }
            Self::IterationLimit { max_iterations } => {
                write!(f, "did not converge within {max_iterations} iterations")
            }
            // Keeps the exact wording of the historical `env_knob` panic.
            Self::InvalidKnob {
                var,
                expected,
                value,
            } => write!(f, "{var} must be {expected}, got '{value}'"),
            Self::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            Self::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            Self::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            Self::Cancelled { progress } => write!(
                f,
                "run cancelled after {} iterations ({} edges examined, {:?} elapsed)",
                progress.iterations, progress.edges_examined, progress.elapsed
            ),
            Self::DeadlineExceeded { progress } => write!(
                f,
                "deadline exceeded after {} iterations ({} edges examined, {:?} elapsed)",
                progress.iterations, progress.edges_examined, progress.elapsed
            ),
            Self::BudgetExhausted { budget, progress } => write!(
                f,
                "cycle budget of {budget} exhausted after {} iterations \
                 ({} edges examined, {:?} elapsed)",
                progress.iterations, progress.edges_examined, progress.elapsed
            ),
            Self::WorkerPanicked { worker, payload } => {
                write!(f, "engine worker {worker} panicked: {payload}")
            }
            Self::Overloaded { capacity, depth } => write!(
                f,
                "service overloaded: submission queue at capacity {capacity} (depth {depth})"
            ),
            Self::Unavailable { retry_after } => write!(
                f,
                "service unavailable: circuit breaker open, retry after {retry_after:?}"
            ),
            Self::CheckpointCorrupt { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            Self::CheckpointIo { reason } => {
                write!(f, "checkpoint store i/o failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SimdxError {}

/// The pre-session name for the engine's run failures.
#[deprecated(
    since = "0.2.0",
    note = "EngineError was absorbed into the unified `SimdxError`"
)]
pub type EngineError = SimdxError;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_progress() -> RunProgress {
        RunProgress {
            iterations: 3,
            edges_examined: 120,
            elapsed: std::time::Duration::from_millis(8),
        }
    }

    #[test]
    fn conversions_preserve_detail() {
        let err: SimdxError = WorkerPanic {
            worker: 1,
            payload: "boom".to_string(),
        }
        .into();
        assert_eq!(
            err,
            SimdxError::WorkerPanicked {
                worker: 1,
                payload: "boom".to_string()
            }
        );

        let err: SimdxError = GraphError::TargetOutOfRange {
            edge: 4,
            target: 9,
            num_vertices: 3,
        }
        .into();
        match err {
            SimdxError::InvalidGraph { reason } => {
                assert!(reason.contains("target 9"), "reason: {reason}")
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn display_covers_every_variant() {
        let cases = [
            (
                SimdxError::OnlineOverflow { iteration: 5 },
                "overflow at iteration 5",
            ),
            (
                SimdxError::IterationLimit { max_iterations: 9 },
                "within 9 iterations",
            ),
            (
                SimdxError::InvalidKnob {
                    var: "SIMDX_EXEC",
                    expected: "'serial'",
                    value: "warp9".to_string(),
                },
                "SIMDX_EXEC must be 'serial', got 'warp9'",
            ),
            (
                SimdxError::InvalidKnob {
                    var: "SIMDX_PUSH",
                    expected: "'scan' or 'grid'",
                    value: "mesh".to_string(),
                },
                "SIMDX_PUSH must be 'scan' or 'grid', got 'mesh'",
            ),
            (
                SimdxError::InvalidConfig {
                    reason: "zero CTA width".to_string(),
                },
                "invalid engine config: zero CTA width",
            ),
            (
                SimdxError::InvalidQuery {
                    reason: "source 7 out of range".to_string(),
                },
                "invalid query: source 7 out of range",
            ),
            (
                SimdxError::InvalidGraph {
                    reason: "offsets not monotone".to_string(),
                },
                "invalid graph: offsets not monotone",
            ),
            (
                SimdxError::Cancelled {
                    progress: sample_progress(),
                },
                "run cancelled after 3 iterations (120 edges examined",
            ),
            (
                SimdxError::DeadlineExceeded {
                    progress: sample_progress(),
                },
                "deadline exceeded after 3 iterations",
            ),
            (
                SimdxError::BudgetExhausted {
                    budget: 500,
                    progress: sample_progress(),
                },
                "cycle budget of 500 exhausted after 3 iterations",
            ),
            (
                SimdxError::WorkerPanicked {
                    worker: 2,
                    payload: "index out of bounds".to_string(),
                },
                "engine worker 2 panicked: index out of bounds",
            ),
            (
                SimdxError::Overloaded {
                    capacity: 64,
                    depth: 64,
                },
                "service overloaded: submission queue at capacity 64 (depth 64)",
            ),
            (
                SimdxError::Unavailable {
                    retry_after: std::time::Duration::from_millis(250),
                },
                "service unavailable: circuit breaker open, retry after 250ms",
            ),
            (
                SimdxError::CheckpointCorrupt {
                    reason: "section 2 CRC mismatch".to_string(),
                },
                "corrupt checkpoint: section 2 CRC mismatch",
            ),
            (
                SimdxError::CheckpointIo {
                    reason: "rename cp-0.sxcp: permission denied".to_string(),
                },
                "checkpoint store i/o failed: rename cp-0.sxcp: permission denied",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err:?} display missing '{needle}'"
            );
        }
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            SimdxError::IterationLimit { max_iterations: 3 },
            SimdxError::IterationLimit { max_iterations: 3 }
        );
        assert_ne!(
            SimdxError::OnlineOverflow { iteration: 0 },
            SimdxError::OnlineOverflow { iteration: 1 }
        );
    }
}
