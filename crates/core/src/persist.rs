//! Durable checkpoints: a versioned binary wire format for
//! [`RunCheckpoint`] plus a crash-safe, directory-backed store.
//!
//! PR 8 made aborted runs resumable *in process*; this module makes
//! them survive the process. A [`DurableCheckpoint`] (a checkpoint
//! plus its serving identity: ticket and seed) encodes to a
//! self-describing blob, a [`CheckpointStore`] persists blobs keyed by
//! ticket, and the serving tier spills final-failure checkpoints
//! through it so [`crate::service::QueryPool::recover`] can resume
//! them after a crash — bit-equal to the uninterrupted run, because
//! decode reconstructs every field the resume contract depends on
//! verbatim.
//!
//! # Wire format (`SXCP`, version 1)
//!
//! Hand-rolled and dependency-free (the workspace builds offline; the
//! in-tree `serde` is an API stub). All integers are little-endian.
//!
//! ```text
//! header   magic "SXCP" · version u16 · meta type tag u8 · meta size u8
//! section  id u8 · payload len u64 · payload · CRC-32(payload) u32
//!   1 IDENT    ticket, seed, num_vertices, iteration, edges_examined,
//!              prev_dir, fusion (present, dir, all-launched), layout,
//!              algorithm string
//!   2 META     element count · count × meta-size element bytes
//!   3 FRONTIER vertex count · count × u32
//!   4 LOG      record count · per-iteration records (31 bytes each)
//!   5 STATS    8 × u64 executor/traffic counters
//! trailer  CRC-32 of every preceding byte · u32
//! ```
//!
//! Sections appear exactly once, in order. The per-section CRCs
//! localize a diagnosis; the whole-file CRC catches anything they
//! cannot (bit flips in the framing itself). Every decode failure —
//! truncation at any byte offset, any single-bit flip, a version or
//! metadata-type skew — surfaces as a typed
//! [`SimdxError::CheckpointCorrupt`], never a panic and never a
//! silently-wrong restore; no length read from the blob is trusted
//! before it is checked against the bytes actually present, so a
//! corrupted length cannot drive an allocation.
//!
//! # Crash-safe writes
//!
//! [`DirStore`] writes blob → temp file → `fsync` → atomic rename →
//! directory `fsync`. A crash at any point leaves either the old state
//! or the new state, never a half-written checkpoint under the final
//! name; leftover temp files are ignored by [`DirStore::tickets`] and
//! overwritten by the next spill. Filenames are ticket-keyed
//! (`cp-<ticket>.sxcp`, zero-padded so lexicographic order is ticket
//! order).
//!
//! Storage faults are injectable (`--features fault-inject`) through
//! the `persist` site: `persist:torn_write`, `persist:corrupt` and
//! `persist:io_err@N` in the `SIMDX_FAULTS` grammar disturb
//! [`DirStore::put`] deterministically, and the differential matrix in
//! `tests/durable_recovery.rs` pins that each disturbance yields a
//! typed error with the store still usable.

use std::path::{Path, PathBuf};

use crate::checkpoint::RunCheckpoint;
use crate::config::MetadataLayout;
use crate::error::SimdxError;
use crate::fault;
use crate::filters::FilterKind;
use crate::jit::{ActivationLog, IterationRecord};
use crate::metadata::MetadataStore;
use simdx_gpu::executor::ExecutorStats;
use simdx_gpu::memory::TrafficCounter;
use simdx_graph::csr::Direction;
use simdx_graph::VertexId;

/// File magic: the first four bytes of every durable checkpoint.
pub const MAGIC: [u8; 4] = *b"SXCP";

/// Current wire-format schema version.
pub const VERSION: u16 = 1;

const SECTION_IDENT: u8 = 1;
const SECTION_META: u8 = 2;
const SECTION_FRONTIER: u8 = 3;
const SECTION_LOG: u8 = 4;
const SECTION_STATS: u8 = 5;

/// id + len prefix per section, CRC suffix per section.
const SECTION_OVERHEAD: usize = 1 + 8 + 4;
/// Bytes per serialized [`IterationRecord`].
const LOG_RECORD_BYTES: usize = 4 + 1 + 8 + 8 + 1 + 1 + 8;
/// Fixed IDENT payload ahead of the algorithm string.
const IDENT_FIXED_BYTES: usize = 8 + 4 + 4 + 4 + 8 + 1 + 1 + 1 + 1 + 1 + 4;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven)

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 over `bytes` (IEEE polynomial — detects all single-bit
/// errors, which the corruption property test leans on).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Metadata element codec

/// A metadata type the wire format can carry: fixed-size, tagged, with
/// an explicit little-endian byte codec. Implemented for the scalar
/// types the ACC programs in this workspace use (`u32`/`u64`,
/// `i32`/`i64`, `f32`/`f64`); floats travel as their IEEE-754 bits, so
/// the round trip is bit-exact (NaN payloads included).
pub trait PersistMeta: Copy {
    /// Type tag stored in the blob header; decode refuses a blob whose
    /// tag does not match the requested type.
    const TAG: u8;
    /// Serialized size in bytes.
    const SIZE: usize;
    /// Appends the little-endian encoding of `self`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decodes from exactly [`Self::SIZE`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! persist_meta_int {
    ($ty:ty, $tag:expr) => {
        impl PersistMeta for $ty {
            const TAG: u8 = $tag;
            const SIZE: usize = std::mem::size_of::<$ty>();
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; std::mem::size_of::<$ty>()];
                buf.copy_from_slice(bytes);
                <$ty>::from_le_bytes(buf)
            }
        }
    };
}

persist_meta_int!(u32, 1);
persist_meta_int!(u64, 2);
persist_meta_int!(i32, 3);
persist_meta_int!(i64, 4);

impl PersistMeta for f32 {
    const TAG: u8 = 5;
    const SIZE: usize = 4;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(bytes);
        f32::from_bits(u32::from_le_bytes(buf))
    }
}

impl PersistMeta for f64 {
    const TAG: u8 = 6;
    const SIZE: usize = 8;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        f64::from_bits(u64::from_le_bytes(buf))
    }
}

// ---------------------------------------------------------------------
// Encode

/// A [`RunCheckpoint`] plus the serving identity the recovery path
/// needs: which ticket spilled it and which seed the query was rooted
/// at. This is the unit [`encode`]/[`decode`] round-trip and
/// [`CheckpointStore`] implementations persist.
#[derive(Clone, Debug)]
pub struct DurableCheckpoint<M: Copy> {
    /// The serving ticket that spilled this checkpoint
    /// ([`crate::service::QueryTicket::index`], widened).
    pub ticket: u64,
    /// The query's seed vertex (resume re-validates it against the
    /// bound graph).
    pub seed: VertexId,
    /// The boundary snapshot itself.
    pub checkpoint: RunCheckpoint<M>,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends one framed section: id, payload length, payload, CRC.
fn put_section(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

fn dir_byte(dir: Direction) -> u8 {
    match dir {
        Direction::Push => 0,
        Direction::Pull => 1,
    }
}

fn filter_byte(filter: FilterKind) -> u8 {
    match filter {
        FilterKind::Online => 0,
        FilterKind::Ballot => 1,
    }
}

fn layout_byte(layout: MetadataLayout) -> u8 {
    match layout {
        MetadataLayout::Flat => 0,
        MetadataLayout::Chunked => 1,
    }
}

/// Serializes a durable checkpoint to its self-describing blob.
pub fn encode<M: PersistMeta>(frame: &DurableCheckpoint<M>) -> Vec<u8> {
    let cp = &frame.checkpoint;
    let meta = cp.meta.as_slice();
    let algo = cp.algorithm.as_bytes();

    let ident_len = IDENT_FIXED_BYTES + algo.len();
    let meta_len = 8 + meta.len() * M::SIZE;
    let frontier_len = 8 + cp.frontier.len() * 4;
    let log_len = 8 + cp.log.records.len() * LOG_RECORD_BYTES;
    let stats_len = 8 * 8;
    let total =
        8 + ident_len + meta_len + frontier_len + log_len + stats_len + 5 * SECTION_OVERHEAD + 4;
    let mut out = Vec::with_capacity(total);

    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out.push(M::TAG);
    out.push(M::SIZE as u8);

    let mut ident = Vec::with_capacity(ident_len);
    put_u64(&mut ident, frame.ticket);
    put_u32(&mut ident, frame.seed);
    put_u32(&mut ident, cp.num_vertices);
    put_u32(&mut ident, cp.iteration);
    put_u64(&mut ident, cp.edges_examined);
    ident.push(dir_byte(cp.prev_dir));
    ident.push(cp.fusion.0.is_some() as u8);
    ident.push(cp.fusion.0.map_or(0, dir_byte));
    ident.push(cp.fusion.1 as u8);
    ident.push(layout_byte(cp.meta.layout()));
    put_u32(&mut ident, algo.len() as u32);
    ident.extend_from_slice(algo);
    put_section(&mut out, SECTION_IDENT, &ident);

    let mut meta_bytes = Vec::with_capacity(meta_len);
    put_u64(&mut meta_bytes, meta.len() as u64);
    for &m in meta {
        m.write_le(&mut meta_bytes);
    }
    put_section(&mut out, SECTION_META, &meta_bytes);

    let mut frontier = Vec::with_capacity(frontier_len);
    put_u64(&mut frontier, cp.frontier.len() as u64);
    for &v in &cp.frontier {
        put_u32(&mut frontier, v);
    }
    put_section(&mut out, SECTION_FRONTIER, &frontier);

    let mut log = Vec::with_capacity(log_len);
    put_u64(&mut log, cp.log.records.len() as u64);
    for rec in &cp.log.records {
        put_u32(&mut log, rec.iteration);
        log.push(dir_byte(rec.direction));
        put_u64(&mut log, rec.frontier_len);
        put_u64(&mut log, rec.degree_sum);
        log.push(filter_byte(rec.filter));
        log.push(rec.overflowed as u8);
        put_u64(&mut log, rec.cycles);
    }
    put_section(&mut out, SECTION_LOG, &log);

    let mut stats = Vec::with_capacity(stats_len);
    put_u64(&mut stats, cp.stats.total_cycles);
    put_u64(&mut stats, cp.stats.kernel_launches);
    put_u64(&mut stats, cp.stats.barrier_passes);
    put_u64(&mut stats, cp.stats.kernel_invocations);
    put_u64(&mut stats, cp.stats.traffic.coalesced_reads);
    put_u64(&mut stats, cp.stats.traffic.random_reads);
    put_u64(&mut stats, cp.stats.traffic.writes);
    put_u64(&mut stats, cp.stats.traffic.atomics);
    put_section(&mut out, SECTION_STATS, &stats);

    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------
// Decode

fn corrupt(reason: impl Into<String>) -> SimdxError {
    SimdxError::CheckpointCorrupt {
        reason: reason.into(),
    }
}

/// Bounds-checked cursor over an untrusted blob: every read is
/// validated against the bytes actually present before a slice (let
/// alone an allocation) is produced.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SimdxError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt(format!("{what}: length overflows at offset {}", self.pos)))?;
        if end > self.bytes.len() {
            return Err(corrupt(format!(
                "{what}: truncated at offset {} (need {n} bytes, {} left)",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SimdxError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, SimdxError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, SimdxError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SimdxError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Reads one framed section, verifies its CRC, and returns its
/// payload.
fn read_section<'a>(r: &mut Reader<'a>, expect_id: u8) -> Result<&'a [u8], SimdxError> {
    let id = r.u8("section id")?;
    if id != expect_id {
        return Err(corrupt(format!(
            "expected section {expect_id}, found id {id}"
        )));
    }
    let len = r.u64("section length")?;
    // The length is untrusted until it fits the bytes present; a
    // flipped length bit must fail here, not drive an allocation.
    let len = usize::try_from(len).map_err(|_| corrupt("section length exceeds usize"))?;
    let payload = r.take(len, &format!("section {expect_id} payload"))?;
    let stored = r.u32(&format!("section {expect_id} CRC"))?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(corrupt(format!(
            "section {expect_id} CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok(payload)
}

fn decode_dir(b: u8, what: &str) -> Result<Direction, SimdxError> {
    match b {
        0 => Ok(Direction::Push),
        1 => Ok(Direction::Pull),
        other => Err(corrupt(format!("{what}: bad direction byte {other}"))),
    }
}

fn decode_bool(b: u8, what: &str) -> Result<bool, SimdxError> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(format!("{what}: bad bool byte {other}"))),
    }
}

/// Deserializes a durable checkpoint, validating framing, CRCs,
/// version and metadata type. Every failure is a typed
/// [`SimdxError::CheckpointCorrupt`]; this function never panics on
/// any input.
pub fn decode<M: PersistMeta>(bytes: &[u8]) -> Result<DurableCheckpoint<M>, SimdxError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(corrupt(format!(
            "bad magic {magic:02x?} (not a checkpoint)"
        )));
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(corrupt(format!(
            "schema version {version} (this build reads version {VERSION})"
        )));
    }
    let tag = r.u8("meta type tag")?;
    if tag != M::TAG {
        return Err(corrupt(format!(
            "metadata type tag {tag} does not match requested type (tag {})",
            M::TAG
        )));
    }
    let size = r.u8("meta size")?;
    if size as usize != M::SIZE {
        return Err(corrupt(format!(
            "metadata element size {size} does not match requested type ({} bytes)",
            M::SIZE
        )));
    }

    let ident = read_section(&mut r, SECTION_IDENT)?;
    let meta_bytes = read_section(&mut r, SECTION_META)?;
    let frontier_bytes = read_section(&mut r, SECTION_FRONTIER)?;
    let log_bytes = read_section(&mut r, SECTION_LOG)?;
    let stats_bytes = read_section(&mut r, SECTION_STATS)?;

    // Exactly the whole-file CRC may remain; stray trailing bytes are
    // as suspect as missing ones.
    if r.remaining() != 4 {
        return Err(corrupt(format!(
            "expected 4-byte whole-file CRC trailer, found {} trailing bytes",
            r.remaining()
        )));
    }
    let stored = r.u32("whole-file CRC")?;
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(corrupt(format!(
            "whole-file CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }

    // IDENT
    let mut ir = Reader {
        bytes: ident,
        pos: 0,
    };
    let ticket = ir.u64("ticket")?;
    let seed = ir.u32("seed")?;
    let num_vertices = ir.u32("num_vertices")?;
    let iteration = ir.u32("iteration")?;
    let edges_examined = ir.u64("edges_examined")?;
    let prev_dir = decode_dir(ir.u8("prev_dir")?, "prev_dir")?;
    let fusion_present = decode_bool(ir.u8("fusion present")?, "fusion present")?;
    let fusion_dir = ir.u8("fusion direction")?;
    let fusion_all = decode_bool(ir.u8("fusion all-launched")?, "fusion all-launched")?;
    let layout = match ir.u8("metadata layout")? {
        0 => MetadataLayout::Flat,
        1 => MetadataLayout::Chunked,
        other => return Err(corrupt(format!("bad metadata layout byte {other}"))),
    };
    let algo_len = ir.u32("algorithm length")? as usize;
    let algo = ir.take(algo_len, "algorithm string")?;
    let algorithm = std::str::from_utf8(algo)
        .map_err(|e| corrupt(format!("algorithm string is not UTF-8: {e}")))?
        .to_string();
    if ir.remaining() != 0 {
        return Err(corrupt(format!(
            "IDENT section has {} unread bytes",
            ir.remaining()
        )));
    }
    let fusion = (
        fusion_present
            .then(|| decode_dir(fusion_dir, "fusion direction"))
            .transpose()?,
        fusion_all,
    );

    // META
    let mut mr = Reader {
        bytes: meta_bytes,
        pos: 0,
    };
    let count = mr.u64("meta count")? as usize;
    let elems = mr.take(
        count
            .checked_mul(M::SIZE)
            .ok_or_else(|| corrupt("meta count overflows"))?,
        "meta elements",
    )?;
    if mr.remaining() != 0 {
        return Err(corrupt(format!(
            "META section has {} unread bytes",
            mr.remaining()
        )));
    }
    let mut meta = Vec::with_capacity(count);
    for chunk in elems.chunks_exact(M::SIZE) {
        meta.push(M::read_le(chunk));
    }
    let meta = MetadataStore::from_vec(layout, meta);

    // FRONTIER
    let mut fr = Reader {
        bytes: frontier_bytes,
        pos: 0,
    };
    let count = fr.u64("frontier count")? as usize;
    let verts = fr.take(
        count
            .checked_mul(4)
            .ok_or_else(|| corrupt("frontier count overflows"))?,
        "frontier vertices",
    )?;
    if fr.remaining() != 0 {
        return Err(corrupt(format!(
            "FRONTIER section has {} unread bytes",
            fr.remaining()
        )));
    }
    let mut frontier = Vec::with_capacity(count);
    for chunk in verts.chunks_exact(4) {
        frontier.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }

    // LOG
    let mut lr = Reader {
        bytes: log_bytes,
        pos: 0,
    };
    let count = lr.u64("log record count")? as usize;
    let expect = count
        .checked_mul(LOG_RECORD_BYTES)
        .ok_or_else(|| corrupt("log record count overflows"))?;
    if lr.remaining() != expect {
        return Err(corrupt(format!(
            "LOG section holds {} bytes for {count} records (expected {expect})",
            lr.remaining()
        )));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let what = format!("log record {i}");
        records.push(IterationRecord {
            iteration: lr.u32(&what)?,
            direction: decode_dir(lr.u8(&what)?, &what)?,
            frontier_len: lr.u64(&what)?,
            degree_sum: lr.u64(&what)?,
            filter: match lr.u8(&what)? {
                0 => FilterKind::Online,
                1 => FilterKind::Ballot,
                other => return Err(corrupt(format!("{what}: bad filter byte {other}"))),
            },
            overflowed: decode_bool(lr.u8(&what)?, &what)?,
            cycles: lr.u64(&what)?,
        });
    }
    let log = ActivationLog { records };

    // STATS
    let mut sr = Reader {
        bytes: stats_bytes,
        pos: 0,
    };
    let stats = ExecutorStats {
        total_cycles: sr.u64("total_cycles")?,
        kernel_launches: sr.u64("kernel_launches")?,
        barrier_passes: sr.u64("barrier_passes")?,
        kernel_invocations: sr.u64("kernel_invocations")?,
        traffic: TrafficCounter {
            coalesced_reads: sr.u64("coalesced_reads")?,
            random_reads: sr.u64("random_reads")?,
            writes: sr.u64("writes")?,
            atomics: sr.u64("atomics")?,
        },
    };
    if sr.remaining() != 0 {
        return Err(corrupt(format!(
            "STATS section has {} unread bytes",
            sr.remaining()
        )));
    }

    Ok(DurableCheckpoint {
        ticket,
        seed,
        checkpoint: RunCheckpoint {
            algorithm,
            num_vertices,
            meta,
            frontier,
            log,
            prev_dir,
            iteration,
            edges_examined,
            stats,
            fusion,
        },
    })
}

// ---------------------------------------------------------------------
// Store

/// Where durable checkpoints live: blobs keyed by serving ticket. The
/// trait works in bytes so stores stay object-safe and metadata-type
/// agnostic; [`encode`]/[`decode`] sit on top.
///
/// Contract: [`CheckpointStore::put`] is atomic — a concurrent crash
/// leaves either the previous blob or the new one, never a mix — and
/// every failure is a typed [`SimdxError::CheckpointIo`] (the store
/// stays usable afterwards).
pub trait CheckpointStore: Send + Sync {
    /// Persists `blob` under `ticket`, replacing any previous blob.
    fn put(&self, ticket: u64, blob: &[u8]) -> Result<(), SimdxError>;
    /// Reads the blob stored under `ticket`.
    fn get(&self, ticket: u64) -> Result<Vec<u8>, SimdxError>;
    /// Removes `ticket`'s blob; removing an absent ticket is not an
    /// error (recovery and spilling race benignly).
    fn remove(&self, ticket: u64) -> Result<(), SimdxError>;
    /// Every ticket with a persisted blob, ascending.
    fn tickets(&self) -> Result<Vec<u64>, SimdxError>;
}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> SimdxError {
    SimdxError::CheckpointIo {
        reason: format!("{op} {}: {e}", path.display()),
    }
}

/// Directory-backed [`CheckpointStore`] with crash-safe writes; see
/// the module docs for the temp-file + `fsync` + rename protocol.
#[derive(Clone, Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SimdxError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create checkpoint dir", &dir, &e))?;
        Ok(Self { dir })
    }

    /// The directory blobs live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, ticket: u64) -> PathBuf {
        self.dir.join(format!("cp-{ticket:020}.sxcp"))
    }

    fn tmp_path(&self, ticket: u64) -> PathBuf {
        self.dir.join(format!(".cp-{ticket:020}.tmp"))
    }
}

impl CheckpointStore for DirStore {
    fn put(&self, ticket: u64, blob: &[u8]) -> Result<(), SimdxError> {
        use std::io::Write;

        // Deterministic storage-fault hook (`--features fault-inject`):
        // a torn write drops the blob's tail (the crash the atomic
        // protocol exists for), a corruption flips one payload bit,
        // and an i/o error fails the operation outright.
        let mut disturbed: Vec<u8>;
        let mut blob = blob;
        match fault::persist_disturbance() {
            None => {}
            Some(fault::PersistDisturbance::TornWrite) => {
                blob = &blob[..blob.len() / 2];
            }
            Some(fault::PersistDisturbance::Corrupt) => {
                disturbed = blob.to_vec();
                let mid = disturbed.len() / 2;
                if let Some(byte) = disturbed.get_mut(mid) {
                    *byte ^= 0x01;
                }
                blob = &disturbed;
            }
            Some(fault::PersistDisturbance::IoErr) => {
                return Err(SimdxError::CheckpointIo {
                    reason: format!(
                        "write {}: injected i/o fault",
                        self.blob_path(ticket).display()
                    ),
                });
            }
        }

        let tmp = self.tmp_path(ticket);
        let path = self.blob_path(ticket);
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| io_err("create temp blob", &tmp, &e))?;
        file.write_all(blob)
            .map_err(|e| io_err("write temp blob", &tmp, &e))?;
        // fsync before rename: the rename must never make a blob
        // visible whose bytes are still in the page cache only.
        file.sync_all()
            .map_err(|e| io_err("fsync temp blob", &tmp, &e))?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename blob into place", &path, &e))?;
        // fsync the directory so the rename itself is durable.
        match std::fs::File::open(&self.dir) {
            Ok(d) => d
                .sync_all()
                .map_err(|e| io_err("fsync checkpoint dir", &self.dir, &e))?,
            Err(e) => return Err(io_err("open checkpoint dir for fsync", &self.dir, &e)),
        }
        Ok(())
    }

    fn get(&self, ticket: u64) -> Result<Vec<u8>, SimdxError> {
        let path = self.blob_path(ticket);
        std::fs::read(&path).map_err(|e| io_err("read blob", &path, &e))
    }

    fn remove(&self, ticket: u64) -> Result<(), SimdxError> {
        let path = self.blob_path(ticket);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove blob", &path, &e)),
        }
    }

    fn tickets(&self) -> Result<Vec<u64>, SimdxError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| io_err("scan checkpoint dir", &self.dir, &e))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan checkpoint dir", &self.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            // Interrupted writes leave `.cp-*.tmp` files; they are not
            // checkpoints and the next put for that ticket replaces
            // them.
            let Some(ticket) = name
                .strip_prefix("cp-")
                .and_then(|rest| rest.strip_suffix(".sxcp"))
            else {
                continue;
            };
            if let Ok(ticket) = ticket.parse::<u64>() {
                out.push(ticket);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

/// Encodes and persists one durable checkpoint.
pub fn spill<M: PersistMeta>(
    store: &dyn CheckpointStore,
    frame: &DurableCheckpoint<M>,
) -> Result<(), SimdxError> {
    store.put(frame.ticket, &encode(frame))
}

/// Reads and decodes one ticket's durable checkpoint.
pub fn load<M: PersistMeta>(
    store: &dyn CheckpointStore,
    ticket: u64,
) -> Result<DurableCheckpoint<M>, SimdxError> {
    let blob = store.get(ticket)?;
    let frame = decode::<M>(&blob)?;
    if frame.ticket != ticket {
        return Err(corrupt(format!(
            "blob stored under ticket {ticket} identifies itself as ticket {}",
            frame.ticket
        )));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};

    fn sample(ticket: u64) -> DurableCheckpoint<u32> {
        DurableCheckpoint {
            ticket,
            seed: 3,
            checkpoint: RunCheckpoint {
                algorithm: "levels".to_string(),
                num_vertices: 4,
                meta: MetadataStore::from_vec(
                    MetadataLayout::Chunked,
                    vec![0, 1, u32::MAX, u32::MAX],
                ),
                frontier: vec![1, 3],
                log: ActivationLog {
                    records: vec![IterationRecord {
                        iteration: 0,
                        direction: Direction::Push,
                        frontier_len: 1,
                        degree_sum: 2,
                        filter: FilterKind::Ballot,
                        overflowed: false,
                        cycles: 123,
                    }],
                },
                prev_dir: Direction::Pull,
                iteration: 1,
                edges_examined: 7,
                stats: ExecutorStats {
                    total_cycles: 1234,
                    kernel_launches: 3,
                    barrier_passes: 2,
                    kernel_invocations: 5,
                    traffic: TrafficCounter {
                        coalesced_reads: 10,
                        random_reads: 11,
                        writes: 12,
                        atomics: 13,
                    },
                },
                fusion: (Some(Direction::Push), true),
            },
        }
    }

    /// A unique scratch directory per test (no tempfile crate in the
    /// offline workspace).
    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ORDERING: the counter only needs unique draws, not ordering.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("simdx-persist-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let frame = sample(42);
        let blob = encode(&frame);
        let back = decode::<u32>(&blob).expect("decode");
        assert_eq!(back.ticket, 42);
        assert_eq!(back.seed, 3);
        let cp = &back.checkpoint;
        assert_eq!(cp.algorithm, "levels");
        assert_eq!(cp.num_vertices, 4);
        assert_eq!(cp.meta.as_slice(), frame.checkpoint.meta.as_slice());
        assert_eq!(cp.meta.layout(), MetadataLayout::Chunked);
        assert_eq!(cp.frontier, vec![1, 3]);
        assert_eq!(cp.log, frame.checkpoint.log);
        assert_eq!(cp.prev_dir, Direction::Pull);
        assert_eq!(cp.iteration, 1);
        assert_eq!(cp.edges_examined, 7);
        assert_eq!(cp.stats, frame.checkpoint.stats);
        assert_eq!(cp.fusion, (Some(Direction::Push), true));
        // Re-encoding the decoded frame reproduces the blob verbatim.
        assert_eq!(encode(&back), blob);
    }

    #[test]
    fn float_meta_roundtrips_nan_bits() {
        let frame = DurableCheckpoint {
            ticket: 0,
            seed: 0,
            checkpoint: RunCheckpoint {
                algorithm: "pr".to_string(),
                num_vertices: 3,
                meta: MetadataStore::from_vec(
                    MetadataLayout::Flat,
                    vec![0.25f32, f32::from_bits(0x7FC0_1234), -0.0],
                ),
                frontier: vec![0],
                log: ActivationLog::default(),
                prev_dir: Direction::Push,
                iteration: 0,
                edges_examined: 0,
                stats: ExecutorStats::default(),
                fusion: (None, false),
            },
        };
        let back = decode::<f32>(&encode(&frame)).expect("decode");
        let bits: Vec<u32> = back
            .checkpoint
            .meta
            .as_slice()
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(
            bits,
            vec![0.25f32.to_bits(), 0x7FC0_1234, (-0.0f32).to_bits()]
        );
    }

    #[test]
    fn wrong_meta_type_version_and_magic_are_typed() {
        let blob = encode(&sample(1));
        // Wrong metadata type.
        assert!(matches!(
            decode::<f32>(&blob),
            Err(SimdxError::CheckpointCorrupt { reason }) if reason.contains("type tag")
        ));
        // Version skew.
        let mut skew = blob.clone();
        skew[4] = 9;
        assert!(matches!(
            decode::<u32>(&skew),
            Err(SimdxError::CheckpointCorrupt { reason }) if reason.contains("schema version")
        ));
        // Not a checkpoint at all.
        assert!(matches!(
            decode::<u32>(b"hello world, definitely not a checkpoint"),
            Err(SimdxError::CheckpointCorrupt { reason }) if reason.contains("magic")
        ));
        assert!(decode::<u32>(&[]).is_err());
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        let blob = encode(&sample(7));
        for len in 0..blob.len() {
            match decode::<u32>(&blob[..len]) {
                Err(SimdxError::CheckpointCorrupt { .. }) => {}
                other => panic!("truncation to {len} bytes: expected corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let blob = encode(&sample(9));
        for byte in 0..blob.len() {
            let mut flipped = blob.clone();
            flipped[byte] ^= 1 << (byte % 8);
            assert!(
                matches!(
                    decode::<u32>(&flipped),
                    Err(SimdxError::CheckpointCorrupt { .. })
                ),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn dir_store_puts_gets_lists_and_removes() {
        let dir = scratch_dir("store");
        let store = DirStore::open(&dir).expect("open");
        assert_eq!(store.tickets().expect("empty scan"), Vec::<u64>::new());
        spill(&store, &sample(5)).expect("spill 5");
        spill(&store, &sample(2)).expect("spill 2");
        assert_eq!(store.tickets().expect("scan"), vec![2, 5]);
        let back = load::<u32>(&store, 5).expect("load");
        assert_eq!(back.ticket, 5);
        // Overwrite is fine (a later boundary replaces an earlier one).
        spill(&store, &sample(5)).expect("re-spill");
        store.remove(5).expect("remove");
        store.remove(5).expect("second remove is not an error");
        assert_eq!(store.tickets().expect("scan"), vec![2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_store_skips_temp_files_and_foreign_names() {
        let dir = scratch_dir("scan");
        let store = DirStore::open(&dir).expect("open");
        spill(&store, &sample(1)).expect("spill");
        std::fs::write(dir.join(".cp-00000000000000000009.tmp"), b"half a blob")
            .expect("write tmp");
        std::fs::write(dir.join("notes.txt"), b"unrelated").expect("write foreign");
        std::fs::write(dir.join("cp-notanumber.sxcp"), b"junk").expect("write junk");
        assert_eq!(store.tickets().expect("scan"), vec![1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_of_missing_ticket_is_typed_io_error() {
        let dir = scratch_dir("missing");
        let store = DirStore::open(&dir).expect("open");
        assert!(matches!(
            store.get(99),
            Err(SimdxError::CheckpointIo { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_ticket_mismatch() {
        let dir = scratch_dir("mismatch");
        let store = DirStore::open(&dir).expect("open");
        // A blob identifying itself as ticket 3, filed under ticket 8.
        store.put(8, &encode(&sample(3))).expect("put");
        assert!(matches!(
            load::<u32>(&store, 8),
            Err(SimdxError::CheckpointCorrupt { reason }) if reason.contains("ticket")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
