//! The ballot filter (§4).
//!
//! Threads cooperatively scan the metadata arrays in warp-sized,
//! coalesced chunks; `__ballot` condenses each chunk's Active results
//! into a lane mask, and the set bits are appended — in vertex order —
//! to the next active list. Because each warp owns a contiguous vertex
//! range, the output is **sorted and duplicate-free**, the property that
//! makes next-iteration memory access sequential (§4's "dual benefits:
//! coalesced scan and sorted active vertices").

use crate::acc::AccProgram;
use simdx_gpu::warp::{ballot, popc};
use simdx_gpu::{Cost, GpuExecutor, KernelDesc, SchedUnit, WARP_SIZE};
use simdx_graph::VertexId;

/// Reusable output buffers of one ballot-scan partition (also the
/// serial scan's scratch — the serial engine is the one-partition case).
#[derive(Clone, Debug, Default)]
pub struct WarpScanScratch {
    /// Per-warp-chunk scan costs, in chunk order.
    pub tasks: Vec<Cost>,
    /// Active vertices found, in vertex order.
    pub active: Vec<VertexId>,
}

impl WarpScanScratch {
    /// Clears both buffers, keeping capacity.
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.active.clear();
    }
}

/// Scans vertices `[start, end)` of the metadata arrays in warp-sized
/// chunks, appending active vertices and per-chunk costs to `out`.
///
/// `start` must be warp-aligned so that partition boundaries fall on
/// the same chunk boundaries the whole-array scan uses — partitions
/// concatenated in range order are then bit-identical (same actives,
/// same cost sequence) to one scan of the full range.
pub fn scan_range<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    start: usize,
    end: usize,
    out: &mut WarpScanScratch,
) {
    assert_eq!(curr.len(), prev.len(), "metadata arrays must be parallel");
    assert!(
        start.is_multiple_of(WARP_SIZE),
        "partition start must be warp-aligned"
    );
    let mut preds = [false; WARP_SIZE];
    let mut base = start;
    while base < end {
        let chunk = (end - base).min(WARP_SIZE);
        for lane in 0..chunk {
            let v = (base + lane) as VertexId;
            preds[lane] = program.active(v, &curr[base + lane], &prev[base + lane]);
        }
        // `__ballot` across the warp, then the warp appends its set
        // lanes in order — keeping the global output sorted because
        // warp w owns vertices [32w, 32w+32).
        let mask = ballot(&preds[..chunk]);
        let votes = popc(mask);
        for lane in 0..chunk {
            if mask & (1 << lane) != 0 {
                out.active.push((base + lane) as VertexId);
            }
        }
        // Per-warp cost: two coalesced metadata loads per lane, the
        // compare + ballot + popc ALU work, and the compacted append of
        // the voting lanes.
        out.tasks.push(Cost {
            compute_ops: 3 * chunk as u64,
            coalesced_reads: 2 * chunk as u64,
            writes: u64::from(votes),
            width: WARP_SIZE as u64,
            ..Cost::default()
        });
        base += chunk;
    }
}

/// Scans `curr` vs `prev` metadata with the program's Active condition
/// and returns the sorted, duplicate-free active list, charging the scan
/// kernel to `executor`.
///
/// # Panics
///
/// Panics if the metadata arrays have different lengths.
pub fn scan<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
) -> Vec<VertexId> {
    let mut out = WarpScanScratch::default();
    scan_range(program, curr, prev, 0, curr.len(), &mut out);
    executor.run_kernel(kernel, SchedUnit::Warp, &out.tasks, launch);
    out.active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CombineKind;
    use simdx_gpu::DeviceSpec;
    use simdx_graph::{Graph, Weight};

    /// Trivial program whose Active is the default curr != prev.
    struct Diff;

    impl AccProgram for Diff {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "diff"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Vote
        }

        fn init(&self, _g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            unreachable!("not used by filter tests")
        }

        fn compute(
            &self,
            _s: VertexId,
            _d: VertexId,
            _w: Weight,
            _ms: &u32,
            _md: &u32,
        ) -> Option<u32> {
            None
        }

        fn combine(&self, a: u32, _b: u32) -> u32 {
            a
        }

        fn apply(&self, _v: VertexId, _c: &u32, _u: u32) -> Option<u32> {
            None
        }
    }

    fn setup() -> (GpuExecutor, KernelDesc) {
        (
            GpuExecutor::new(DeviceSpec::k40()),
            KernelDesc::new("taskmgmt", 24),
        )
    }

    #[test]
    fn finds_changed_vertices_sorted() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 100];
        let mut curr = prev.clone();
        curr[97] = 1;
        curr[3] = 1;
        curr[40] = 2;
        let list = scan(&Diff, &curr, &prev, &mut ex, &k, true);
        assert_eq!(list, vec![3, 40, 97]);
        assert_eq!(ex.stats().kernel_launches, 1);
    }

    #[test]
    fn no_changes_empty_list_but_scan_still_paid() {
        let (mut ex, k) = setup();
        let meta = vec![7u32; 1000];
        let list = scan(&Diff, &meta, &meta, &mut ex, &k, false);
        assert!(list.is_empty());
        // The scan cost is proportional to V even with nothing active —
        // the weakness JIT control exists to avoid (ER/RC in §4).
        assert!(ex.stats().total_cycles > 0);
    }

    #[test]
    fn partial_last_warp_handled() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 33];
        let mut curr = prev.clone();
        curr[32] = 5;
        let list = scan(&Diff, &curr, &prev, &mut ex, &k, false);
        assert_eq!(list, vec![32]);
    }

    #[test]
    fn cost_proportional_to_vertices_not_actives() {
        let (mut ex, k) = setup();
        let prev = vec![0u32; 32 * 1024];
        let mut curr = prev.clone();
        curr[5] = 1;
        scan(&Diff, &curr, &prev, &mut ex, &k, false);
        let one_active = ex.stats().total_cycles;

        ex.reset();
        let mut all = prev.clone();
        for m in all.iter_mut() {
            *m = 1;
        }
        scan(&Diff, &all, &prev, &mut ex, &k, false);
        let all_active = ex.stats().total_cycles;
        // The scan dominates, not the append volume: the all-active case
        // adds write traffic but stays within a small factor.
        assert!(all_active < one_active * 8);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_arrays_panic() {
        let (mut ex, k) = setup();
        scan(&Diff, &[1u32, 2], &[1u32], &mut ex, &k, false);
    }

    #[test]
    fn empty_metadata_ok() {
        let (mut ex, k) = setup();
        let list = scan(&Diff, &[] as &[u32], &[], &mut ex, &k, false);
        assert!(list.is_empty());
    }
}
