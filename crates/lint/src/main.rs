//! CLI for the repo lint. Exit codes: 0 clean, 1 findings, 2 usage or
//! I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simdx_lint::ratchet;
use simdx_lint::rules::{check_file, FileCheck, Finding, Policy};

const BASELINE_PATH: &str = "crates/lint/baseline.txt";

struct Args {
    root: PathBuf,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut update_baseline = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {} // the default mode; accepted for explicitness
            "--update-baseline" => update_baseline = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage, exit 2
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(find_workspace_root),
        update_baseline,
    })
}

/// Walks up from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table, so the tool works from any
/// subdirectory.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Collects every `.rs` file under the policy's scan roots, skipping
/// excluded subtrees. Returned paths are workspace-relative with `/`
/// separators, sorted for stable output.
fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for scan in Policy::SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_str(root, &path);
        if path.is_dir() {
            if Policy::SKIP_DIRS.iter().any(|s| rel == *s) {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = &args.root;

    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;
    for path in collect_sources(root)? {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let fc = FileCheck::new(rel_str(root, &path), &src);
        findings.extend(check_file(&fc));
        scanned += 1;
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // `panic-free` is ratcheted against the baseline; every other rule
    // is hard-fail.
    let (ratcheted, hard): (Vec<_>, Vec<_>) = findings.iter().partition(|f| f.rule == "panic-free");
    let current = ratchet::tally(ratcheted.iter().copied());

    let baseline_file = root.join(BASELINE_PATH);
    if args.update_baseline {
        std::fs::write(&baseline_file, ratchet::render(&current))
            .map_err(|e| format!("write {}: {e}", baseline_file.display()))?;
        println!(
            "baseline updated: {} entr{} ({} ratcheted finding(s))",
            current.len(),
            if current.len() == 1 { "y" } else { "ies" },
            ratcheted.len()
        );
    }

    let baseline = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => ratchet::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => ratchet::Baseline::new(),
        Err(e) => return Err(format!("read {}: {e}", baseline_file.display())),
    };
    let (regressions, improvements) = ratchet::compare(&current, &baseline);

    for f in &hard {
        println!("{f}");
    }
    if !regressions.is_empty() {
        println!("panic-free ratchet regressions:");
        for f in &ratcheted {
            println!("  {f}");
        }
        for r in &regressions {
            println!("  {r}");
        }
    }
    for i in &improvements {
        println!("note: {i}");
    }

    let failed = !hard.is_empty() || !regressions.is_empty();
    println!(
        "simdx-lint: {scanned} files scanned, {} hard finding(s), {} ratchet regression(s){}",
        hard.len(),
        regressions.len(),
        if failed { "" } else { " — clean" }
    );
    Ok(if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("simdx-lint: {msg}");
            }
            eprintln!(
                "usage: cargo run -p simdx_lint -- [--check] [--update-baseline] [--root DIR]"
            );
            ExitCode::from(2)
        }
    }
}
