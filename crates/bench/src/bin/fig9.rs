//! Regenerates **Figure 9**: (a) BFS performance across online-filter
//! overflow thresholds — too low forces ballot too early, too high
//! defers it too long, 64 sits at the plateau; (b) the overhead of JIT
//! control on SSSP — the cost of keeping the (bounded) online filter
//! running so control can switch back, measured against the best fixed
//! filter policy per graph.

use simdx_algos::{bfs::Bfs, sssp::Sssp};
use simdx_bench::{load, print_table, run_one, source, GRAPH_ORDER};
use simdx_core::{EngineConfig, FilterPolicy};

fn main() {
    // (a) Threshold sweep, normalized to each graph's best.
    let thresholds = [4usize, 16, 64, 256, 1024, 4096];
    let mut header: Vec<String> = vec!["Graph".into()];
    header.extend(thresholds.iter().map(|t| t.to_string()));
    let mut rows = Vec::new();
    for abbrev in GRAPH_ORDER {
        let (_, g) = load(abbrev);
        let src = source(&g);
        let times: Vec<f64> = thresholds
            .iter()
            .map(|&t| {
                let cfg = EngineConfig::default().with_overflow_threshold(t);
                run_one(&g, cfg, Bfs::new(src))
                    .expect("bfs")
                    .report
                    .elapsed_ms
            })
            .collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut row = vec![abbrev.to_string()];
        row.extend(times.iter().map(|t| format!("{:.3}", best / t)));
        rows.push(row);
    }
    print_table(
        "Figure 9(a): BFS performance vs overflow threshold (1.0 = best)",
        &header,
        &rows,
    );

    // (b) JIT overhead on SSSP.
    let header = ["Graph", "JIT ms", "Best fixed ms", "Overhead %"]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    let mut sum = 0.0f64;
    for abbrev in GRAPH_ORDER {
        let (_, g) = load(abbrev);
        let src = source(&g);
        let jit = run_one(&g, EngineConfig::default(), Sssp::new(src))
            .expect("jit")
            .report
            .elapsed_ms;
        let mut best = f64::INFINITY;
        for policy in [FilterPolicy::BallotOnly, FilterPolicy::OnlineOnly] {
            if let Ok(r) = run_one(
                &g,
                EngineConfig::default().with_filter(policy),
                Sssp::new(src),
            ) {
                best = best.min(r.report.elapsed_ms);
            }
        }
        let overhead = ((jit / best) - 1.0) * 100.0;
        worst = worst.max(overhead);
        sum += overhead;
        rows.push(vec![
            abbrev.to_string(),
            format!("{jit:.1}"),
            format!("{best:.1}"),
            format!("{overhead:+.2}"),
        ]);
    }
    print_table("Figure 9(b): JIT overhead on SSSP", &header, &rows);
    println!(
        "\nAvg overhead {:+.2}% (paper: 0.02% avg, 2.1% max); worst {worst:+.2}%. \
         Negative values mean JIT beat both fixed policies.",
        sum / GRAPH_ORDER.len() as f64
    );
}
