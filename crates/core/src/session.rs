//! The session API: amortized engine reuse for repeated queries.
//!
//! The one-shot [`crate::engine::Engine`] pays its full setup cost on
//! every call — worker-pool spawn, scratch-arena allocation,
//! degree-balanced destination fences — which is exactly the per-query
//! overhead a service answering many small queries (multi-source SSSP,
//! BFS per user request) cannot afford. This module splits that cost
//! into three lifetimes:
//!
//! * [`Runtime`] — owns the resolved [`EngineConfig`] and the
//!   persistent [`WorkerPool`]. Built once per process/service.
//! * [`BoundGraph`] — [`Runtime::bind`] precomputes the CSR-derived
//!   per-graph state (degree-balanced push shards with chunk/word
//!   aligned partition fences, bitmap word counts) and owns the
//!   reusable scratch arenas. Built once per graph.
//! * [`RunBuilder`] — one query: `bound.run(program).source(v)
//!   .max_iterations(n).observe(hook).execute()`. Costs only the work
//!   of the query itself; every allocation is reused.
//!
//! [`BoundGraph::run_batch`] executes a slice of query seeds over the
//! shared scratch, returning one [`RunResult`] per seed (fail-fast);
//! [`BoundGraph::run_batch_partial`] returns one `Result` per seed, so
//! completed reports survive a failing seed.
//!
//! # Concurrency
//!
//! `Runtime` and `BoundGraph` are `Send + Sync` (compile-time asserted
//! at the bottom of this module): any number of threads may run
//! queries over one bound graph concurrently. The sharing model:
//!
//! * The bind-time artifacts (push fences, grid CSR, bitmap word
//!   count) are immutable after bind and live in an `Arc`-shared core.
//! * Worker pools live in a [`PoolStash`]: each query checks one out
//!   for its duration, so concurrent queries never share a pool, and a
//!   pool poisoned by a contained worker panic is discarded at
//!   check-in (replaced at the next checkout) without touching
//!   in-flight peers.
//! * Scratch arenas live in an [`ArenaPool`] keyed by the program's
//!   metadata `TypeId`: checked out per query, created on a dry stash,
//!   returned at completion (idle inventory capped; see
//!   [`BoundGraph::clear_scratch`]).
//!
//! Concurrent queries remain under the bit-equality contract below —
//! a query's result is independent of what runs beside it
//! (`tests/concurrent_serving.rs`). [`crate::service::QueryPool`]
//! builds a bounded-queue serving layer on top of this.
//!
//! # Determinism
//!
//! Session reuse is covered by the same bit-equality contract as every
//! other host knob (`crates/core/README.md`): a reused `BoundGraph`
//! produces reports **bit-identical** to a fresh engine — identical
//! metadata, activation logs and simulated cycle counts — across the
//! full exec × frontier-repr × metadata-layout matrix
//! (`tests/session_equivalence.rs`). The engine enforces the invariant
//! at every `execute()` entry: all transient scratch is cleared and
//! debug-asserted clean, so one query can never observe a previous
//! query's state.
//!
//! # Example
//!
//! ```
//! use simdx_core::prelude::*;
//! use simdx_graph::{EdgeList, Graph, VertexId, Weight};
//!
//! #[derive(Clone)]
//! struct Levels {
//!     src: VertexId,
//! }
//! impl AccProgram for Levels {
//!     type Meta = u32;
//!     type Update = u32;
//!     fn name(&self) -> &'static str { "levels" }
//!     fn combine_kind(&self) -> CombineKind { CombineKind::Vote }
//!     fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
//!         let mut m = vec![u32::MAX; g.num_vertices() as usize];
//!         m[self.src as usize] = 0;
//!         (m, vec![self.src])
//!     }
//!     fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight,
//!                ms: &u32, md: &u32) -> Option<u32> {
//!         (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
//!     }
//!     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
//!         (u < *c).then_some(u)
//!     }
//! }
//! impl SourcedProgram for Levels {
//!     fn with_source(mut self, src: VertexId) -> Self {
//!         self.src = src;
//!         self
//!     }
//! }
//!
//! let graph = Graph::directed_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//! let runtime = Runtime::new(EngineConfig::unscaled())?;
//! let bound = runtime.bind(&graph);
//!
//! // Repeated queries reuse the pool, scratch and fences.
//! let a = bound.run(Levels { src: 0 }).execute()?;
//! let b = bound.run(Levels { src: 0 }).source(1).execute()?;
//! assert_eq!(a.meta, vec![0, 1, 2, 3]);
//! assert_eq!(b.meta, vec![u32::MAX, 0, 1, 2]);
//!
//! // Or as one batch: one result per seed.
//! let batch = bound.run_batch(Levels { src: 0 }, &[0, 1])?;
//! assert_eq!(batch[0].meta, a.meta);
//! assert_eq!(batch[1].meta, b.meta);
//! # Ok::<(), SimdxError>(())
//! ```

use std::time::Duration;

use crate::sync::Arc;

use crate::acc::{AccProgram, SourcedProgram};
use crate::checkpoint::{RunAborted, RunCheckpoint};
use crate::config::{DegradePolicy, EngineConfig, FrontierRepr, PushStrategy};
use crate::engine::{Engine, SessionCtx};
use crate::error::SimdxError;
use crate::frontier::WORD_BITS;
use crate::grid::GridCsr;
use crate::jit::IterationRecord;
use crate::metrics::RunResult;
use crate::par::{payload_string, WorkerPool};
use crate::pool::{ArenaPool, PoolStash};
use crate::scratch::{IterScratch, PushFences};
use crate::supervise::{AbortReason, CancelToken, Supervisor};
use simdx_graph::csr::Direction;
use simdx_graph::{Graph, VertexId};

/// One entry of [`BoundGraph::run_batch_partial`]'s return value: the
/// seed's completed report, or a boxed [`RunAborted`] carrying that
/// seed's last boundary checkpoint (when one was reached).
pub type SeedOutcome<M> = Result<RunResult<M>, Box<RunAborted<M>>>;

/// Idle scratch arenas retained per metadata type by a
/// [`BoundGraph`]'s arena pool. Bursts of concurrent queries beyond
/// this still run (each creates an arena); only the *idle* inventory
/// is capped, so a long-lived service cannot accumulate dead arenas.
const SCRATCH_ARENAS_PER_TYPE: usize = 8;

/// The long-lived engine runtime: a validated [`EngineConfig`] plus a
/// poison-safe stash of persistent worker pools backing
/// `ExecMode::Parallel`.
///
/// Build one per service (or per configuration under test), then
/// [`bind`](Self::bind) graphs and run queries. `Runtime` is
/// `Send + Sync`: any number of threads may query one runtime
/// concurrently — each query checks a pool out of the stash for its
/// duration (concurrent queries never share a pool), and a pool
/// poisoned by a contained worker panic is discarded at check-in and
/// replaced at the next checkout, so a fault in one query never
/// corrupts an in-flight peer. A lone sequential caller reuses a
/// single pool forever — the pool threads are spawned once, not per
/// query.
pub struct Runtime {
    config: EngineConfig,
    /// Idle worker pools of the resolved width; every query (and the
    /// bind-time grid build) checks one out for its duration.
    pools: PoolStash,
}

impl Runtime {
    /// Creates a runtime: validates the configuration, resolves the
    /// worker count and spawns the first pool (a resolved width of 1
    /// runs serially with no pool at all).
    pub fn new(config: EngineConfig) -> Result<Self, SimdxError> {
        config.validate()?;
        Ok(Self::build(config))
    }

    /// Constructor for an already-validated config: resolves the
    /// worker count and pre-spawns the first pool, so construction
    /// (not the first query) pays the thread-spawn cost.
    fn build(config: EngineConfig) -> Self {
        let pools = PoolStash::new(config.exec.worker_count().max(1));
        drop(pools.checkout());
        Self { config, pools }
    }

    /// Creates a runtime from the default configuration with every
    /// `SIMDX_*` knob parsed fallibly ([`EngineConfig::from_env`]) — a
    /// typo comes back as [`SimdxError::InvalidKnob`], never a panic.
    ///
    /// Unlike `Runtime::new(EngineConfig::default())`, this path reads
    /// the environment *fresh* on every call: knobs set after the
    /// first `EngineConfig::default()` of the process are honored
    /// here, never served stale from the per-process default caches.
    pub fn from_env() -> Result<Self, SimdxError> {
        Ok(Self::build(EngineConfig::from_env()?))
    }

    /// The validated configuration in force for every query.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Resolved host worker count (1 = serial).
    pub fn threads(&self) -> usize {
        self.pools.width()
    }

    /// Binds a graph: precomputes the CSR-derived state every query
    /// needs — degree-balanced push destination shards with their
    /// chunk/word-aligned partition fences (parallel mode), the
    /// destination-bucketed [`GridCsr`] those fences define (parallel
    /// mode under [`PushStrategy::Grid`]) and the bitmap word count —
    /// and allocates the reusable scratch arenas lazily per metadata
    /// type.
    ///
    /// The fence and grid computations are deliberately *eager*: bind
    /// is the amortization point, so the one O(V) degree walk and the
    /// one O(E) bucketing sweep (itself split over the worker pool)
    /// are paid once per graph instead of on some query's first
    /// parallel push. The corner case this trades away — a
    /// parallel-mode bind whose queries never push — costs one extra
    /// sweep, noise next to any engine run (whose `init` alone is
    /// O(V)).
    pub fn bind<'rt, 'g>(&'rt self, graph: &'g Graph) -> BoundGraph<'rt, 'g> {
        self.try_bind(graph)
            .unwrap_or_else(|err| panic!("bind failed: {err}"))
    }

    /// Fallible [`Self::bind`]: a worker panic during the bind-time
    /// grid bucketing sweep comes back as
    /// [`SimdxError::WorkerPanicked`] (and poisons the pool, which the
    /// next bind or run rebuilds) instead of aborting the caller.
    pub fn try_bind<'rt, 'g>(
        &'rt self,
        graph: &'g Graph,
    ) -> Result<BoundGraph<'rt, 'g>, SimdxError> {
        let fences = (self.threads() > 1).then(|| {
            PushFences::compute(
                graph.csr(Direction::Pull),
                self.threads(),
                self.config.frontier,
                self.config.layout,
            )
        });
        // Push always scatters over the out-CSR; the grid buckets
        // exactly those edges by the destination shards the run-time
        // sharding will use, so the two views can never disagree.
        // Deliberately built even under `DirectionPolicy::FixedPull`:
        // the engine consults `AccProgram::direction` *before* the
        // policy (k-Core forces Push unconditionally), so any parallel
        // grid runtime can reach the grid push path regardless of the
        // configured policy.
        let grid = match (&fences, self.config.push) {
            (Some(fences), PushStrategy::Grid) => {
                // A worker panic during the build poisons the
                // checked-out pool; the lease drop discards it.
                let pool = self
                    .pools
                    .checkout()
                    .expect("parallel runtime stashes pools");
                Some(
                    GridCsr::build_with_pool(graph.csr(Direction::Push), &fences.verts, &pool)
                        .map_err(SimdxError::from)?,
                )
            }
            _ => None,
        };
        Ok(BoundGraph {
            runtime: self,
            graph,
            core: Arc::new(BindArtifacts {
                fences,
                grid,
                num_words: (graph.num_vertices() as usize).div_ceil(WORD_BITS),
            }),
            scratch: ArenaPool::new(SCRATCH_ARENAS_PER_TYPE),
        })
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads())
            .field("exec", &self.config.exec)
            .field("frontier", &self.config.frontier)
            .field("layout", &self.config.layout)
            .finish_non_exhaustive()
    }
}

/// The immutable bind-time core of a [`BoundGraph`]: everything every
/// query reads but none mutates, shared via [`Arc`] so serving layers
/// can hold one handle per thread without re-borrowing the
/// `BoundGraph` itself.
struct BindArtifacts {
    /// Bind-time destination-shard fences (parallel mode only): the
    /// degree-balanced, chunk/word-aligned partition of
    /// `metadata_curr` the push kernels shard over.
    fences: Option<PushFences>,
    /// Bind-time destination-bucketed grid CSR (parallel mode under
    /// [`PushStrategy::Grid`]): one sub-CSR per destination shard, so
    /// each push worker traverses only the edges landing in its shard.
    grid: Option<GridCsr>,
    /// `ceil(|V| / 64)` — the frontier-bitmap word count, precomputed
    /// so bitmap-mode scratch is sized before the first query.
    num_words: usize,
}

/// A graph bound to a [`Runtime`]: the immutable bind-time core plus a
/// check-out/check-in pool of reusable scratch arenas. Queries against
/// the same `BoundGraph` reuse every allocation and the runtime's
/// pools — from one thread or many: `BoundGraph` is `Send + Sync`, and
/// concurrent queries stay bit-equal to running them serially.
pub struct BoundGraph<'rt, 'g> {
    runtime: &'rt Runtime,
    graph: &'g Graph,
    /// The `Arc`-shared immutable bind-time artifacts.
    core: Arc<BindArtifacts>,
    /// Idle scratch arenas keyed by the program's metadata `TypeId`;
    /// each query checks one out for its duration.
    scratch: ArenaPool,
}

impl<'rt, 'g> BoundGraph<'rt, 'g> {
    /// The bound graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The owning runtime.
    pub fn runtime(&self) -> &'rt Runtime {
        self.runtime
    }

    /// Number of 64-bit words a frontier bitmap over this graph uses.
    pub fn num_bitmap_words(&self) -> usize {
        self.core.num_words
    }

    /// The bind-time grid CSR, present iff this is a parallel runtime
    /// under [`PushStrategy::Grid`] — exposed so harnesses can report
    /// its memory cost ([`GridCsr::footprint_bytes`]).
    pub fn grid(&self) -> Option<&GridCsr> {
        self.core.grid.as_ref()
    }

    /// Drops every *idle* scratch arena. Arenas checked out by
    /// in-flight queries are unaffected (they re-enter the pool at
    /// completion, up to the per-type cap), so this is safe to call
    /// from a maintenance thread of a live service — e.g. after a
    /// program type stops being queried, to release its dead arenas.
    pub fn clear_scratch(&self) {
        self.scratch.clear();
    }

    /// Idle scratch arenas currently pooled, across all metadata
    /// types. Bounded: at most [`SCRATCH_ARENAS_PER_TYPE`] per type
    /// regardless of how many queries ever ran.
    pub fn idle_scratch_arenas(&self) -> usize {
        self.scratch.idle_count()
    }

    /// Starts building one query. Terminal [`RunBuilder::execute`]
    /// runs it over the session's shared resources.
    pub fn run<P: AccProgram>(&self, program: P) -> RunBuilder<'_, 'rt, 'g, P> {
        RunBuilder {
            bound: self,
            program,
            source: None,
            max_iterations: None,
            observer: None,
            cancel: None,
            deadline: None,
            cycle_budget: None,
        }
    }

    /// Continues an aborted run from its boundary [`RunCheckpoint`],
    /// bit-equal to the run never having been interrupted (identical
    /// metadata, activation logs and simulated cycle counts — the
    /// resume contract, pinned by `tests/properties.rs`).
    ///
    /// The checkpoint is validated against this graph, the program and
    /// the runtime's metadata layout at [`ResumableRunBuilder::execute`]
    /// time; a mismatch comes back as [`SimdxError::InvalidQuery`]
    /// *with the checkpoint handed back* inside the [`RunAborted`], so
    /// a misdirected resume never loses the snapshot. The resumed run
    /// is itself checkpoint-armed: a second abort yields a fresh,
    /// further-along checkpoint.
    ///
    /// Supervision budgets compose naturally: a
    /// [`ResumableRunBuilder::cycle_budget`] on a resumed run is
    /// *additional* simulated cycles on top of the checkpoint's spent
    /// count, and a [`ResumableRunBuilder::deadline`] is measured from
    /// the resumed `execute()` entry.
    ///
    /// The checkpoint need not come from this process: one decoded
    /// from a durable [`crate::persist::CheckpointStore`] blob resumes
    /// identically (the cross-process recovery contract, pinned by
    /// `tests/durable_recovery.rs`); see
    /// [`crate::service::QueryPool::recover`] for the batch form.
    pub fn resume<P: AccProgram>(
        &self,
        program: P,
        checkpoint: RunCheckpoint<P::Meta>,
    ) -> ResumableRunBuilder<'_, 'rt, 'g, P> {
        ResumableRunBuilder {
            inner: self.run(program),
            resume: Some(checkpoint),
        }
    }

    /// Executes one query per seed over the shared scratch, returning
    /// one report per query — bit-identical to running the seeds
    /// through individual [`Self::run`] calls (or fresh engines), just
    /// without any per-query setup. Fails fast on the first seed whose
    /// run fails, discarding the completed reports — use
    /// [`Self::run_batch_partial`] when a typed abort on one seed must
    /// not cost the others' results.
    pub fn run_batch<P: SourcedProgram>(
        &self,
        program: P,
        seeds: &[VertexId],
    ) -> Result<Vec<RunResult<P::Meta>>, SimdxError> {
        let mut scratch = self.checkout_scratch::<P::Meta>();
        let mut out = Vec::with_capacity(seeds.len());
        let mut failed = None;
        for &seed in seeds {
            let supervisor = Supervisor::new(None, None, None);
            match self.execute_query(&program, seed, None, &supervisor, &mut scratch) {
                Ok(result) => out.push(result),
                Err(err) => {
                    failed = Some(err);
                    break;
                }
            }
        }
        self.checkin_scratch(scratch);
        match failed {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }

    /// [`Self::run_batch`] without the fail-fast data loss: one
    /// `Result` per seed, in seed order, over one shared scratch
    /// checkout. A seed that aborts (bad seed, deadline, worker panic)
    /// costs only its own slot; every completed report survives, and
    /// successful entries remain bit-identical to individual
    /// [`Self::run`] calls.
    ///
    /// Checkpointing is armed per seed: an aborted seed's `Err` is a
    /// [`RunAborted`] carrying that seed's last boundary
    /// [`RunCheckpoint`] (if one was reached), so callers can
    /// [`Self::resume`] individual batch members instead of discarding
    /// them.
    pub fn run_batch_partial<P: SourcedProgram>(
        &self,
        program: P,
        seeds: &[VertexId],
    ) -> Vec<SeedOutcome<P::Meta>> {
        let mut scratch = self.checkout_scratch::<P::Meta>();
        let out = seeds
            .iter()
            .map(|&seed| {
                let supervisor = Supervisor::new(None, None, None);
                let mut slot = None;
                self.execute_query_resumable(
                    &program,
                    seed,
                    None,
                    &supervisor,
                    &mut scratch,
                    None,
                    &mut slot,
                )
                .map_err(|error| {
                    Box::new(RunAborted {
                        error,
                        checkpoint: slot.take(),
                    })
                })
            })
            .collect();
        self.checkin_scratch(scratch);
        out
    }

    /// Checks out (or creates, on a dry stash) a scratch arena for
    /// metadata type `M`, pre-sized for this graph.
    pub(crate) fn checkout_scratch<M: Send + 'static>(&self) -> IterScratch<M> {
        self.scratch
            .checkout::<IterScratch<M>>()
            .unwrap_or_else(|| {
                let mut scratch = IterScratch::<M>::new(self.runtime.threads());
                if self.runtime.config.frontier == FrontierRepr::Bitmap {
                    // Pre-size the reusable bitmaps to the bind-time word
                    // count so the arena's first query allocates nothing
                    // mid-run either.
                    let n = self.graph.num_vertices() as usize;
                    scratch.changed_bits.reset(n);
                    scratch.cand_bits.reset(n);
                }
                scratch
            })
    }

    /// Returns a scratch arena to the pool for the next query (idle
    /// inventory capped per type).
    pub(crate) fn checkin_scratch<M: Send + 'static>(&self, scratch: IterScratch<M>) {
        self.scratch.checkin(scratch);
    }

    /// One sourced query over caller-held scratch: seed validation,
    /// supervision and the full execute path (including degrade
    /// retry). The batch entry points and the serving layer
    /// ([`crate::service::QueryPool`]) drive this directly so one
    /// scratch checkout amortizes over many queries.
    pub(crate) fn execute_query<P: SourcedProgram>(
        &self,
        program: &P,
        seed: VertexId,
        max_iterations: Option<u32>,
        supervisor: &Supervisor,
        scratch: &mut IterScratch<P::Meta>,
    ) -> Result<RunResult<P::Meta>, SimdxError> {
        let n = self.graph.num_vertices();
        if seed >= n {
            return Err(SimdxError::InvalidQuery {
                reason: format!("source vertex {seed} out of range for a graph with {n} vertices"),
            });
        }
        let program = program.clone().with_source(seed);
        let max_iterations = max_iterations.unwrap_or(self.runtime.config.max_iterations);
        self.execute_with(
            &program,
            max_iterations,
            None,
            supervisor,
            scratch,
            None,
            None,
        )
    }

    /// [`Self::execute_query`] with the checkpoint machinery exposed:
    /// `resume` restores a prior boundary snapshot (the run continues
    /// bit-equally from it), and `slot` is armed so every iteration
    /// boundary overwrites it — the batch entry points and the serving
    /// layer's retry loop ([`crate::service::RetryPolicy`]) drive
    /// this. The slot lives in the *caller's* frame, outside the panic
    /// guard, so it survives a contained worker panic.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_query_resumable<P: SourcedProgram>(
        &self,
        program: &P,
        seed: VertexId,
        max_iterations: Option<u32>,
        supervisor: &Supervisor,
        scratch: &mut IterScratch<P::Meta>,
        resume: Option<RunCheckpoint<P::Meta>>,
        slot: &mut Option<RunCheckpoint<P::Meta>>,
    ) -> Result<RunResult<P::Meta>, SimdxError> {
        let n = self.graph.num_vertices();
        if seed >= n {
            return Err(SimdxError::InvalidQuery {
                reason: format!("source vertex {seed} out of range for a graph with {n} vertices"),
            });
        }
        let program = program.clone().with_source(seed);
        let max_iterations = max_iterations.unwrap_or(self.runtime.config.max_iterations);
        self.execute_with(
            &program,
            max_iterations,
            None,
            supervisor,
            scratch,
            resume,
            Some(slot),
        )
    }

    /// The shared execute path: checks a scratch arena out of the pool
    /// for the duration of the query.
    fn execute_inner<P: AccProgram>(
        &self,
        program: &P,
        max_iterations: u32,
        observer: Option<&mut (dyn FnMut(&IterationRecord) + '_)>,
        supervisor: &Supervisor,
    ) -> Result<RunResult<P::Meta>, SimdxError> {
        let mut scratch = self.checkout_scratch::<P::Meta>();
        let result = self.execute_with(
            program,
            max_iterations,
            observer,
            supervisor,
            &mut scratch,
            None,
            None,
        );
        self.checkin_scratch(scratch);
        result
    }

    /// Runs one query over caller-held scratch: checks a worker pool
    /// out of the runtime's stash for the first attempt (a panicked
    /// attempt poisons that pool, so the lease drop discards it
    /// without touching concurrent queries' pools), then applies the
    /// degrade policy.
    #[allow(clippy::too_many_arguments)]
    fn execute_with<P: AccProgram>(
        &self,
        program: &P,
        max_iterations: u32,
        mut observer: Option<&mut (dyn FnMut(&IterationRecord) + '_)>,
        supervisor: &Supervisor,
        scratch: &mut IterScratch<P::Meta>,
        resume: Option<RunCheckpoint<P::Meta>>,
        mut ckpt: Option<&mut Option<RunCheckpoint<P::Meta>>>,
    ) -> Result<RunResult<P::Meta>, SimdxError> {
        let first = {
            let pool = self.runtime.pools.checkout();
            Self::run_once(
                program,
                self.graph,
                &self.runtime.config,
                pool.as_deref(),
                scratch,
                self.core.fences.as_ref(),
                self.core.grid.as_ref(),
                max_iterations,
                match observer {
                    Some(ref mut hook) => Some(&mut **hook),
                    None => None,
                },
                supervisor,
                resume.clone(),
                ckpt.as_deref_mut(),
            )
        };
        match first {
            Err(SimdxError::WorkerPanicked { .. })
                if self.runtime.config.degrade == DegradePolicy::RetrySerial
                    && self.runtime.threads() > 1 =>
            {
                // Opt-in degrade: one serial retry of the same query
                // over the same (reset-at-entry) scratch — no pool, no
                // fences, no grid — flagged in the report so callers
                // can see the query survived a worker fault. The
                // poisoned pool was already discarded by its lease
                // drop; the next checkout spawns a replacement. The
                // checkpoint slot is deliberately *not* cleared: the
                // panicked attempt's last boundary snapshot stays
                // valid, and the retry overwrites it at its own first
                // boundary.
                let mut result = Self::run_once(
                    program,
                    self.graph,
                    &self.runtime.config,
                    None,
                    scratch,
                    None,
                    None,
                    max_iterations,
                    match observer {
                        Some(ref mut hook) => Some(&mut **hook),
                        None => None,
                    },
                    supervisor,
                    resume,
                    ckpt,
                )?;
                result.report.aborted = Some(AbortReason::WorkerPanic);
                Ok(result)
            }
            other => other,
        }
    }

    /// One engine attempt with panic containment: any panic escaping
    /// the run — a contained pool panic is already a typed error, so
    /// this catches the *host-side* ones (serial kernels, filters,
    /// scratch reset) — comes back as [`SimdxError::WorkerPanicked`]
    /// with worker 0 (the submitting thread).
    #[allow(clippy::too_many_arguments)]
    fn run_once<P: AccProgram>(
        program: &P,
        graph: &Graph,
        config: &EngineConfig,
        pool: Option<&WorkerPool>,
        scratch: &mut IterScratch<P::Meta>,
        fences: Option<&PushFences>,
        grid: Option<&GridCsr>,
        max_iterations: u32,
        observer: Option<&mut (dyn FnMut(&IterationRecord) + '_)>,
        supervisor: &Supervisor,
        resume: Option<RunCheckpoint<P::Meta>>,
        checkpoint: Option<&mut Option<RunCheckpoint<P::Meta>>>,
    ) -> Result<RunResult<P::Meta>, SimdxError> {
        // `checkpoint` borrows a slot in a frame *outside* this catch:
        // when the attempt panics, the slot still holds the last
        // boundary snapshot the engine wrote before the fault.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Engine::run_session(
                program,
                graph,
                config,
                SessionCtx {
                    pool,
                    scratch,
                    fences,
                    grid,
                    max_iterations,
                    observer,
                    supervisor,
                    checkpoint,
                    resume,
                },
            )
        }));
        attempt.unwrap_or_else(|payload| {
            Err(SimdxError::WorkerPanicked {
                worker: 0,
                payload: payload_string(&*payload),
            })
        })
    }
}

impl std::fmt::Debug for BoundGraph<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundGraph")
            .field("num_vertices", &self.graph.num_vertices())
            .field("num_edges", &self.graph.num_edges())
            .field("runtime", self.runtime)
            .finish_non_exhaustive()
    }
}

// The ISSUE 7 contract, proved at compile time: the runtime and the
// bound graph (whose core is the `Arc`-shared bind artifacts) are
// shareable across serving threads. Removing this block does not make
// the types `!Sync` — it only removes the proof; conversely, any
// future field that reintroduces thread confinement (a `RefCell`, an
// `Rc`) fails compilation here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<BoundGraph<'static, 'static>>();
};

/// One query under construction against a [`BoundGraph`]; terminal
/// [`Self::execute`] runs it. Replaces the positional
/// `Engine::new(program, graph, config)` constructor.
pub struct RunBuilder<'b, 'rt, 'g, P: AccProgram> {
    bound: &'b BoundGraph<'rt, 'g>,
    program: P,
    source: Option<VertexId>,
    max_iterations: Option<u32>,
    #[allow(clippy::type_complexity)]
    observer: Option<Box<dyn FnMut(&IterationRecord) + 'b>>,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
    cycle_budget: Option<u64>,
}

impl<'b, 'rt, 'g, P: AccProgram> RunBuilder<'b, 'rt, 'g, P> {
    /// Overrides the config's iteration cap for this query only.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Attaches a shareable cancellation token: once
    /// [`CancelToken::cancel`] is called (from any thread), the run
    /// aborts at the next supervision check with
    /// [`SimdxError::Cancelled`] carrying the partial progress.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps this query's wall-clock time, measured from `execute()`
    /// entry. Exceeding it aborts with
    /// [`SimdxError::DeadlineExceeded`].
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Caps this query's *simulated* GPU cycles, checked at iteration
    /// boundaries. Exceeding it aborts with
    /// [`SimdxError::BudgetExhausted`]. Unlike the wall-clock knobs,
    /// the budget is deterministic: the same query always aborts at
    /// the same boundary.
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Installs a per-iteration observer, called with each iteration's
    /// [`IterationRecord`] as soon as it is logged — live progress for
    /// long queries without waiting for the final report. Re-entrant
    /// queries from inside the hook are not supported (the session's
    /// scratch is checked out for the duration of the run).
    pub fn observe(mut self, hook: impl FnMut(&IterationRecord) + 'b) -> Self {
        self.observer = Some(Box::new(hook));
        self
    }

    /// Opts this query into boundary checkpointing: the engine
    /// snapshots the run state at the top of every iteration, and any
    /// abort comes back as a [`RunAborted`] carrying the last snapshot
    /// — resumable via [`BoundGraph::resume`]. The plain
    /// [`Self::execute`] path is untouched (zero capture overhead);
    /// opting in costs one metadata-store copy per iteration, pinned
    /// ≤ 5% by the `resilience` snapshot group.
    pub fn checkpoint_on_abort(self) -> ResumableRunBuilder<'b, 'rt, 'g, P> {
        ResumableRunBuilder {
            inner: self,
            resume: None,
        }
    }

    /// Executes the query over the session's shared pool and scratch,
    /// returning the final metadata and run report.
    pub fn execute(mut self) -> Result<RunResult<P::Meta>, SimdxError> {
        if let Some(src) = self.source {
            let n = self.bound.graph.num_vertices();
            if src >= n {
                return Err(SimdxError::InvalidQuery {
                    reason: format!(
                        "source vertex {src} out of range for a graph with {n} vertices"
                    ),
                });
            }
        }
        let max_iterations = self
            .max_iterations
            .unwrap_or(self.bound.runtime.config.max_iterations);
        let supervisor = Supervisor::new(self.cancel.clone(), self.deadline, self.cycle_budget);
        let observer = self
            .observer
            .as_mut()
            .map(|hook| &mut **hook as &mut dyn FnMut(&IterationRecord));
        self.bound
            .execute_inner(&self.program, max_iterations, observer, &supervisor)
    }
}

impl<P: SourcedProgram> RunBuilder<'_, '_, '_, P> {
    /// Re-roots the query at `src`. Validated against the bound
    /// graph's vertex count at [`Self::execute`] time — an
    /// out-of-range seed is a typed [`SimdxError::InvalidQuery`], not
    /// a panic.
    pub fn source(mut self, src: VertexId) -> Self {
        self.program = self.program.with_source(src);
        self.source = Some(src);
        self
    }
}

/// A checkpoint-armed query: either a fresh run that opted in via
/// [`RunBuilder::checkpoint_on_abort`], or a continuation built by
/// [`BoundGraph::resume`]. Terminal [`Self::execute`] returns aborts
/// as [`RunAborted`] (boxed — the snapshot inside is as big as the
/// metadata store) so the caller can resume instead of restarting.
pub struct ResumableRunBuilder<'b, 'rt, 'g, P: AccProgram> {
    inner: RunBuilder<'b, 'rt, 'g, P>,
    resume: Option<RunCheckpoint<P::Meta>>,
}

impl<'b, 'rt, 'g, P: AccProgram> ResumableRunBuilder<'b, 'rt, 'g, P> {
    /// Overrides the config's iteration cap for this query only. On a
    /// resumed run the cap counts *total* iterations from the original
    /// start — the same meaning the uninterrupted run gives it.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.inner = self.inner.max_iterations(n);
        self
    }

    /// Attaches a shareable cancellation token
    /// ([`RunBuilder::cancel_token`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.inner = self.inner.cancel_token(token);
        self
    }

    /// Caps this attempt's wall-clock time, measured from `execute()`
    /// entry ([`RunBuilder::deadline`]) — a resumed attempt gets a
    /// fresh allowance.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.inner = self.inner.deadline(limit);
        self
    }

    /// Caps this attempt's *additional* simulated GPU cycles. On a
    /// fresh run this is [`RunBuilder::cycle_budget`]; on a resumed
    /// run the allowance is granted on top of the checkpoint's
    /// already-spent cycles (the supervisor sees their sum), so
    /// resuming with the same budget makes forward progress instead of
    /// re-tripping at the same boundary.
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.inner = self.inner.cycle_budget(cycles);
        self
    }

    /// Installs a per-iteration observer ([`RunBuilder::observe`]).
    /// On a resumed run the hook fires from the checkpoint's iteration
    /// onward — completed iterations are not replayed.
    pub fn observe(mut self, hook: impl FnMut(&IterationRecord) + 'b) -> Self {
        self.inner = self.inner.observe(hook);
        self
    }

    /// Executes the query with boundary checkpointing armed. Success
    /// is the ordinary [`RunResult`]; any abort comes back as a
    /// [`RunAborted`] whose `checkpoint` holds the last boundary
    /// snapshot (or the validated-but-unusable resume checkpoint when
    /// validation itself failed, so the snapshot is never lost).
    #[allow(clippy::result_large_err)] // boxed: the Err is pointer-sized
    pub fn execute(mut self) -> Result<RunResult<P::Meta>, Box<RunAborted<P::Meta>>> {
        // Validate a resume checkpoint against the graph, program and
        // layout before touching any run state; hand it back on
        // failure.
        if let Some(cp) = &self.resume {
            let n = self.inner.bound.graph.num_vertices();
            let layout = self.inner.bound.runtime.config.layout;
            let mismatch = if cp.num_vertices != n {
                Some(format!(
                    "checkpoint was captured on a graph with {} vertices, \
                     this graph has {n}",
                    cp.num_vertices
                ))
            } else if cp.algorithm != self.inner.program.name() {
                Some(format!(
                    "checkpoint belongs to algorithm `{}`, not `{}`",
                    cp.algorithm,
                    self.inner.program.name()
                ))
            } else if cp.meta.layout() != layout {
                Some(format!(
                    "checkpoint uses metadata layout {:?}, this runtime uses {layout:?}",
                    cp.meta.layout()
                ))
            } else {
                None
            };
            if let Some(reason) = mismatch {
                return Err(Box::new(RunAborted {
                    error: SimdxError::InvalidQuery { reason },
                    checkpoint: self.resume,
                }));
            }
        }
        if let Some(src) = self.inner.source {
            let n = self.inner.bound.graph.num_vertices();
            if src >= n {
                return Err(Box::new(RunAborted {
                    error: SimdxError::InvalidQuery {
                        reason: format!(
                            "source vertex {src} out of range for a graph with {n} vertices"
                        ),
                    },
                    checkpoint: self.resume,
                }));
            }
        }
        let bound = self.inner.bound;
        let max_iterations = self
            .inner
            .max_iterations
            .unwrap_or(bound.runtime.config.max_iterations);
        // A resumed run's cycle budget is *relative*: grant it on top
        // of the cycles the checkpoint already spent, so the restored
        // counters don't instantly re-trip the supervisor.
        let cycle_budget = self.inner.cycle_budget.map(|budget| {
            budget.saturating_add(self.resume.as_ref().map_or(0, RunCheckpoint::cycles))
        });
        let supervisor =
            Supervisor::new(self.inner.cancel.clone(), self.inner.deadline, cycle_budget);
        let observer = self
            .inner
            .observer
            .as_mut()
            .map(|hook| &mut **hook as &mut dyn FnMut(&IterationRecord));
        // The slot outlives the panic guard inside `run_once`: a
        // contained panic still returns the last boundary snapshot.
        let mut slot = None;
        let mut scratch = bound.checkout_scratch::<P::Meta>();
        let result = bound.execute_with(
            &self.inner.program,
            max_iterations,
            observer,
            &supervisor,
            &mut scratch,
            self.resume,
            Some(&mut slot),
        );
        bound.checkin_scratch(scratch);
        result.map_err(|error| {
            Box::new(RunAborted {
                error,
                checkpoint: slot,
            })
        })
    }
}

impl<P: SourcedProgram> ResumableRunBuilder<'_, '_, '_, P> {
    /// Re-roots the query at `src` ([`RunBuilder::source`]). Only
    /// meaningful for fresh checkpoint-armed runs: a resumed run's
    /// state already encodes its source.
    pub fn source(mut self, src: VertexId) -> Self {
        self.inner = self.inner.source(src);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CombineKind;
    use crate::config::{DirectionPolicy, ExecMode, FilterPolicy};
    use simdx_graph::{EdgeList, Weight};

    /// The engine-test "levels" vote program, with a seed hook.
    #[derive(Clone)]
    struct Levels {
        src: VertexId,
    }

    impl AccProgram for Levels {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "levels"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Vote
        }

        fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            let mut meta = vec![u32::MAX; g.num_vertices() as usize];
            meta[self.src as usize] = 0;
            (meta, vec![self.src])
        }

        fn compute(
            &self,
            _src: VertexId,
            _dst: VertexId,
            _w: Weight,
            m_src: &u32,
            m_dst: &u32,
        ) -> Option<u32> {
            (*m_src != u32::MAX && *m_dst == u32::MAX).then(|| m_src + 1)
        }

        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
            (update < *current).then_some(update)
        }

        fn pull_candidate(&self, _v: VertexId, meta: &u32) -> bool {
            *meta == u32::MAX
        }
    }

    impl SourcedProgram for Levels {
        fn with_source(mut self, src: VertexId) -> Self {
            self.src = src;
            self
        }
    }

    /// A rank-sum aggregation program over `f32` metadata, used to
    /// exercise the per-metadata-type scratch cache.
    #[derive(Clone)]
    struct Mass;

    impl AccProgram for Mass {
        type Meta = f32;
        type Update = f32;

        fn name(&self) -> &'static str {
            "mass"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Aggregation
        }

        fn init(&self, g: &Graph) -> (Vec<f32>, Vec<VertexId>) {
            let mut meta = vec![0.0; g.num_vertices() as usize];
            meta[0] = 1.0;
            (meta, vec![0])
        }

        fn compute(
            &self,
            _src: VertexId,
            _dst: VertexId,
            _w: Weight,
            m_src: &f32,
            _m_dst: &f32,
        ) -> Option<f32> {
            (*m_src > 0.0).then_some(*m_src * 0.5)
        }

        fn combine(&self, a: f32, b: f32) -> f32 {
            a + b
        }

        fn apply(&self, _v: VertexId, current: &f32, update: f32) -> Option<f32> {
            (*current == 0.0).then_some(update)
        }

        fn converged(&self, iteration: u32, _frontier_len: u64, _meta: &[f32]) -> bool {
            iteration >= 8
        }
    }

    fn path_graph(n: u32) -> Graph {
        Graph::undirected_from_edges(EdgeList::from_pairs(
            (0..n - 1).map(|i| (i, i + 1)).collect(),
        ))
    }

    #[test]
    fn bound_graph_reuse_is_bit_equal_to_fresh_runs() {
        let g = path_graph(200);
        for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
            let cfg = EngineConfig::unscaled().with_exec(exec);
            let runtime = Runtime::new(cfg.clone()).expect("runtime");
            let bound = runtime.bind(&g);
            for src in [0u32, 7, 150] {
                let reused = bound
                    .run(Levels { src: 0 })
                    .source(src)
                    .execute()
                    .expect("reused run");
                let fresh_rt = Runtime::new(cfg.clone()).expect("runtime");
                let fresh = fresh_rt
                    .bind(&g)
                    .run(Levels { src })
                    .execute()
                    .expect("fresh run");
                assert_eq!(reused.meta, fresh.meta, "src {src}: metadata");
                assert_eq!(reused.report.log, fresh.report.log, "src {src}: log");
                assert_eq!(reused.report.stats, fresh.report.stats, "src {src}: stats");
            }
        }
    }

    #[test]
    fn run_batch_matches_per_query_loop() {
        let g = path_graph(128);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let seeds = [3u32, 64, 3, 127];
        let batch = bound.run_batch(Levels { src: 0 }, &seeds).expect("batch");
        assert_eq!(batch.len(), seeds.len());
        for (seed, got) in seeds.iter().zip(&batch) {
            let single = bound
                .run(Levels { src: *seed })
                .execute()
                .expect("single run");
            assert_eq!(got.meta, single.meta, "seed {seed}");
            assert_eq!(got.report.stats, single.report.stats, "seed {seed}");
        }
    }

    #[test]
    fn interleaved_metadata_types_keep_separate_scratch() {
        let g = path_graph(96);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let levels_a = bound.run(Levels { src: 0 }).execute().expect("levels");
        let mass_a = bound.run(Mass).execute().expect("mass");
        let levels_b = bound.run(Levels { src: 0 }).execute().expect("levels");
        let mass_b = bound.run(Mass).execute().expect("mass");
        assert_eq!(levels_a.meta, levels_b.meta);
        assert_eq!(levels_a.report.stats, levels_b.report.stats);
        assert_eq!(mass_a.meta, mass_b.meta);
        assert_eq!(mass_a.report.stats, mass_b.report.stats);
    }

    #[test]
    fn builder_max_iterations_overrides_config() {
        let g = path_graph(50);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let err = bound
            .run(Levels { src: 0 })
            .max_iterations(3)
            .execute()
            .expect_err("capped run");
        assert_eq!(err, SimdxError::IterationLimit { max_iterations: 3 });
        // The override is per query: the next run uses the config cap.
        bound
            .run(Levels { src: 0 })
            .execute()
            .expect("uncapped run");
    }

    #[test]
    fn observer_sees_every_iteration_in_order() {
        let g = path_graph(20);
        let runtime =
            Runtime::new(EngineConfig::unscaled().with_direction(DirectionPolicy::FixedPush))
                .expect("runtime");
        let bound = runtime.bind(&g);
        let mut seen = Vec::new();
        let r = bound
            .run(Levels { src: 0 })
            .observe(|rec| seen.push((rec.iteration, rec.frontier_len)))
            .execute()
            .expect("observed run");
        assert_eq!(seen.len() as u32, r.report.iterations);
        for (i, (iter, len)) in seen.iter().enumerate() {
            assert_eq!(*iter, i as u32);
            assert_eq!(*len, 1);
        }
    }

    #[test]
    fn out_of_range_source_is_a_typed_error() {
        let g = path_graph(10);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let err = bound
            .run(Levels { src: 0 })
            .source(10)
            .execute()
            .expect_err("out of range");
        assert!(matches!(err, SimdxError::InvalidQuery { .. }));
        let err = bound
            .run_batch(Levels { src: 0 }, &[0, 99])
            .expect_err("bad batch seed");
        assert!(matches!(err, SimdxError::InvalidQuery { .. }));
    }

    #[test]
    fn invalid_config_is_rejected_at_runtime_construction() {
        let mut cfg = EngineConfig::unscaled();
        cfg.threads_per_cta = 0;
        assert!(matches!(
            Runtime::new(cfg),
            Err(SimdxError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn reuse_after_failed_run_stays_clean() {
        // An error exit leaves mid-run state in the scratch; the next
        // query must still see a clean session (reset at entry).
        let g = path_graph(50);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let err = bound
            .run(Levels { src: 0 })
            .max_iterations(2)
            .execute()
            .expect_err("capped");
        assert_eq!(err, SimdxError::IterationLimit { max_iterations: 2 });
        let ok = bound.run(Levels { src: 0 }).execute().expect("clean rerun");
        let fresh_rt = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let fresh = fresh_rt
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect("fresh");
        assert_eq!(ok.meta, fresh.meta);
        assert_eq!(ok.report.stats, fresh.report.stats);
    }

    #[test]
    fn overflow_error_carries_through_the_session_api() {
        let leaves = 10_000u32;
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            (1..=leaves).map(|i| (0, i)).collect(),
        ));
        let cfg = EngineConfig::unscaled()
            .with_filter(FilterPolicy::OnlineOnly)
            .with_direction(DirectionPolicy::FixedPush);
        let runtime = Runtime::new(cfg).expect("runtime");
        let err = runtime
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect_err("online overflow");
        assert_eq!(err, SimdxError::OnlineOverflow { iteration: 0 });
    }

    #[test]
    fn bind_precomputes_bitmap_word_count() {
        let g = path_graph(130);
        let runtime = Runtime::new(EngineConfig::unscaled().bitmap()).expect("runtime");
        let bound = runtime.bind(&g);
        assert_eq!(bound.num_bitmap_words(), 130usize.div_ceil(64));
        assert_eq!(bound.graph().num_vertices(), 130);
        assert_eq!(bound.runtime().threads(), 1);
    }

    #[test]
    fn precancelled_token_aborts_before_the_first_iteration() {
        let g = path_graph(64);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let token = CancelToken::new();
        token.cancel();
        let err = bound
            .run(Levels { src: 0 })
            .cancel_token(token)
            .execute()
            .expect_err("cancelled");
        match err {
            SimdxError::Cancelled { progress } => {
                assert_eq!(progress.iterations, 0);
                assert_eq!(progress.edges_examined, 0);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The session stays reusable and bit-equal after the abort.
        let ok = bound.run(Levels { src: 0 }).execute().expect("clean rerun");
        let fresh_rt = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let fresh = fresh_rt
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect("fresh");
        assert_eq!(ok.meta, fresh.meta);
        assert_eq!(ok.report.stats, fresh.report.stats);
        assert_eq!(ok.report.aborted, None);
    }

    #[test]
    fn zero_deadline_aborts_with_typed_error() {
        let g = path_graph(64);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let err = bound
            .run(Levels { src: 0 })
            .deadline(Duration::ZERO)
            .execute()
            .expect_err("deadline");
        assert!(matches!(err, SimdxError::DeadlineExceeded { .. }));
        bound.run(Levels { src: 0 }).execute().expect("clean rerun");
    }

    #[test]
    fn cycle_budget_aborts_deterministically_mid_run() {
        let g = path_graph(200);
        for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
            let runtime = Runtime::new(EngineConfig::unscaled().with_exec(exec)).expect("runtime");
            let bound = runtime.bind(&g);
            let run_budgeted = || {
                bound
                    .run(Levels { src: 0 })
                    .cycle_budget(1)
                    .execute()
                    .expect_err("budget")
            };
            let (a, b) = (run_budgeted(), run_budgeted());
            // Budget checks consume only the deterministic simulated
            // cycle count, so the abort point is reproducible (the
            // progress's wall-clock `elapsed` is excluded: it is the
            // one non-deterministic field).
            match (a, b) {
                (
                    SimdxError::BudgetExhausted {
                        budget: ba,
                        progress: pa,
                    },
                    SimdxError::BudgetExhausted {
                        budget: bb,
                        progress: pb,
                    },
                ) => {
                    assert_eq!((ba, bb), (1, 1));
                    assert_eq!(pa.iterations, pb.iterations);
                    assert_eq!(pa.edges_examined, pb.edges_examined);
                }
                other => panic!("expected two BudgetExhausted aborts, got {other:?}"),
            }
            bound.run(Levels { src: 0 }).execute().expect("clean rerun");
        }
    }

    #[test]
    fn successful_runs_report_supervision_fields() {
        let g = path_graph(32);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let plain = bound.run(Levels { src: 0 }).execute().expect("plain");
        assert_eq!(plain.report.aborted, None);
        assert_eq!(
            plain.report.supervision_checks, 0,
            "unsupervised runs never poll"
        );
        let supervised = bound
            .run(Levels { src: 0 })
            .deadline(Duration::from_secs(3600))
            .execute()
            .expect("supervised");
        assert_eq!(supervised.report.aborted, None);
        assert!(supervised.report.supervision_checks > 0);
        // Supervision is host-side only: results stay bit-equal.
        assert_eq!(plain.meta, supervised.meta);
        assert_eq!(plain.report.stats, supervised.report.stats);
    }

    /// A levels program that panics exactly once (shared flag), to
    /// model a transient worker fault without the fault-inject feature.
    #[derive(Clone)]
    struct PanicOnce {
        inner: Levels,
        armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl AccProgram for PanicOnce {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "panic-once"
        }

        fn combine_kind(&self) -> CombineKind {
            self.inner.combine_kind()
        }

        fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            self.inner.init(g)
        }

        fn compute(
            &self,
            src: VertexId,
            dst: VertexId,
            w: Weight,
            m_src: &u32,
            m_dst: &u32,
        ) -> Option<u32> {
            if self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                panic!("transient worker fault");
            }
            self.inner.compute(src, dst, w, m_src, m_dst)
        }

        fn combine(&self, a: u32, b: u32) -> u32 {
            self.inner.combine(a, b)
        }

        fn apply(&self, v: VertexId, current: &u32, update: u32) -> Option<u32> {
            self.inner.apply(v, current, update)
        }

        fn pull_candidate(&self, v: VertexId, meta: &u32) -> bool {
            self.inner.pull_candidate(v, meta)
        }
    }

    #[test]
    fn degrade_retry_recovers_from_a_transient_worker_panic() {
        let g = path_graph(150);
        let armed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let program = PanicOnce {
            inner: Levels { src: 0 },
            armed: armed.clone(),
        };
        let cfg = EngineConfig::unscaled()
            .with_exec(ExecMode::Parallel { threads: 3 })
            .degrade_serial();
        let runtime = Runtime::new(cfg.clone()).expect("runtime");
        let bound = runtime.bind(&g);
        let recovered = bound.run(program.clone()).execute().expect("retried run");
        assert!(
            !armed.load(std::sync::atomic::Ordering::SeqCst),
            "fault fired"
        );
        assert_eq!(recovered.report.aborted, Some(AbortReason::WorkerPanic));
        // The retry ran serially over the reset scratch: bit-equal to
        // a clean serial baseline.
        let serial_rt = Runtime::new(EngineConfig::unscaled()).expect("serial runtime");
        let baseline = serial_rt
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect("serial baseline");
        assert_eq!(recovered.meta, baseline.meta);
        assert_eq!(recovered.report.stats, baseline.report.stats);
        // The poisoned pool is rebuilt transparently: the next query
        // runs parallel again and matches the parallel baseline.
        let next = bound.run(program).execute().expect("rebuilt pool run");
        assert_eq!(next.report.aborted, None);
        let parallel_rt = Runtime::new(cfg).expect("parallel runtime");
        let parallel = parallel_rt
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect("parallel baseline");
        assert_eq!(next.meta, parallel.meta);
        assert_eq!(next.report.stats, parallel.report.stats);
    }

    #[test]
    fn without_degrade_policy_a_worker_panic_is_a_typed_error() {
        let g = path_graph(150);
        let armed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let program = PanicOnce {
            inner: Levels { src: 0 },
            armed,
        };
        let cfg = EngineConfig::unscaled().with_exec(ExecMode::Parallel { threads: 3 });
        let runtime = Runtime::new(cfg).expect("runtime");
        let bound = runtime.bind(&g);
        let err = bound.run(program.clone()).execute().expect_err("contained");
        match err {
            SimdxError::WorkerPanicked { payload, .. } => {
                assert!(
                    payload.contains("transient worker fault"),
                    "payload: {payload}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Pool rebuilt on the next run; the disarmed program succeeds.
        bound.run(program).execute().expect("recovered run");
    }

    #[test]
    fn run_batch_partial_preserves_completed_reports() {
        let g = path_graph(128);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let seeds = [3u32, 999, 64];
        // The fail-fast wrapper loses seed 3's report to seed 999...
        assert!(matches!(
            bound.run_batch(Levels { src: 0 }, &seeds),
            Err(SimdxError::InvalidQuery { .. })
        ));
        // ...the partial form returns every slot. The bad seed aborted
        // before any boundary, so its `RunAborted` carries no
        // checkpoint.
        let partial = bound.run_batch_partial(Levels { src: 0 }, &seeds);
        assert_eq!(partial.len(), seeds.len());
        match &partial[1] {
            Err(aborted) => {
                assert!(matches!(aborted.error, SimdxError::InvalidQuery { .. }));
                assert!(aborted.checkpoint.is_none());
            }
            Ok(_) => panic!("the bad seed must abort"),
        }
        for idx in [0usize, 2] {
            let got = partial[idx].as_ref().expect("good seed");
            let single = bound
                .run(Levels { src: seeds[idx] })
                .execute()
                .expect("single run");
            assert_eq!(got.meta, single.meta, "seed {}", seeds[idx]);
            assert_eq!(got.report.stats, single.report.stats, "seed {}", seeds[idx]);
        }
    }

    #[test]
    fn arming_checkpoints_does_not_change_results() {
        let g = path_graph(100);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let plain = bound.run(Levels { src: 0 }).execute().expect("plain");
        let armed = bound
            .run(Levels { src: 0 })
            .checkpoint_on_abort()
            .execute()
            .expect("armed");
        assert_eq!(plain.meta, armed.meta);
        assert_eq!(plain.report.log, armed.report.log);
        assert_eq!(plain.report.stats, armed.report.stats);
    }

    #[test]
    fn checkpointed_abort_resumes_bit_equal_to_uninterrupted() {
        let g = path_graph(200);
        for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
            let runtime = Runtime::new(EngineConfig::unscaled().with_exec(exec)).expect("runtime");
            let bound = runtime.bind(&g);
            let baseline = bound.run(Levels { src: 0 }).execute().expect("baseline");
            let aborted = bound
                .run(Levels { src: 0 })
                .max_iterations(3)
                .checkpoint_on_abort()
                .execute()
                .expect_err("capped");
            assert_eq!(
                aborted.error,
                SimdxError::IterationLimit { max_iterations: 3 }
            );
            let cp = aborted.checkpoint.expect("boundary reached");
            assert_eq!(cp.iteration(), 3, "limit trips at the capped boundary");
            let resumed = bound
                .resume(Levels { src: 0 }, cp)
                .execute()
                .expect("resumed");
            assert_eq!(resumed.meta, baseline.meta);
            assert_eq!(resumed.report.log, baseline.report.log);
            assert_eq!(resumed.report.stats, baseline.report.stats);
            assert_eq!(resumed.report.iterations, baseline.report.iterations);
            assert_eq!(
                resumed.report.edges_examined,
                baseline.report.edges_examined
            );
        }
    }

    #[test]
    fn mismatched_resume_hands_the_checkpoint_back() {
        let g = path_graph(64);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let aborted = bound
            .run(Levels { src: 0 })
            .max_iterations(2)
            .checkpoint_on_abort()
            .execute()
            .expect_err("capped");
        let cp = aborted.checkpoint.expect("checkpoint");
        // Resuming against the wrong graph is a typed error that
        // returns the snapshot instead of losing it.
        let other = path_graph(32);
        let other_bound = runtime.bind(&other);
        let err = other_bound
            .resume(Levels { src: 0 }, cp)
            .execute()
            .expect_err("wrong graph");
        assert!(matches!(err.error, SimdxError::InvalidQuery { .. }));
        let cp = err.checkpoint.expect("handed back");
        assert_eq!(cp.iteration(), 2);
        // The recovered checkpoint still resumes on the right graph.
        let resumed = bound
            .resume(Levels { src: 0 }, cp)
            .execute()
            .expect("resumed");
        let baseline = bound.run(Levels { src: 0 }).execute().expect("baseline");
        assert_eq!(resumed.meta, baseline.meta);
        assert_eq!(resumed.report.stats, baseline.report.stats);
    }

    #[test]
    fn resumed_cycle_budget_grants_additional_cycles() {
        let g = path_graph(40);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let baseline = bound.run(Levels { src: 0 }).execute().expect("baseline");
        let aborted = bound
            .run(Levels { src: 0 })
            .cycle_budget(1)
            .checkpoint_on_abort()
            .execute()
            .expect_err("budget");
        assert!(matches!(aborted.error, SimdxError::BudgetExhausted { .. }));
        let cp = aborted.checkpoint.expect("checkpoint");
        let first = cp.iteration();
        assert!(first >= 1, "one iteration completed before the trip");
        // The same per-attempt budget on a resume is granted on top of
        // the checkpoint's spent cycles — forward progress, not an
        // instant re-trip at the same boundary.
        let aborted = bound
            .resume(Levels { src: 0 }, cp)
            .cycle_budget(1)
            .execute()
            .expect_err("still budgeted");
        assert!(matches!(aborted.error, SimdxError::BudgetExhausted { .. }));
        let cp = aborted.checkpoint.expect("checkpoint");
        assert!(cp.iteration() > first, "resume advanced the run");
        // An unbudgeted resume finishes bit-equal to the baseline.
        let resumed = bound
            .resume(Levels { src: 0 }, cp)
            .execute()
            .expect("resumed");
        assert_eq!(resumed.meta, baseline.meta);
        assert_eq!(resumed.report.log, baseline.report.log);
        assert_eq!(resumed.report.stats, baseline.report.stats);
    }

    #[test]
    fn run_batch_partial_aborts_carry_resumable_checkpoints() {
        let g = path_graph(96);
        let cfg = EngineConfig::unscaled();
        let runtime = Runtime::new(cfg).expect("runtime");
        let bound = runtime.bind(&g);
        // Seed 95 is the far end of the path: a tight global iteration
        // cap aborts it mid-run while seed 48's shorter run completes.
        let mut capped = Runtime::new(EngineConfig::unscaled()).expect("capped runtime");
        capped.config.max_iterations = 60;
        let capped_bound = capped.bind(&g);
        let partial = capped_bound.run_batch_partial(Levels { src: 0 }, &[48, 0]);
        let ok = partial[0].as_ref().expect("short seed completes");
        let baseline = bound
            .run(Levels { src: 48 })
            .execute()
            .expect("seed 48 baseline");
        assert_eq!(ok.meta, baseline.meta);
        let aborted = partial[1].as_ref().expect_err("long seed capped");
        assert_eq!(
            aborted.error,
            SimdxError::IterationLimit { max_iterations: 60 }
        );
        let cp = aborted.checkpoint.clone().expect("checkpoint captured");
        assert_eq!(cp.iteration(), 60);
        let resumed = bound
            .resume(Levels { src: 0 }, cp)
            .execute()
            .expect("resumed batch member");
        let full = bound.run(Levels { src: 0 }).execute().expect("baseline");
        assert_eq!(resumed.meta, full.meta);
        assert_eq!(resumed.report.stats, full.report.stats);
    }

    #[test]
    fn scratch_pool_reaches_bounded_steady_state() {
        let g = path_graph(96);
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        assert_eq!(bound.idle_scratch_arenas(), 0, "no arenas before a query");
        // Sequential queries of one metadata type reuse a single arena
        // forever — the pool never grows past it.
        for _ in 0..20 {
            bound.run(Levels { src: 0 }).execute().expect("levels");
        }
        assert_eq!(bound.idle_scratch_arenas(), 1);
        // A second metadata type adds exactly one more.
        bound.run(Mass).execute().expect("mass");
        assert_eq!(bound.idle_scratch_arenas(), 2);
        // clear_scratch drops the idle inventory; the next query
        // recreates its arena and stays bit-equal.
        bound.clear_scratch();
        assert_eq!(bound.idle_scratch_arenas(), 0);
        let after = bound.run(Levels { src: 0 }).execute().expect("post-clear");
        let fresh_rt = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let fresh = fresh_rt
            .bind(&g)
            .run(Levels { src: 0 })
            .execute()
            .expect("fresh");
        assert_eq!(after.meta, fresh.meta);
        assert_eq!(after.report.stats, fresh.report.stats);
        assert_eq!(bound.idle_scratch_arenas(), 1);
    }

    #[test]
    fn queries_from_many_threads_share_one_bound_graph() {
        // Smoke test for the Sync contract (the full N×M stress matrix
        // lives in `tests/concurrent_serving.rs`): four threads query
        // one bound graph concurrently and every result is bit-equal
        // to the single-threaded baseline.
        let g = path_graph(200);
        for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 2 }] {
            let cfg = EngineConfig::unscaled().with_exec(exec);
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            let seeds = [0u32, 7, 64, 150];
            let baselines: Vec<_> = seeds
                .iter()
                .map(|&s| bound.run(Levels { src: s }).execute().expect("baseline"))
                .collect();
            std::thread::scope(|scope| {
                for (&seed, baseline) in seeds.iter().zip(&baselines) {
                    let bound = &bound;
                    scope.spawn(move || {
                        for _ in 0..3 {
                            let got = bound
                                .run(Levels { src: 0 })
                                .source(seed)
                                .execute()
                                .expect("concurrent run");
                            assert_eq!(got.meta, baseline.meta, "seed {seed}");
                            assert_eq!(got.report.stats, baseline.report.stats, "seed {seed}");
                            assert_eq!(got.report.log, baseline.report.log, "seed {seed}");
                        }
                    });
                }
            });
        }
    }
}
