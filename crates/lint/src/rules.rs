//! The rule passes. Each pass walks the token stream of one file and
//! emits [`Finding`]s; the policy (which files are scanned, which are
//! exempt from which rule) lives in [`Policy`] so it is reviewable in
//! one place.
//!
//! Rules (ids in brackets):
//!
//! * **[safety-comment]** — every `unsafe` block, `unsafe impl` and
//!   `unsafe fn` carries a `// SAFETY:` comment in the immediately
//!   preceding lines (or a trailing one on the same line).
//! * **[safety-doc]** — every **public** `unsafe fn` additionally has a
//!   `# Safety` section in its doc comment.
//! * **[ordering-comment]** — every atomic memory-ordering use
//!   (`Ordering::Relaxed` & co.) carries a `// ORDERING:` justification
//!   nearby. `std::cmp::Ordering` variants are not atomic orderings and
//!   are ignored. Test modules are exempt.
//! * **[env-confined]** — `std::env` reads are confined to the
//!   config-knob and fault modules: the deterministic iteration loop
//!   must not grow a hidden environment dependence.
//! * **[clock-confined]** — `Instant::now` / `SystemTime::now` are
//!   confined to supervision, the service tier and benches, for the
//!   same reason.
//! * **[io-confined]** — `std::fs` / `std::io` access is confined to
//!   the durable-checkpoint store (`persist.rs`), the bench/CLI
//!   binaries, the lint tool and tests: the engine loop and the rest
//!   of the serving tier must stay filesystem-free so runs are
//!   deterministic and sandboxable.
//! * **[atomic-facade]** — `simdx_core` imports atomics through
//!   `crate::sync`, never `std::sync::atomic` directly, so the `model`
//!   feature can interpose its instrumented shims.
//! * **[panic-free]** — no `unwrap()` / `expect()` / `panic!`-family
//!   macros in the non-test code of the core hot-path modules. Existing
//!   debt is pinned by the ratchet baseline (`crates/lint/baseline.txt`);
//!   only *new* violations fail.

use crate::lexer::{Tok, TokKind};

/// How far above a flagged token a justification comment may start
/// counting as "attached" (in lines, inclusive).
const COMMENT_LOOKBACK_LINES: u32 = 4;

/// The atomic memory orderings; `Ordering::Less` & co. (from
/// `std::cmp`) must not trip the rule.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `safety-comment`.
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// The scanning policy: which workspace files each rule applies to.
/// Paths are workspace-relative with `/` separators.
pub struct Policy;

impl Policy {
    /// Directories scanned at all (relative to the workspace root).
    pub const SCAN_ROOTS: &'static [&'static str] = &["crates", "src", "tests", "examples"];

    /// Subtrees never scanned: `compat` holds offline API stubs that
    /// deliberately mirror external crates' surfaces, not this repo's
    /// conventions.
    pub const SKIP_DIRS: &'static [&'static str] = &["crates/compat", "target"];

    /// Files whose whole content is test code (integration tests).
    pub fn is_test_file(path: &str) -> bool {
        path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
    }

    /// [env-confined] allowlist: the env-knob module, the fault-plan
    /// grammar, the bench/CLI binaries and the lint tool itself. Test
    /// files may also manipulate the environment (they orchestrate
    /// these knobs).
    pub fn env_allowed(path: &str) -> bool {
        path == "crates/core/src/config.rs"
            || path == "crates/core/src/fault.rs"
            || path.starts_with("crates/bench/")
            || path.starts_with("crates/lint/")
            || Self::is_test_file(path)
    }

    /// [clock-confined] allowlist: supervision (deadlines), the service
    /// tier (latency accounting), benches and the lint tool. Test files
    /// measure latency too.
    pub fn clock_allowed(path: &str) -> bool {
        path == "crates/core/src/supervise.rs"
            || path == "crates/core/src/service.rs"
            || path.starts_with("crates/bench/")
            || path.starts_with("crates/lint/")
            || Self::is_test_file(path)
    }

    /// [io-confined] allowlist: the durable-checkpoint store (the one
    /// place the core crate touches the filesystem, by design), the
    /// bench/CLI binaries and the lint tool. Test files drive stores
    /// and scratch directories too.
    pub fn io_allowed(path: &str) -> bool {
        path == "crates/core/src/persist.rs"
            || path.starts_with("crates/bench/")
            || path.starts_with("crates/lint/")
            || Self::is_test_file(path)
    }

    /// [atomic-facade] scope: `simdx_core` sources except the facade
    /// itself.
    pub fn facade_scoped(path: &str) -> bool {
        path.starts_with("crates/core/src/") && path != "crates/core/src/sync.rs"
    }

    /// [panic-free] scope: the core hot-path modules — everything on
    /// the per-iteration critical path plus the resource pools the
    /// serving tier leans on.
    pub fn panic_free_scoped(path: &str) -> bool {
        const HOT: &[&str] = &[
            "crates/core/src/engine.rs",
            "crates/core/src/par.rs",
            "crates/core/src/frontier.rs",
            "crates/core/src/metadata.rs",
            "crates/core/src/grid.rs",
            "crates/core/src/scratch.rs",
            "crates/core/src/pool.rs",
            "crates/core/src/fusion.rs",
            "crates/core/src/jit.rs",
            "crates/core/src/checkpoint.rs",
            "crates/core/src/service.rs",
            "crates/core/src/persist.rs",
        ];
        HOT.contains(&path) || path.starts_with("crates/core/src/filters/")
    }
}

/// One file prepared for rule passes: tokens plus test-span marking.
pub struct FileCheck<'a> {
    pub path: String,
    pub src: &'a str,
    pub toks: Vec<Tok>,
    /// `in_test[i]` — token `i` is inside a `#[cfg(test)]` module (or
    /// the whole file is test code).
    in_test: Vec<bool>,
}

impl<'a> FileCheck<'a> {
    pub fn new(path: String, src: &'a str) -> Self {
        let toks = crate::lexer::tokenize(src);
        let in_test = mark_test_spans(&toks, src, Policy::is_test_file(&path));
        Self {
            path,
            src,
            toks,
            in_test,
        }
    }

    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_ident(&self, i: usize, word: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == word)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    /// Index of the next non-comment token at or after `i`.
    fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.toks.len() {
            if !self.toks[i].is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Whether a `::` path separator sits at tokens `i`, `i + 1`.
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// Whether any comment "attached" to the token at index `i`
    /// contains `needle`: trailing on the same line, or ending within
    /// [`COMMENT_LOOKBACK_LINES`] lines above it. A multi-line `//`
    /// justification lexes as one token per line, so an in-window
    /// comment is first expanded to its contiguous run (consecutive
    /// comment tokens on consecutive lines) and the whole run is
    /// searched — the marker is usually on the run's *first* line,
    /// which may itself sit outside the window.
    fn attached_comment_contains(&self, i: usize, needle: &str) -> bool {
        let line = self.toks[i].line;
        let lo = line.saturating_sub(COMMENT_LOOKBACK_LINES);
        for (j, t) in self.toks.iter().enumerate() {
            if !t.is_comment() || t.line > line || t.end_line < lo {
                continue;
            }
            let mut k = j;
            while k > 0
                && self.toks[k - 1].is_comment()
                && self.toks[k - 1].end_line + 1 >= self.toks[k].line
            {
                k -= 1;
            }
            let mut m = j;
            while m + 1 < self.toks.len()
                && self.toks[m + 1].is_comment()
                && self.toks[m].end_line + 1 >= self.toks[m + 1].line
            {
                m += 1;
            }
            if self.toks[k..=m]
                .iter()
                .any(|t| t.text(self.src).contains(needle))
            {
                return true;
            }
        }
        false
    }

    /// Whether the doc comment block attached to the item whose first
    /// modifier token is at `item_start` contains `needle`. Walks
    /// backward over attributes (`#[…]`) and comments; any other token
    /// ends the block.
    fn doc_block_contains(&self, item_start: usize, needle: &str) -> bool {
        let mut i = item_start;
        while i > 0 {
            let j = i - 1;
            let t = &self.toks[j];
            if t.is_comment() {
                if t.is_doc_comment() && t.text(self.src).contains(needle) {
                    return true;
                }
                i = j;
            } else if t.kind == TokKind::Punct(']') {
                // Walk back over one `#[…]` attribute.
                let mut depth = 1usize;
                let mut k = j;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match self.toks[k].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                // The `#` before the `[`.
                i = k.saturating_sub(1);
            } else {
                break;
            }
        }
        false
    }

    /// Walks backward from the `unsafe` token over fn modifiers
    /// (`pub`, `pub(crate)`, `const`, `extern "ABI"`, `async`) and
    /// returns `(item_start, is_public)`. `is_public` is true only for
    /// bare `pub` (restricted `pub(crate)`/`pub(super)` items are not
    /// part of the external API surface).
    fn fn_visibility(&self, unsafe_idx: usize) -> (usize, bool) {
        let mut i = unsafe_idx;
        // Where the item header starts: the earliest *modifier* token,
        // NOT any comment we skip past — doc_block_contains must start
        // its backward walk just before the modifiers, so it can see
        // the doc comments.
        let mut item_start = unsafe_idx;
        let mut public = false;
        while i > 0 {
            let j = i - 1;
            if self.toks[j].is_comment() {
                i = j; // skip, but comments are not part of the header
                continue;
            }
            match self.toks[j].kind {
                TokKind::Ident => match self.text(j) {
                    "const" | "extern" | "async" => {
                        i = j;
                        item_start = j;
                    }
                    "pub" => {
                        public = true;
                        i = j;
                        item_start = j;
                    }
                    _ => break,
                },
                TokKind::Str => {
                    // extern "C"
                    i = j;
                    item_start = j;
                }
                TokKind::Punct(')') => {
                    // `pub(crate)` / `pub(super)`: walk to the `(`,
                    // then consume the `pub` too. Restricted
                    // visibility is not public API surface.
                    let mut k = j;
                    while k > 0 && !self.is_punct(k, '(') {
                        k -= 1;
                    }
                    if k > 0 && self.is_ident(k - 1, "pub") {
                        k -= 1;
                    }
                    i = k;
                    item_start = k;
                }
                _ => break,
            }
        }
        (item_start, public)
    }
}

/// Marks which tokens are inside `#[cfg(test)] mod … { … }` spans (or
/// everything, for test files).
fn mark_test_spans(toks: &[Tok], src: &str, whole_file: bool) -> Vec<bool> {
    let mut marked = vec![whole_file; toks.len()];
    if whole_file {
        return marked;
    }
    let ident = |i: usize, w: &str| {
        toks.get(i)
            .is_some_and(|t: &Tok| t.kind == TokKind::Ident && t.text(src) == w)
    };
    let punct = |i: usize, c: char| {
        toks.get(i)
            .is_some_and(|t: &Tok| t.kind == TokKind::Punct(c))
    };
    let mut i = 0;
    while i < toks.len() {
        // `#[cfg(…test…)]` — any cfg attribute whose argument list
        // mentions the bare ident `test` (covers `cfg(test)` and
        // `cfg(all(test, …))`).
        if punct(i, '#') && punct(i + 1, '[') && ident(i + 2, "cfg") && punct(i + 3, '(') {
            let mut j = i + 4;
            let mut depth = 1usize;
            let mut saw_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => depth -= 1,
                    TokKind::Ident if toks[j].text(src) == "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Expect `]`, then (skipping further attributes/comments)
            // `mod name {`.
            if saw_test && punct(j, ']') {
                let mut k = j + 1;
                // Skip comments and further `#[…]` attributes.
                loop {
                    while toks.get(k).is_some_and(Tok::is_comment) {
                        k += 1;
                    }
                    if punct(k, '#') && punct(k + 1, '[') {
                        let mut depth = 1usize;
                        k += 2;
                        while k < toks.len() && depth > 0 {
                            match toks[k].kind {
                                TokKind::Punct('[') => depth += 1,
                                TokKind::Punct(']') => depth -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                    } else {
                        break;
                    }
                }
                if ident(k, "mod") {
                    // `mod name {` — find the brace, then its match.
                    let mut b = k + 1;
                    while b < toks.len() && !punct(b, '{') {
                        b += 1;
                    }
                    if b < toks.len() {
                        let mut depth = 1usize;
                        let mut e = b + 1;
                        while e < toks.len() && depth > 0 {
                            match toks[e].kind {
                                TokKind::Punct('{') => depth += 1,
                                TokKind::Punct('}') => depth -= 1,
                                _ => {}
                            }
                            e += 1;
                        }
                        for flag in marked.iter_mut().take(e).skip(i) {
                            *flag = true;
                        }
                        i = e;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    marked
}

/// Runs every rule pass over one prepared file.
pub fn check_file(fc: &FileCheck<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_safety(fc, &mut out);
    rule_ordering(fc, &mut out);
    rule_env_clock(fc, &mut out);
    rule_io_confined(fc, &mut out);
    rule_atomic_facade(fc, &mut out);
    rule_panic_free(fc, &mut out);
    out
}

fn finding(fc: &FileCheck<'_>, i: usize, rule: &'static str, msg: String) -> Finding {
    Finding {
        file: fc.path.clone(),
        line: fc.toks[i].line,
        rule,
        msg,
    }
}

/// [safety-comment] + [safety-doc].
fn rule_safety(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    for i in 0..fc.toks.len() {
        if !fc.is_ident(i, "unsafe") {
            continue;
        }
        let next = fc.next_code(i + 1);
        let context = match next {
            Some(j) if fc.is_punct(j, '{') => "unsafe block",
            Some(j) if fc.is_ident(j, "impl") => "unsafe impl",
            Some(j) if fc.is_ident(j, "fn") => "unsafe fn",
            Some(j) if fc.is_ident(j, "extern") => "unsafe extern block",
            // `unsafe` inside e.g. a type position (`unsafe fn()`
            // pointer) — still wants a justification; label generically.
            _ => "unsafe",
        };
        if !fc.attached_comment_contains(i, "SAFETY:") {
            out.push(finding(
                fc,
                i,
                "safety-comment",
                format!("{context} without an attached `// SAFETY:` comment"),
            ));
        }
        if context == "unsafe fn" {
            let (item_start, public) = fc.fn_visibility(i);
            if public && !fc.doc_block_contains(item_start, "# Safety") {
                out.push(finding(
                    fc,
                    i,
                    "safety-doc",
                    "public unsafe fn without a `# Safety` doc section".to_string(),
                ));
            }
        }
    }
}

/// [ordering-comment].
fn rule_ordering(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    for i in 0..fc.toks.len() {
        if fc.in_test[i] || !fc.is_ident(i, "Ordering") || !fc.is_path_sep(i + 1) {
            continue;
        }
        let Some(variant) = fc.toks.get(i + 3) else {
            continue;
        };
        if variant.kind != TokKind::Ident || !ATOMIC_ORDERINGS.contains(&variant.text(fc.src)) {
            continue;
        }
        if !fc.attached_comment_contains(i, "ORDERING:") {
            out.push(finding(
                fc,
                i,
                "ordering-comment",
                format!(
                    "atomic `Ordering::{}` without an attached `// ORDERING:` justification",
                    variant.text(fc.src)
                ),
            ));
        }
    }
}

/// [env-confined] + [clock-confined].
fn rule_env_clock(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    let env_ok = Policy::env_allowed(&fc.path);
    let clock_ok = Policy::clock_allowed(&fc.path);
    if env_ok && clock_ok {
        return;
    }
    const ENV_FNS: &[&str] = &[
        "var",
        "vars",
        "var_os",
        "args",
        "args_os",
        "set_var",
        "remove_var",
    ];
    for i in 0..fc.toks.len() {
        if fc.in_test[i] {
            continue;
        }
        if !env_ok {
            let std_env =
                fc.is_ident(i, "std") && fc.is_path_sep(i + 1) && fc.is_ident(i + 3, "env");
            let bare_env = fc.is_ident(i, "env")
                && fc.is_path_sep(i + 1)
                && fc
                    .toks
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokKind::Ident && ENV_FNS.contains(&t.text(fc.src)));
            if std_env || bare_env {
                out.push(finding(
                    fc,
                    i,
                    "env-confined",
                    "std::env access outside the knob/fault modules breaks the determinism \
                     contract (route it through EngineConfig or FaultPlan)"
                        .to_string(),
                ));
            }
        }
        if !clock_ok {
            let clock = (fc.is_ident(i, "Instant") || fc.is_ident(i, "SystemTime"))
                && fc.is_path_sep(i + 1)
                && fc.is_ident(i + 3, "now");
            if clock {
                out.push(finding(
                    fc,
                    i,
                    "clock-confined",
                    "wall-clock read outside supervise/service/bench breaks the determinism \
                     contract (thread time through Supervisor instead)"
                        .to_string(),
                ));
            }
        }
    }
}

/// [io-confined].
fn rule_io_confined(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    if Policy::io_allowed(&fc.path) {
        return;
    }
    for i in 0..fc.toks.len() {
        if fc.in_test[i] {
            continue;
        }
        // `std::fs` and `std::io` paths (covers both `use std::fs…`
        // imports and inline `std::fs::read(…)` calls — any file doing
        // filesystem work spells one of the two). `std::io::Error` in
        // type position is as confined as the calls: an i/o error can
        // only arise where i/o is allowed.
        if fc.is_ident(i, "std")
            && fc.is_path_sep(i + 1)
            && (fc.is_ident(i + 3, "fs") || fc.is_ident(i + 3, "io"))
        {
            let module = fc.text(i + 3).to_string();
            out.push(finding(
                fc,
                i,
                "io-confined",
                format!(
                    "std::{module} access outside persist/bench/lint/tests breaks the \
                     determinism contract (route persistence through a CheckpointStore)"
                ),
            ));
        }
    }
}

/// [atomic-facade].
fn rule_atomic_facade(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    if !Policy::facade_scoped(&fc.path) {
        return;
    }
    for i in 0..fc.toks.len() {
        if fc.in_test[i] {
            continue;
        }
        if fc.is_ident(i, "std")
            && fc.is_path_sep(i + 1)
            && fc.is_ident(i + 3, "sync")
            && fc.is_path_sep(i + 4)
            && fc.is_ident(i + 6, "atomic")
        {
            out.push(finding(
                fc,
                i,
                "atomic-facade",
                "simdx_core must import atomics via crate::sync (the model feature interposes \
                 instrumented shims there)"
                    .to_string(),
            ));
        }
    }
}

/// [panic-free] — ratcheted; see [`crate::ratchet`].
fn rule_panic_free(fc: &FileCheck<'_>, out: &mut Vec<Finding>) {
    if !Policy::panic_free_scoped(&fc.path) {
        return;
    }
    for i in 0..fc.toks.len() {
        if fc.in_test[i] {
            continue;
        }
        // `.unwrap()` / `.expect(` — method calls only, so local
        // helpers like `unwrap_or_else` never trip it.
        if i > 0 && fc.is_punct(i - 1, '.') && fc.is_punct(i + 1, '(') {
            if fc.is_ident(i, "unwrap") {
                out.push(finding(
                    fc,
                    i,
                    "panic-free",
                    "unwrap() in a hot-path module (return a SimdxError or justify via the \
                     ratchet baseline)"
                        .to_string(),
                ));
            } else if fc.is_ident(i, "expect") {
                out.push(finding(
                    fc,
                    i,
                    "panic-free",
                    "expect() in a hot-path module (return a SimdxError or justify via the \
                     ratchet baseline)"
                        .to_string(),
                ));
            }
        }
        // `panic!(…)` family.
        if fc.is_punct(i + 1, '!')
            && fc.toks[i].kind == TokKind::Ident
            && matches!(
                fc.text(i),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(finding(
                fc,
                i,
                "panic-free",
                format!("{}! in a hot-path module", fc.text(i)),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&FileCheck::new(path.to_string(), src))
    }

    #[test]
    fn annotated_unsafe_passes_and_bare_unsafe_fails() {
        let ok = "// SAFETY: disjoint shards.\nlet x = unsafe { go() };";
        assert!(check("crates/core/src/x.rs", ok).is_empty());
        let bad = "let x = unsafe { go() };";
        let f = check("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let src = r##"
// this mentions unsafe but is a comment
let a = "unsafe";
let b = r#"unsafe { }"#;
/* unsafe impl Send for X {} */
"##;
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn public_unsafe_fn_needs_safety_doc_section() {
        let no_doc = "// SAFETY: fine.\npub unsafe fn f() {}";
        let f = check("crates/core/src/x.rs", no_doc);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-doc");
        let with_doc = "/// Does things.\n///\n/// # Safety\n///\n/// Caller must…\n\
                        // SAFETY: fine.\npub unsafe fn f() {}";
        assert!(check("crates/core/src/x.rs", with_doc).is_empty());
        // Private unsafe fn needs only the comment.
        let private = "// SAFETY: fine.\nunsafe fn f() {}";
        assert!(check("crates/core/src/x.rs", private).is_empty());
        // pub(crate) is not public API surface.
        let restricted = "// SAFETY: fine.\npub(crate) unsafe fn f() {}";
        assert!(check("crates/core/src/x.rs", restricted).is_empty());
    }

    #[test]
    fn atomic_ordering_needs_justification_but_cmp_ordering_does_not() {
        let bad = "x.store(1, Ordering::Relaxed);";
        let f = check("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-comment");
        let ok = "// ORDERING: lone flag, no data published.\nx.store(1, Ordering::Relaxed);";
        assert!(check("crates/core/src/x.rs", ok).is_empty());
        let trailing = "x.store(1, Ordering::Relaxed); // ORDERING: lone flag.";
        assert!(check("crates/core/src/x.rs", trailing).is_empty());
        let cmp = "match a.cmp(&b) { Ordering::Less => {} _ => {} }";
        assert!(check("crates/core/src/x.rs", cmp).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_ordering_and_panic_rules() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { x.load(Ordering::Relaxed); \
                   y.unwrap(); panic!(\"boom\"); }\n}";
        assert!(check("crates/core/src/par.rs", src).is_empty());
        // …but the same code outside the module trips all three.
        let bare = "fn f() { x.load(Ordering::Relaxed); y.unwrap(); panic!(\"boom\"); }";
        let f = check("crates/core/src/par.rs", bare);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn cfg_all_test_modules_are_detected() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod harness { fn f() { y.unwrap(); } }";
        assert!(check("crates/core/src/par.rs", src).is_empty());
    }

    #[test]
    fn env_and_clock_confinement() {
        let env = "let v = std::env::var(\"X\");";
        assert_eq!(
            check("crates/core/src/engine.rs", env)[0].rule,
            "env-confined"
        );
        assert!(check("crates/core/src/config.rs", env).is_empty());
        assert!(check("tests/something.rs", env).is_empty());
        let clock = "let t = Instant::now();";
        assert_eq!(
            check("crates/core/src/engine.rs", clock)[0].rule,
            "clock-confined"
        );
        assert!(check("crates/core/src/supervise.rs", clock).is_empty());
        assert!(check("crates/bench/src/bin/snapshot.rs", clock).is_empty());
    }

    #[test]
    fn io_confinement() {
        for bad in [
            "use std::fs;",
            "use std::io::Write;",
            "fn f() { let b = std::fs::read(\"x\"); }",
            "fn f(e: std::io::Error) {}",
        ] {
            let f = check("crates/core/src/service.rs", bad);
            assert_eq!(f.len(), 1, "expected one finding for {bad:?}");
            assert_eq!(f[0].rule, "io-confined");
        }
        // The allowlist: the store itself, benches, the lint tool,
        // tests.
        let io = "use std::fs;\nuse std::io::Write;";
        assert!(check("crates/core/src/persist.rs", io).is_empty());
        assert!(check("crates/bench/src/bin/snapshot.rs", io).is_empty());
        assert!(check("crates/lint/src/main.rs", io).is_empty());
        assert!(check("tests/durable_recovery.rs", io).is_empty());
        // Test modules inside scanned files may touch the filesystem
        // (scratch dirs), and `std::io` in a comment is not access.
        let test_mod = "#[cfg(test)]\nmod tests { fn f() { std::fs::read(\"x\"); } }";
        assert!(check("crates/core/src/engine.rs", test_mod).is_empty());
        let comment = "// std::io::Error is not Clone.\nfn f() {}";
        assert!(check("crates/core/src/error.rs", comment).is_empty());
    }

    #[test]
    fn facade_rule_fires_only_in_core() {
        let src = "use std::sync::atomic::AtomicU64;";
        assert_eq!(
            check("crates/core/src/engine.rs", src)[0].rule,
            "atomic-facade"
        );
        assert!(check("crates/baselines/src/cpu/ligra.rs", src).is_empty());
        assert!(check("crates/core/src/sync.rs", src).is_empty());
    }

    #[test]
    fn panic_free_scope_and_method_call_shape() {
        let src = "fn f() { let x = o.unwrap(); }";
        assert_eq!(
            check("crates/core/src/engine.rs", src)[0].rule,
            "panic-free"
        );
        // Non-hot modules are out of scope.
        assert!(check("crates/core/src/error.rs", src).is_empty());
        // unwrap_or_else is not unwrap.
        let ok = "fn f() { let x = o.unwrap_or_else(PoisonError::into_inner); }";
        assert!(check("crates/core/src/engine.rs", ok).is_empty());
    }
}
