//! CPU baselines on a simulated dual-socket Xeon host.
//!
//! The paper's evaluation machine is "two Intel Xeon E5-2683 CPUs (14
//! physical cores with 28 hyperthreads) and 512 GB main memory" (§7).
//! [`host_device`] models it with the same [`DeviceSpec`] machinery the
//! GPU uses: 28 cores × 2 hyperthreads = 56 scheduling slots, ~120 GB/s
//! of aggregate memory bandwidth, microsecond-class parallel-for spawn
//! and barrier costs. [`host_cost_model`] reprices the cost units for a
//! cache-hierarchy machine (cheap sequential access, DRAM-latency
//! random access, moderately cheap atomics).
//!
//! The functional work in [`ligra`] runs with *real* `crossbeam` scoped
//! threads and atomic metadata — results are deterministic because
//! every parallel update is a monotonic min/sub on an atomic integer
//! (confluent operations), while simulated time comes from the cost
//! model, not the wall clock.

pub mod galois;
pub mod ligra;

use simdx_gpu::cost::CostModel;
use simdx_gpu::{DeviceSpec, GpuExecutor, KernelDesc};

/// The simulated evaluation host: 2× Intel Xeon E5-2683 v3.
pub fn host_device() -> DeviceSpec {
    DeviceSpec {
        name: "2x Xeon E5-2683",
        // One "SM" per physical core.
        sm_count: 28,
        // Register files are not a residency constraint on CPUs.
        registers_per_sm: 1 << 20,
        // Two hyperthreads per core.
        max_threads_per_sm: 2,
        max_ctas_per_sm: 2,
        shared_mem_per_sm: 35 * 1024 * 1024, // L3 slice, unused
        clock_mhz: 2_000,
        // ~60 GB/s effective over two sockets at 2 GHz (NUMA-discounted
        // STREAM-class bandwidth of the Haswell-EP era).
        bytes_per_cycle: 30,
        // parallel_for spawn ≈ 2 µs.
        kernel_launch_cycles: 4_000,
        // Centralized barrier ≈ 1 µs.
        barrier_cycles: 2_000,
        global_mem_bytes: 512 * 1024 * 1024 * 1024,
        // A couple of cores' worth of outstanding misses saturates DRAM.
        saturation_threads: 1,
    }
}

/// Cost model for the host: sequential traffic rides the prefetcher,
/// random traffic pays DRAM latency (partially hidden by out-of-order
/// execution), atomics are cheaper than on the GPU but contended ones
/// still serialize.
pub fn host_cost_model() -> CostModel {
    CostModel {
        cycles_per_op: 1,
        cycles_per_coalesced_elem: 1,
        cycles_per_random_elem: 40,
        cycles_per_write: 4,
        cycles_per_atomic: 30,
        cycles_per_atomic_conflict: 30,
    }
}

/// An executor for the host device at the given twin scale.
pub fn host_executor(parallelism_scale: u32) -> GpuExecutor {
    let mut ex = GpuExecutor::with_model(host_device(), host_cost_model());
    ex.set_scale(parallelism_scale);
    ex
}

/// The kernel descriptor standing in for a host parallel-for region
/// (one thread per slot; registers are not a constraint).
pub fn host_kernel(name: &str) -> KernelDesc {
    KernelDesc::new(name, 0).with_threads_per_cta(1)
}

/// Number of real worker threads for the functional computation.
pub fn real_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(28)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_gpu::SchedUnit;

    #[test]
    fn host_has_56_slots() {
        let ex = host_executor(1);
        assert_eq!(ex.slots_for(&host_kernel("t"), SchedUnit::Thread), 56);
    }

    #[test]
    fn host_is_weaker_in_parallelism_than_k40() {
        let gpu = GpuExecutor::new(DeviceSpec::k40());
        let k = KernelDesc::new("k", 32);
        let host = host_executor(1);
        assert!(
            gpu.slots_for(&k, SchedUnit::Thread)
                > 100 * host.slots_for(&host_kernel("t"), SchedUnit::Thread)
        );
    }

    #[test]
    fn host_bandwidth_below_gpu() {
        assert!(host_device().bytes_per_cycle < DeviceSpec::k40().bytes_per_cycle);
    }
}
