//! `simdx-lint`: repo-specific static analysis for the SIMD-X
//! reproduction.
//!
//! The engine's correctness argument leans on conventions no generic
//! linter checks: every `unsafe` carries a written invariant, every
//! atomic ordering a written rationale, and the iteration loop reads
//! neither the environment nor the wall clock. This crate enforces
//! those conventions mechanically — a hand-rolled lexer (the container
//! builds offline, so no `syn`) feeding rule passes, with a ratchet
//! baseline for pre-existing `panic-free` debt.
//!
//! Run `cargo run -p simdx_lint -- --check` from the workspace root;
//! CI does the same. See `crates/core/README.md` ("Invariants & static
//! checks") for the contract being enforced.

pub mod lexer;
pub mod model;
pub mod ratchet;
pub mod rules;
