//! Concurrent query serving: a bounded-queue `QueryPool` over one
//! shared [`BoundGraph`].
//!
//! The session API makes concurrent queries *possible* (`Runtime` and
//! `BoundGraph` are `Sync`; see `session`'s module docs for the
//! sharing model); this module makes them *operable*. A
//! [`QueryPool::serve`] call stands up the paper's target shape — one
//! bound graph answering a stream of single-source queries for many
//! clients — as a closed-loop service:
//!
//! * a **bounded submission queue** ([`ServiceConfig::queue_depth`])
//!   with admission control: [`AdmissionPolicy::Block`] applies
//!   backpressure to the producer, [`AdmissionPolicy::Reject`] fails
//!   the submission with [`SimdxError::Overloaded`] so the caller can
//!   shed load;
//! * **N serving threads** ([`ServiceConfig::workers`]), each running
//!   independent queries over the shared bind-time core — every thread
//!   checks its own worker pool and scratch arena out of the session's
//!   stashes, so queries never contend on engine state;
//! * a **batching scheduler**: each serving thread drains up to
//!   [`ServiceConfig::batch_max`] queued requests per turn and runs
//!   them over a single scratch checkout (the `run_batch`
//!   amortization, measured at 1.1–1.2×), without delaying a lone
//!   request — batches form only from queue backlog;
//! * **per-query supervision**: every [`QueryRequest`] carries its own
//!   optional [`CancelToken`], deadline and cycle budget. Deadlines
//!   are measured from *submission*, so time spent queued counts
//!   against the query — a request that waited out its whole deadline
//!   in the queue aborts immediately with
//!   [`SimdxError::DeadlineExceeded`] instead of running late.
//!
//! Results are collected into a [`ServeReport`]: one [`ServeOutcome`]
//! per accepted ticket (in ticket order) with its submission-to-result
//! latency, plus the closed-loop elapsed time — everything a harness
//! needs for queries/sec and p50/p99 latency (the `serving` snapshot
//! group in `BENCH_engine.json`).
//!
//! Serving threads are *scoped* (`std::thread::scope`): they borrow
//! the `BoundGraph` directly, so the service needs no `'static`
//! plumbing and cannot outlive the graph it serves. The producer
//! closure runs on the calling thread concurrently with the serving
//! threads; when it returns, the queue closes, the workers drain every
//! accepted request, and `serve` returns the report.
//!
//! Every query served concurrently remains **bit-equal** to running it
//! alone on a fresh engine — same metadata, activation logs and
//! simulated cycles (`tests/concurrent_serving.rs` asserts the matrix,
//! including mid-stream cancellations and fault-injected worker
//! panics).
//!
//! With [`ServiceConfig::durability`] armed, the pool also survives
//! its own process: final-failure checkpoints (retries exhausted, or
//! an abort-mode shutdown) are spilled through a
//! [`crate::persist::CheckpointStore`] and a fresh process picks them
//! back up with [`QueryPool::recover`] — completing each one bit-equal
//! to the uninterrupted run (`tests/durable_recovery.rs` SIGKILLs a
//! serving process mid-batch and proves it).
//!
//! # Example
//!
//! ```
//! use simdx_core::prelude::*;
//! use simdx_core::service::{QueryPool, QueryRequest, ServiceConfig};
//! use simdx_graph::{EdgeList, Graph, VertexId, Weight};
//!
//! #[derive(Clone)]
//! struct Levels {
//!     src: VertexId,
//! }
//! impl AccProgram for Levels {
//!     type Meta = u32;
//!     type Update = u32;
//!     fn name(&self) -> &'static str { "levels" }
//!     fn combine_kind(&self) -> CombineKind { CombineKind::Vote }
//!     fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
//!         let mut m = vec![u32::MAX; g.num_vertices() as usize];
//!         m[self.src as usize] = 0;
//!         (m, vec![self.src])
//!     }
//!     fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight,
//!                ms: &u32, md: &u32) -> Option<u32> {
//!         (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
//!     }
//!     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
//!         (u < *c).then_some(u)
//!     }
//! }
//! impl SourcedProgram for Levels {
//!     fn with_source(mut self, src: VertexId) -> Self {
//!         self.src = src;
//!         self
//!     }
//! }
//!
//! let graph = Graph::directed_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//! let runtime = Runtime::new(EngineConfig::unscaled())?;
//! let bound = runtime.bind(&graph);
//!
//! let report = QueryPool::serve(
//!     &bound,
//!     Levels { src: 0 },
//!     ServiceConfig::default().workers(2),
//!     |client| {
//!         for seed in [0u32, 1, 2, 3] {
//!             client.submit(QueryRequest::new(seed))?;
//!         }
//!         Ok(())
//!     },
//! )?;
//! assert_eq!(report.outcomes.len(), 4);
//! assert_eq!(
//!     report.outcomes[1].result.as_ref().unwrap().meta,
//!     vec![u32::MAX, 0, 1, 2],
//! );
//! # Ok::<(), SimdxError>(())
//! ```

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::acc::SourcedProgram;
use crate::checkpoint::RunCheckpoint;
use crate::error::SimdxError;
use crate::metrics::RunResult;
use crate::persist::{self, CheckpointStore, DurableCheckpoint, PersistMeta};
use crate::scratch::IterScratch;
use crate::session::BoundGraph;
use crate::supervise::{CancelToken, RunProgress, Supervisor};
use crate::sync::Arc;
use simdx_graph::VertexId;

/// What [`QueryClient::submit`] does when the submission queue is at
/// [`ServiceConfig::queue_depth`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the producer until a serving thread drains a slot —
    /// backpressure (default).
    #[default]
    Block,
    /// Fail the submission with [`SimdxError::Overloaded`] — load
    /// shedding; the query is never admitted and gets no ticket.
    Reject,
}

/// How many times a serving thread attempts one query, and how long it
/// waits between attempts.
///
/// Attempts after the first *resume from the query's last boundary
/// checkpoint* ([`RunCheckpoint`]) rather than restarting, so a
/// deadline set 1 ms too tight costs one iteration of progress, not
/// the whole run. Retryable aborts are the transient ones —
/// [`SimdxError::WorkerPanicked`], [`SimdxError::DeadlineExceeded`]
/// and [`SimdxError::BudgetExhausted`]; a cancellation
/// ([`SimdxError::Cancelled`]) is the caller's decision and is never
/// retried. On a retried attempt the deadline allowance is granted
/// fresh from the attempt's start and the cycle budget is granted on
/// top of the checkpoint's spent cycles — otherwise the retry would
/// re-trip at the same boundary it just aborted at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per query, first included. `1` (the default)
    /// disables retries *and* the per-query checkpoint capture — the
    /// zero-overhead path.
    pub max_attempts: u32,
    /// Base wait before the second attempt; doubles per further
    /// attempt (attempt `k` waits `backoff × 2^(k-2)`). Zero (the
    /// default) retries immediately.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Builder: total attempts per query (≥ 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Builder: base backoff before the second attempt (doubles per
    /// further attempt).
    pub fn backoff(mut self, base: Duration) -> Self {
        self.backoff = base;
        self
    }
}

/// Where the pool durably spills final-failure checkpoints
/// ([`ServiceConfig::durability`]).
///
/// When armed, every final outcome that fails *with a captured
/// checkpoint* — retries exhausted, or an abort-mode shutdown
/// cancelling in-flight queries — is encoded
/// ([`crate::persist::encode`]) and written through the wrapped
/// [`CheckpointStore`] under the query's ticket, so a later process
/// can pick the work back up with [`QueryPool::recover`]. Arming
/// durability implies checkpoint capture
/// (like [`ServiceConfig::checkpoint_aborts`]); spilling itself only
/// touches the store on the failure path, so the success path stays at
/// capture cost.
///
/// Spill failures (a full disk, an injected `persist` fault) never
/// fail the serve call: the outcome still lands in the report with its
/// in-memory checkpoint attached, and the failed spill is surfaced in
/// [`ServeReport::spill_failures`].
#[derive(Clone)]
pub struct DurabilityPolicy {
    store: Arc<dyn CheckpointStore>,
}

impl DurabilityPolicy {
    /// Spill through `store` (shared; the pool never takes ownership
    /// of the underlying directory or medium).
    pub fn spill_to(store: impl CheckpointStore + 'static) -> Self {
        Self {
            store: Arc::new(store),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &dyn CheckpointStore {
        &*self.store
    }
}

impl std::fmt::Debug for DurabilityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityPolicy")
            .field("store", &"<dyn CheckpointStore>")
            .finish()
    }
}

/// How [`QueryClient::close`] shuts the pool down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CloseMode {
    /// Stop admitting, finish everything already admitted (the same
    /// drain `serve` performs when the producer returns).
    #[default]
    Drain,
    /// Stop admitting *and* stop working: in-flight queries abort at
    /// their next supervision check (as [`SimdxError::Cancelled`],
    /// carrying their boundary checkpoint when
    /// [`ServiceConfig::checkpoint_aborts`] or a multi-attempt
    /// [`RetryPolicy`] armed capture), and queued-but-unserved queries
    /// come back as zero-progress cancellations. Every admitted ticket
    /// still gets an outcome.
    Abort,
}

/// Knobs for one [`QueryPool::serve`] call.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Serving threads. Each runs independent queries over the shared
    /// core with its own worker-pool and scratch checkouts, so total
    /// host threads ≈ `workers × Runtime::threads`.
    pub workers: usize,
    /// Bounded submission-queue capacity (requests admitted but not
    /// yet picked up by a serving thread).
    pub queue_depth: usize,
    /// Most queued requests one serving thread drains per turn onto a
    /// single scratch checkout. `1` disables batching.
    pub batch_max: usize,
    /// Reaction to a full queue at submit time.
    pub admission: AdmissionPolicy,
    /// Per-query retry-with-resume policy. The default single attempt
    /// keeps serving on the zero-capture-overhead path.
    pub retry: RetryPolicy,
    /// Consecutive final-outcome worker panics that open the circuit
    /// breaker. `0` (the default) disables the breaker entirely.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before half-opening to admit a
    /// single probe query.
    pub breaker_cooldown: Duration,
    /// Arm boundary checkpointing even without retries, so every
    /// aborted outcome carries its [`RunCheckpoint`] back to the
    /// submitter ([`ServeOutcome::checkpoint`]) — the abort-mode
    /// shutdown's hand-back, or manual resume via
    /// [`crate::session::BoundGraph::resume`]. Off by default: capture
    /// costs one metadata copy per iteration.
    pub checkpoint_aborts: bool,
    /// Durable spill-on-failure: when `Some`, final-failure
    /// checkpoints are persisted through the policy's
    /// [`CheckpointStore`] so [`QueryPool::recover`] can resume them
    /// in a later process. Implies checkpoint capture. `None` (the
    /// default) keeps serving purely in-memory.
    pub durability: Option<DurabilityPolicy>,
}

impl Default for ServiceConfig {
    /// Two serving threads, a 64-deep queue, batches of up to 8,
    /// blocking admission; no retries, no breaker, no checkpointing.
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            batch_max: 8,
            admission: AdmissionPolicy::Block,
            retry: RetryPolicy::default(),
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
            checkpoint_aborts: false,
            durability: None,
        }
    }
}

impl ServiceConfig {
    /// Builder: set the serving-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: set the submission-queue capacity.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Builder: set the per-turn batching cap.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Builder: set the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Builder: set the retry-with-resume policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: enable the circuit breaker — open after `threshold`
    /// consecutive worker-panic outcomes, shed with
    /// [`SimdxError::Unavailable`] for `cooldown`, then half-open a
    /// probe.
    pub fn breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Builder: arm checkpoint capture on every query so aborted
    /// outcomes carry a resumable [`RunCheckpoint`].
    pub fn checkpoint_aborts(mut self, arm: bool) -> Self {
        self.checkpoint_aborts = arm;
        self
    }

    /// Builder: durably spill final-failure checkpoints through
    /// `policy`'s store for cross-process recovery
    /// ([`QueryPool::recover`]). Implies checkpoint capture.
    pub fn durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = Some(policy);
        self
    }

    fn validate(&self) -> Result<(), SimdxError> {
        let fail = |reason: String| Err(SimdxError::InvalidConfig { reason });
        if self.workers == 0 {
            return fail("service needs at least 1 serving thread".to_string());
        }
        if self.queue_depth == 0 {
            return fail("service queue_depth must be at least 1".to_string());
        }
        if self.batch_max == 0 {
            return fail("service batch_max must be at least 1".to_string());
        }
        if self.retry.max_attempts == 0 {
            return fail("retry max_attempts must be at least 1 (1 = no retries)".to_string());
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown.is_zero() {
            return fail("breaker_cooldown must be non-zero when the breaker is armed".to_string());
        }
        Ok(())
    }

    /// Whether serving arms the engine's per-iteration checkpoint
    /// capture: explicitly requested, implied by a multi-attempt retry
    /// policy (a retry without a checkpoint is just a restart), or
    /// implied by durability (a spill without a checkpoint has nothing
    /// to persist).
    fn arms_checkpoints(&self) -> bool {
        self.checkpoint_aborts || self.retry.max_attempts > 1 || self.durability.is_some()
    }
}

/// One query to submit: a seed plus optional per-query supervision.
#[derive(Clone, Debug, Default)]
pub struct QueryRequest {
    seed: VertexId,
    max_iterations: Option<u32>,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
    cycle_budget: Option<u64>,
}

impl QueryRequest {
    /// A plain query rooted at `seed` (validated against the bound
    /// graph when served, like [`crate::session::RunBuilder::source`]).
    pub fn new(seed: VertexId) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Overrides the config's iteration cap for this query only.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Attaches a cancellation token (keep a clone to cancel the query
    /// from any thread, whether it is still queued or already running).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps this query's wall-clock time **from submission**: time
    /// spent waiting in the queue counts, so an expired deadline
    /// aborts the query the moment a serving thread picks it up.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Caps this query's simulated device cycles
    /// ([`crate::session::RunBuilder::cycle_budget`]).
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }
}

/// Receipt for an admitted query: its index into
/// [`ServeReport::outcomes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryTicket {
    index: usize,
}

impl QueryTicket {
    /// The outcome slot this ticket's result lands in.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// The served result of one admitted query.
#[derive(Clone, Debug)]
pub struct ServeOutcome<M: Copy> {
    /// The query's seed vertex.
    pub seed: VertexId,
    /// The run's result — bit-equal to a solo run of the same query —
    /// or its typed abort.
    pub result: Result<RunResult<M>, SimdxError>,
    /// Submission-to-completion latency (queue wait included, retries
    /// included).
    pub latency: Duration,
    /// Serving attempts this query took (1 = served without retrying;
    /// 0 never occurs for a served query — a queued query cancelled by
    /// an abort-mode close reports 0 attempts).
    pub attempts: u32,
    /// The query's last boundary checkpoint when it aborted with
    /// capture armed ([`ServiceConfig::checkpoint_aborts`] or a
    /// multi-attempt [`RetryPolicy`] with attempts exhausted) — resume
    /// it with [`crate::session::BoundGraph::resume`]. `None` on
    /// success, with capture unarmed, or when the abort struck before
    /// the first iteration boundary.
    pub checkpoint: Option<RunCheckpoint<M>>,
}

/// Everything one [`QueryPool::serve`] call produced.
#[derive(Clone, Debug)]
pub struct ServeReport<M: Copy> {
    /// One outcome per admitted ticket, in ticket order
    /// ([`QueryTicket::index`] indexes this). Rejected submissions
    /// ([`AdmissionPolicy::Reject`]) never got a ticket and do not
    /// appear.
    pub outcomes: Vec<ServeOutcome<M>>,
    /// Serving-thread turns taken — `outcomes.len() / batches` is the
    /// achieved batching factor.
    pub batches: u64,
    /// Wall-clock time of the whole closed loop (first submission
    /// possible to last query drained).
    pub elapsed: Duration,
    /// Tickets whose final-failure checkpoints were durably spilled
    /// ([`ServiceConfig::durability`]), ascending — recover them with
    /// [`QueryPool::recover`]. Empty when durability is unarmed.
    pub spilled: Vec<u64>,
    /// Spills that themselves failed (ticket, typed store error). The
    /// query's outcome still carries its in-memory checkpoint; only
    /// the durable copy is missing.
    pub spill_failures: Vec<(u64, SimdxError)>,
}

impl<M: Copy> ServeReport<M> {
    /// Served queries that completed without an error.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Closed-loop throughput over every admitted query.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Nearest-rank latency percentile (`p` in `[0, 100]`) over every
    /// admitted query's submission-to-completion latency.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let mut lat: Vec<Duration> = self.outcomes.iter().map(|o| o.latency).collect();
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.saturating_sub(1).min(lat.len() - 1)]
    }
}

/// One admitted, not-yet-served request.
struct Entry {
    ticket: usize,
    request: QueryRequest,
    submitted: Instant,
}

struct QueueState {
    queue: VecDeque<Entry>,
    next_ticket: usize,
    closed: bool,
    /// Set by [`CloseMode::Abort`]: serving threads hand queued entries
    /// back as zero-progress cancellations instead of running them.
    aborted: bool,
}

/// The worker-panic circuit breaker as a standalone, explicitly-timed
/// state machine: closed (healthy) when `opened_at` is `None`; open
/// (shedding) while `opened_at` is within the cooldown; half-open (one
/// probe in flight) when `probing`.
///
/// [`QueryPool`] wraps one in a mutex and feeds it `Instant::now()`;
/// every transition takes the clock as an argument, so the
/// deterministic interleaving harness (`tests/model_interleave.rs`)
/// drives the same machine through enumerated schedules and synthetic
/// clocks — no wall-clock read hides inside a transition.
#[derive(Debug)]
pub struct Breaker {
    /// Consecutive worker-panic final outcomes observed while closed.
    consecutive: u32,
    /// When the breaker last opened; `None` = closed.
    opened_at: Option<Instant>,
    /// A half-open probe query has been admitted and its outcome is
    /// still pending; further submissions shed until it lands.
    probing: bool,
    /// Opens after this many consecutive worker-panic outcomes.
    threshold: u32,
    /// How long an open breaker sheds before half-opening.
    cooldown: Duration,
}

impl Breaker {
    /// A closed breaker opening after `threshold` consecutive
    /// worker-panic outcomes and shedding for `cooldown` before each
    /// half-open probe.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            consecutive: 0,
            opened_at: None,
            probing: false,
            threshold,
            cooldown,
        }
    }

    /// Admission gate: `Ok(())` admits the submission (possibly as the
    /// half-open probe), `Err(retry_after)` sheds it.
    pub fn admit(&mut self, now: Instant) -> Result<(), Duration> {
        if let Some(opened) = self.opened_at {
            let elapsed = now.saturating_duration_since(opened);
            if elapsed < self.cooldown {
                return Err(self.cooldown - elapsed);
            }
            // Cooled down: half-open. Admit exactly one probe; shed the
            // rest until its outcome lands.
            if self.probing {
                return Err(self.cooldown);
            }
            self.probing = true;
        }
        Ok(())
    }

    /// Feeds one query's *final* outcome into the machine: `panicked`
    /// means a worker-panic outcome (the only failure kind that speaks
    /// to service health).
    pub fn record(&mut self, panicked: bool, now: Instant) {
        if panicked {
            self.consecutive += 1;
            if self.probing || self.consecutive >= self.threshold {
                // Threshold tripped, or the half-open probe died:
                // (re)open for a fresh cooldown.
                self.opened_at = Some(now);
                self.probing = false;
                self.consecutive = 0;
            }
        } else {
            self.consecutive = 0;
            self.opened_at = None;
            self.probing = false;
        }
    }

    /// Whether a submission at `now` would be shed (open and still
    /// cooling, or half-open with the probe outstanding).
    pub fn is_shedding(&self, now: Instant) -> bool {
        match self.opened_at {
            None => false,
            Some(opened) => now.saturating_duration_since(opened) < self.cooldown || self.probing,
        }
    }
}

/// The bounded submission queue shared by the producer and the serving
/// threads. Plain `Mutex` + two `Condvar`s: submitters wait on
/// `not_full` (blocking admission), serving threads on `not_empty`.
struct SharedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
    admission: AdmissionPolicy,
    /// `Some` when [`ServiceConfig::breaker_threshold`] > 0.
    breaker: Option<Mutex<Breaker>>,
    /// Pool-wide shutdown token; cancelled by [`CloseMode::Abort`] and
    /// attached to every query's supervisor so in-flight runs abort at
    /// their next supervision check.
    shutdown: CancelToken,
}

impl SharedQueue {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Breaker gate at submit time: `Err(Unavailable)` sheds the
    /// submission, `Ok(())` admits it (possibly as the half-open
    /// probe).
    fn breaker_admit(&self) -> Result<(), SimdxError> {
        let Some(breaker) = &self.breaker else {
            return Ok(());
        };
        breaker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .admit(Instant::now())
            .map_err(|retry_after| SimdxError::Unavailable { retry_after })
    }

    /// Feeds one query's *final* outcome (retries already exhausted or
    /// not configured) into the breaker. Only worker panics count as
    /// failures: supervision aborts and invalid queries say nothing
    /// about service health.
    fn breaker_record(&self, panicked: bool) {
        let Some(breaker) = &self.breaker else {
            return;
        };
        breaker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(panicked, Instant::now());
    }
}

/// The producer's handle into a running [`QueryPool::serve`] call.
pub struct QueryClient<'a> {
    shared: &'a SharedQueue,
}

impl QueryClient<'_> {
    /// Submits one query. Under [`AdmissionPolicy::Block`] this waits
    /// for queue space; under [`AdmissionPolicy::Reject`] a full queue
    /// fails with [`SimdxError::Overloaded`] and the query is never
    /// admitted. An open circuit breaker sheds the submission with
    /// [`SimdxError::Unavailable`] before it touches the queue, and a
    /// closed pool ([`Self::close`]) rejects it as
    /// [`SimdxError::InvalidQuery`]. On success the returned ticket
    /// indexes the query's slot in [`ServeReport::outcomes`].
    pub fn submit(&self, request: QueryRequest) -> Result<QueryTicket, SimdxError> {
        self.shared.breaker_admit()?;
        let index;
        {
            let mut st = self.shared.lock();
            loop {
                if st.closed {
                    return Err(SimdxError::InvalidQuery {
                        reason: "query pool is closed".to_string(),
                    });
                }
                if st.queue.len() < self.shared.depth {
                    break;
                }
                match self.shared.admission {
                    AdmissionPolicy::Reject => {
                        return Err(SimdxError::Overloaded {
                            capacity: self.shared.depth,
                            depth: st.queue.len(),
                        })
                    }
                    AdmissionPolicy::Block => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
            index = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(Entry {
                ticket: index,
                request,
                submitted: Instant::now(),
            });
        }
        self.shared.not_empty.notify_one();
        Ok(QueryTicket { index })
    }

    /// Requests currently admitted but not yet picked up.
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Closes the pool from inside the producer. Later [`Self::submit`]
    /// calls fail with [`SimdxError::InvalidQuery`]; what happens to
    /// already-admitted work depends on the mode:
    ///
    /// - [`CloseMode::Drain`] finishes everything admitted — identical
    ///   to returning from the producer, just earlier.
    /// - [`CloseMode::Abort`] cancels the pool-wide shutdown token so
    ///   in-flight queries abort at their next supervision check
    ///   ([`SimdxError::Cancelled`], checkpoint attached when capture
    ///   is armed), and queued-but-unserved queries come back as
    ///   zero-progress, zero-attempt cancellations. Every admitted
    ///   ticket still gets its outcome slot in the report.
    ///
    /// Idempotent; an `Abort` after a `Drain` still escalates.
    pub fn close(&self, mode: CloseMode) {
        {
            let mut st = self.shared.lock();
            st.closed = true;
            if mode == CloseMode::Abort {
                st.aborted = true;
            }
        }
        if mode == CloseMode::Abort {
            self.shared.shutdown.cancel();
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

/// The concurrent serving front-end; see the module docs.
pub struct QueryPool;

impl QueryPool {
    /// Serves queries over `bound` with `config.workers` scoped
    /// serving threads while `producer` — run on the calling thread —
    /// submits them through the [`QueryClient`]. When the producer
    /// returns, the queue closes, every admitted query is drained, and
    /// the per-ticket outcomes come back as a [`ServeReport`].
    ///
    /// A producer error cancels nothing retroactively: already
    /// admitted queries still run, but their outcomes are discarded
    /// with the error. Propagate submission failures only when that is
    /// acceptable (a load-shedding producer should tolerate
    /// [`SimdxError::Overloaded`] instead).
    pub fn serve<P, F>(
        bound: &BoundGraph<'_, '_>,
        program: P,
        config: ServiceConfig,
        producer: F,
    ) -> Result<ServeReport<P::Meta>, SimdxError>
    where
        P: SourcedProgram,
        P::Meta: PersistMeta,
        F: FnOnce(&QueryClient<'_>) -> Result<(), SimdxError>,
    {
        config.validate()?;
        let shared = SharedQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_depth),
                next_ticket: 0,
                closed: false,
                aborted: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: config.queue_depth,
            admission: config.admission,
            breaker: (config.breaker_threshold > 0).then(|| {
                Mutex::new(Breaker::new(
                    config.breaker_threshold,
                    config.breaker_cooldown,
                ))
            }),
            shutdown: CancelToken::new(),
        };
        let slots: Mutex<Vec<Option<ServeOutcome<P::Meta>>>> = Mutex::new(Vec::new());
        let spills: Mutex<SpillLog> = Mutex::new(SpillLog::default());
        let batches = AtomicU64::new(0);
        let started = Instant::now();
        let produced = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(config.workers);
            let mut spawn_failed = None;
            for w in 0..config.workers {
                let (shared, slots, spills, batches, program, config) =
                    (&shared, &slots, &spills, &batches, &program, &config);
                let spawned = std::thread::Builder::new()
                    .name(format!("simdx-serve-{w}"))
                    .spawn_scoped(scope, move || {
                        serve_loop(bound, program, config, shared, slots, spills, batches);
                    });
                match spawned {
                    Ok(handle) => handles.push(handle),
                    Err(e) => {
                        // OS thread exhaustion is an operator problem,
                        // not a panic: close the queue (nothing was
                        // admitted yet — the producer never ran), let
                        // any already-spawned workers drain out, and
                        // surface a typed error.
                        spawn_failed = Some(SimdxError::InvalidConfig {
                            reason: format!(
                                "cannot spawn serving thread {w} of {}: {e}",
                                config.workers
                            ),
                        });
                        break;
                    }
                }
            }
            let produced = match spawn_failed {
                None => producer(&QueryClient { shared: &shared }),
                Some(err) => Err(err),
            };
            shared.close();
            for handle in handles {
                // Engine panics are contained inside execute_query, so
                // a serving thread only dies of a harness bug; don't
                // swallow that.
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            produced
        });
        produced?;
        let slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut outcomes = Vec::with_capacity(slots.len());
        for (ticket, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(outcome) => outcomes.push(outcome),
                // Unreachable by construction (every drained entry is
                // published, abort-mode orphans included); surface a
                // typed error rather than panicking if the invariant
                // ever breaks.
                None => {
                    return Err(SimdxError::InvalidQuery {
                        reason: format!(
                            "internal serving invariant broken: \
                             ticket {ticket} was admitted but never produced an outcome"
                        ),
                    })
                }
            }
        }
        let mut spills = spills.into_inner().unwrap_or_else(PoisonError::into_inner);
        spills.spilled.sort_unstable();
        spills.failures.sort_unstable_by_key(|(ticket, _)| *ticket);
        Ok(ServeReport {
            outcomes,
            batches: batches.into_inner(),
            elapsed: started.elapsed(),
            spilled: spills.spilled,
            spill_failures: spills.failures,
        })
    }

    /// Scans `store` for checkpoints spilled by an earlier process
    /// ([`ServiceConfig::durability`]) and resumes each one over
    /// `bound` via [`crate::session::BoundGraph::resume`] — completing
    /// it **bit-equal** to the uninterrupted run (same metadata,
    /// activation log and simulated cycles; the resume contract).
    ///
    /// Per ticket, ascending: the blob is read and decoded; a
    /// truncated, bit-flipped or version-skewed blob is *skipped* —
    /// diagnosed into [`RecoveryReport::skipped`] with its typed
    /// [`SimdxError::CheckpointCorrupt`] / [`SimdxError::CheckpointIo`]
    /// and left on disk for forensics — never a panic. A blob that
    /// decodes is resumed; on success its file is removed from the
    /// store, on a fresh abort it is kept (still resumable later) and
    /// the typed error lands in the ticket's [`RecoveredQuery`].
    ///
    /// Recovery runs on the calling thread (it is a startup path, not
    /// a serving path); admit the recovered results however suits the
    /// caller before opening a fresh [`QueryPool::serve`] loop.
    pub fn recover<P>(
        bound: &BoundGraph<'_, '_>,
        program: P,
        store: &dyn CheckpointStore,
    ) -> Result<RecoveryReport<P::Meta>, SimdxError>
    where
        P: SourcedProgram,
        P::Meta: PersistMeta,
    {
        let mut recovered = Vec::new();
        let mut skipped = Vec::new();
        for ticket in store.tickets()? {
            let frame = match persist::load::<P::Meta>(store, ticket) {
                Ok(frame) => frame,
                Err(error) => {
                    skipped.push((ticket, error));
                    continue;
                }
            };
            let seed = frame.seed;
            let resumed_from = frame.checkpoint.iteration();
            let result = bound
                .resume(program.clone().with_source(seed), frame.checkpoint)
                .execute();
            let result = match result {
                Ok(run) => {
                    store.remove(ticket)?;
                    Ok(run)
                }
                Err(aborted) => Err(aborted.into_parts().0),
            };
            recovered.push(RecoveredQuery {
                ticket,
                seed,
                resumed_from,
                result,
            });
        }
        Ok(RecoveryReport { recovered, skipped })
    }
}

/// One durable checkpoint [`QueryPool::recover`] picked back up.
#[derive(Clone, Debug)]
pub struct RecoveredQuery<M: Copy> {
    /// The ticket the originating process spilled the checkpoint
    /// under.
    pub ticket: u64,
    /// The query's seed vertex, restored from the blob.
    pub seed: VertexId,
    /// The boundary iteration the resume continued from.
    pub resumed_from: u32,
    /// The completed run — bit-equal to an uninterrupted one — or the
    /// typed abort the *resume* hit (in which case the blob stays in
    /// the store).
    pub result: Result<RunResult<M>, SimdxError>,
}

/// Everything one [`QueryPool::recover`] scan produced.
#[derive(Clone, Debug)]
pub struct RecoveryReport<M: Copy> {
    /// One entry per decodable spilled ticket, ascending.
    pub recovered: Vec<RecoveredQuery<M>>,
    /// Blobs that failed to read or validate (ticket, typed error) —
    /// skipped and left in the store, never trusted.
    pub skipped: Vec<(u64, SimdxError)>,
}

impl<M: Copy> RecoveryReport<M> {
    /// Recovered queries that ran to completion.
    pub fn completed(&self) -> usize {
        self.recovered.iter().filter(|r| r.result.is_ok()).count()
    }
}

/// Spill bookkeeping shared by the serving threads.
#[derive(Default)]
struct SpillLog {
    spilled: Vec<u64>,
    failures: Vec<(u64, SimdxError)>,
}

/// One serving thread: drain up to `batch_max` requests per turn, run
/// them over a single scratch checkout, publish each outcome (spilling
/// final-failure checkpoints when durability is armed).
fn serve_loop<P: SourcedProgram>(
    bound: &BoundGraph<'_, '_>,
    program: &P,
    config: &ServiceConfig,
    shared: &SharedQueue,
    slots: &Mutex<Vec<Option<ServeOutcome<P::Meta>>>>,
    spills: &Mutex<SpillLog>,
    batches: &AtomicU64,
) where
    P::Meta: PersistMeta,
{
    let arm = config.arms_checkpoints();
    loop {
        let batch: Vec<Entry> = {
            let mut st = shared.lock();
            loop {
                if st.aborted {
                    // Abort-mode close: hand every still-queued entry
                    // back as a zero-progress cancellation instead of
                    // running it. In-flight peers abort on their own
                    // via the shutdown token.
                    let orphans: Vec<Entry> = st.queue.drain(..).collect();
                    drop(st);
                    shared.not_full.notify_all();
                    for entry in orphans {
                        publish(slots, entry.ticket, cancelled_unserved(&entry));
                    }
                    return;
                }
                if !st.queue.is_empty() {
                    let n = config.batch_max.min(st.queue.len());
                    break st.queue.drain(..n).collect();
                }
                if st.closed {
                    return;
                }
                st = shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.not_full.notify_all();
        let mut scratch = bound.checkout_scratch::<P::Meta>();
        for entry in batch {
            let mut outcome = serve_one(
                bound,
                program,
                &entry,
                &mut scratch,
                config.retry,
                arm,
                &shared.shutdown,
            );
            shared.breaker_record(matches!(
                outcome.result,
                Err(SimdxError::WorkerPanicked { .. })
            ));
            // Durable spill: a final failure that carries a boundary
            // checkpoint is persisted under its ticket so a later
            // process can resume it. The checkpoint travels through
            // the frame and back — no clone, and the submitter still
            // gets the in-memory copy whether or not the spill stuck.
            if let (Some(policy), Err(_)) = (&config.durability, &outcome.result) {
                if let Some(checkpoint) = outcome.checkpoint.take() {
                    let frame = DurableCheckpoint {
                        ticket: entry.ticket as u64,
                        seed: outcome.seed,
                        checkpoint,
                    };
                    let spill_result = persist::spill(policy.store(), &frame);
                    let mut log = spills.lock().unwrap_or_else(PoisonError::into_inner);
                    match spill_result {
                        Ok(()) => log.spilled.push(frame.ticket),
                        Err(error) => log.failures.push((frame.ticket, error)),
                    }
                    drop(log);
                    outcome.checkpoint = Some(frame.checkpoint);
                }
            }
            publish(slots, entry.ticket, outcome);
        }
        bound.checkin_scratch(scratch);
        // ORDERING: `batches` is a diagnostic counter aggregated into
        // the serve report after `thread::scope` has joined every
        // serving thread (a full synchronization point); the increments
        // guard no data, so Relaxed is sufficient.
        batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// Lands one outcome in its ticket's slot.
fn publish<M: Copy>(
    slots: &Mutex<Vec<Option<ServeOutcome<M>>>>,
    ticket: usize,
    outcome: ServeOutcome<M>,
) {
    let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
    if slots.len() <= ticket {
        slots.resize_with(ticket + 1, || None);
    }
    slots[ticket] = Some(outcome);
}

/// The outcome of a queued query orphaned by an abort-mode close: a
/// zero-progress, zero-attempt cancellation — it never started, so
/// there is nothing to checkpoint.
fn cancelled_unserved<M: Copy>(entry: &Entry) -> ServeOutcome<M> {
    ServeOutcome {
        seed: entry.request.seed,
        result: Err(SimdxError::Cancelled {
            progress: RunProgress {
                iterations: 0,
                edges_examined: 0,
                elapsed: entry.submitted.elapsed(),
            },
        }),
        latency: entry.submitted.elapsed(),
        attempts: 0,
        checkpoint: None,
    }
}

/// Runs one query to its final outcome: up to `retry.max_attempts`
/// attempts, each after the first resuming from the previous attempt's
/// boundary checkpoint (when `arm` captured one).
fn serve_one<P: SourcedProgram>(
    bound: &BoundGraph<'_, '_>,
    program: &P,
    entry: &Entry,
    scratch: &mut IterScratch<P::Meta>,
    retry: RetryPolicy,
    arm: bool,
    shutdown: &CancelToken,
) -> ServeOutcome<P::Meta> {
    let mut slot: Option<RunCheckpoint<P::Meta>> = None;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        // The deadline covers submit→completion on the first attempt:
        // shrink it by the queue wait (saturating to an immediate,
        // typed abort when the query waited its whole deadline out in
        // the queue). Retried attempts get the full allowance fresh
        // from their own start — otherwise a deadline-tripped query
        // would re-trip before resuming a single iteration.
        let remaining = entry.request.deadline.map(|d| {
            if attempts == 1 {
                d.saturating_sub(entry.submitted.elapsed())
            } else {
                d
            }
        });
        let resume = slot.take();
        // A resumed attempt's cycle budget is granted on top of the
        // checkpoint's already-spent cycles (the `BoundGraph::resume`
        // contract), so every retry buys forward progress instead of
        // re-tripping at the boundary it just aborted at.
        let cycle_budget = entry
            .request
            .cycle_budget
            .map(|b| b.saturating_add(resume.as_ref().map_or(0, RunCheckpoint::cycles)));
        let supervisor = Supervisor::new(entry.request.cancel.clone(), remaining, cycle_budget)
            .with_shutdown(shutdown.clone());
        let result = if arm {
            bound.execute_query_resumable(
                program,
                entry.request.seed,
                entry.request.max_iterations,
                &supervisor,
                scratch,
                resume,
                &mut slot,
            )
        } else {
            bound.execute_query(
                program,
                entry.request.seed,
                entry.request.max_iterations,
                &supervisor,
                scratch,
            )
        };
        match result {
            Ok(run) => {
                return ServeOutcome {
                    seed: entry.request.seed,
                    result: Ok(run),
                    latency: entry.submitted.elapsed(),
                    attempts,
                    checkpoint: None,
                }
            }
            Err(error) => {
                // Transient aborts retry; a cancellation is the
                // caller's decision (and an abort-mode shutdown's), and
                // an invalid query will never get better.
                let transient = matches!(
                    error,
                    SimdxError::WorkerPanicked { .. }
                        | SimdxError::DeadlineExceeded { .. }
                        | SimdxError::BudgetExhausted { .. }
                );
                if transient && attempts < retry.max_attempts && !shutdown.is_cancelled() {
                    if !retry.backoff.is_zero() {
                        std::thread::sleep(retry.backoff * 2u32.saturating_pow(attempts - 1));
                    }
                    continue;
                }
                return ServeOutcome {
                    seed: entry.request.seed,
                    result: Err(error),
                    latency: entry.submitted.elapsed(),
                    attempts,
                    checkpoint: slot.take(),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_config_validates_and_composes() {
        let cfg = ServiceConfig::default()
            .workers(4)
            .queue_depth(16)
            .batch_max(2)
            .admission(AdmissionPolicy::Reject)
            .retry(
                RetryPolicy::default()
                    .max_attempts(3)
                    .backoff(Duration::from_millis(5)),
            )
            .breaker(2, Duration::from_millis(50))
            .checkpoint_aborts(true);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.batch_max, 2);
        assert_eq!(cfg.admission, AdmissionPolicy::Reject);
        assert_eq!(
            cfg.retry,
            RetryPolicy {
                max_attempts: 3,
                backoff: Duration::from_millis(5)
            }
        );
        assert_eq!(cfg.breaker_threshold, 2);
        assert_eq!(cfg.breaker_cooldown, Duration::from_millis(50));
        assert!(cfg.checkpoint_aborts);
        assert!(cfg.validate().is_ok());
        for broken in [
            ServiceConfig::default().workers(0),
            ServiceConfig::default().queue_depth(0),
            ServiceConfig::default().batch_max(0),
            ServiceConfig::default().retry(RetryPolicy::default().max_attempts(0)),
            ServiceConfig::default().breaker(1, Duration::ZERO),
        ] {
            assert!(matches!(
                broken.validate(),
                Err(SimdxError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn default_config_stays_on_the_zero_overhead_path() {
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.retry, RetryPolicy::default());
        assert_eq!(cfg.retry.max_attempts, 1);
        assert_eq!(cfg.breaker_threshold, 0);
        assert!(!cfg.checkpoint_aborts);
        assert!(!cfg.arms_checkpoints());
        // Retries imply capture; so does an explicit request.
        assert!(ServiceConfig::default()
            .retry(RetryPolicy::default().max_attempts(2))
            .arms_checkpoints());
        assert!(ServiceConfig::default()
            .checkpoint_aborts(true)
            .arms_checkpoints());
    }

    #[test]
    fn breaker_opens_sheds_and_probes_back() {
        let shared = SharedQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                next_ticket: 0,
                closed: false,
                aborted: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: 4,
            admission: AdmissionPolicy::Reject,
            breaker: Some(Mutex::new(Breaker::new(2, Duration::from_millis(20)))),
            shutdown: CancelToken::new(),
        };
        // Healthy: admits freely; one panic is below threshold.
        assert!(shared.breaker_admit().is_ok());
        shared.breaker_record(true);
        assert!(shared.breaker_admit().is_ok());
        // Second consecutive panic trips the threshold: open, shedding
        // with a retry-after hint.
        shared.breaker_record(true);
        match shared.breaker_admit() {
            Err(SimdxError::Unavailable { retry_after }) => {
                assert!(retry_after <= Duration::from_millis(20));
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        // A success between panics resets the consecutive count.
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: half-open admits exactly one probe...
        assert!(shared.breaker_admit().is_ok());
        // ...and sheds everything else while the probe is pending.
        assert!(matches!(
            shared.breaker_admit(),
            Err(SimdxError::Unavailable { .. })
        ));
        // Probe panicking reopens for a fresh cooldown.
        shared.breaker_record(true);
        assert!(matches!(
            shared.breaker_admit(),
            Err(SimdxError::Unavailable { .. })
        ));
        std::thread::sleep(Duration::from_millis(25));
        // Probe succeeding closes the breaker again.
        assert!(shared.breaker_admit().is_ok());
        shared.breaker_record(false);
        assert!(shared.breaker_admit().is_ok());
        shared.breaker_record(true);
        assert!(
            shared.breaker_admit().is_ok(),
            "count restarted after close"
        );
    }

    #[test]
    fn report_percentiles_use_nearest_rank() {
        let report = ServeReport::<u32> {
            outcomes: (1..=4u64)
                .map(|ms| ServeOutcome {
                    seed: 0,
                    result: Err(SimdxError::OnlineOverflow { iteration: 0 }),
                    latency: Duration::from_millis(ms),
                    attempts: 1,
                    checkpoint: None,
                })
                .collect(),
            batches: 1,
            elapsed: Duration::from_millis(10),
            spilled: Vec::new(),
            spill_failures: Vec::new(),
        };
        assert_eq!(report.latency_percentile(50.0), Duration::from_millis(2));
        assert_eq!(report.latency_percentile(99.0), Duration::from_millis(4));
        assert_eq!(report.latency_percentile(0.0), Duration::from_millis(1));
        assert_eq!(report.completed(), 0);
        assert!(report.queries_per_sec() > 0.0);
        let empty = ServeReport::<u32> {
            outcomes: Vec::new(),
            batches: 0,
            elapsed: Duration::ZERO,
            spilled: Vec::new(),
            spill_failures: Vec::new(),
        };
        assert_eq!(empty.latency_percentile(99.0), Duration::ZERO);
        assert_eq!(empty.queries_per_sec(), 0.0);
    }
}
