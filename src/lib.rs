//! Umbrella crate re-exporting the SIMD-X workspace.
pub use simdx_algos as algos;
pub use simdx_baselines as baselines;
pub use simdx_core as core;
pub use simdx_gpu as gpu;
pub use simdx_graph as graph;
