//! Regenerates **Table 3**: the graph dataset inventory, side by side
//! with the scaled twins this reproduction actually runs (DESIGN.md §7).

use simdx_bench::{load, print_table, GRAPH_ORDER, SEED};
use simdx_graph::stats;

fn main() {
    let header = [
        "Graph",
        "Abbrev",
        "Class",
        "Paper |V|",
        "Paper |E|",
        "Twin |V|",
        "Twin |E|",
        "Twin diam",
        "Gini",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect::<Vec<_>>();
    let mut rows = Vec::new();
    for abbrev in GRAPH_ORDER {
        let (spec, g) = load(abbrev);
        let diam = stats::estimate_diameter(g.out(), 2, SEED);
        let gini = stats::degree_gini(g.out());
        rows.push(vec![
            spec.name.to_string(),
            spec.abbrev.to_string(),
            format!("{:?}", spec.class),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            diam.to_string(),
            format!("{gini:.2}"),
        ]);
    }
    print_table(
        "Table 3: graph datasets (paper scale vs 1/64 twins)",
        &header,
        &rows,
    );
}
