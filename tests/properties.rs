//! Property-based tests over randomly generated graphs: the invariants
//! the paper's mechanisms rest on must hold for *every* input, not just
//! the dataset twins.

use proptest::prelude::*;
use simdx::algos::{bfs, kcore, reference, sssp, wcc, Bfs};
use simdx::core::metadata::{CHUNK_ALIGN, CHUNK_LANES};
use simdx::core::persist::{self, DurableCheckpoint};
use simdx::core::prelude::*;
use simdx::core::{FilterPolicy, FrontierBitmap, GridCsr, MetadataStore};
use simdx::graph::{io, weights, Csr, EdgeList, Graph};
use std::collections::BTreeSet;

/// Strategy: an arbitrary directed graph with up to `max_v` vertices.
fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(move |n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..max_e)))
}

/// Strategy: a bitmap size (deliberately word- and warp-misaligned most
/// of the time) plus an arbitrary set/clear/test op sequence over it.
fn arb_bitmap_ops(max_v: u32, max_ops: usize) -> impl Strategy<Value = (u32, Vec<(u8, u32)>)> {
    (2..max_v).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0u8..3, 0..n), 0..max_ops),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR construction round-trips through the binary codec.
    #[test]
    fn csr_codec_roundtrip((n, edges) in arb_edges(64, 200)) {
        let mut el = EdgeList::new(n);
        for (s, d) in edges {
            el.push(s, d);
        }
        let csr = Csr::from_edge_list(&el);
        let decoded = io::decode_csr(&io::encode_csr(&csr)).expect("roundtrip");
        prop_assert_eq!(decoded, csr);
    }

    /// CSR invariants: offsets monotone, degrees sum to |E|, neighbors
    /// sorted.
    #[test]
    fn csr_invariants((n, edges) in arb_edges(64, 200)) {
        let mut el = EdgeList::new(n);
        for (s, d) in edges {
            el.push(s, d);
        }
        let csr = Csr::from_edge_list(&el);
        prop_assert!(csr.offsets().windows(2).all(|w| w[0] <= w[1]));
        let deg_sum: u64 = (0..csr.num_vertices()).map(|v| csr.degree(v) as u64).sum();
        prop_assert_eq!(deg_sum, csr.num_edges());
        for v in 0..csr.num_vertices() {
            prop_assert!(csr.neighbors(v).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution((n, edges) in arb_edges(48, 150)) {
        let mut el = EdgeList::new(n);
        for (s, d) in edges {
            el.push(s, d);
        }
        el.dedup();
        let csr = Csr::from_edge_list(&el);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// [`FrontierBitmap`] agrees with a `BTreeSet` model under
    /// arbitrary set/clear/test sequences: same membership, same
    /// popcount cardinality, same ascending iteration and drain order.
    #[test]
    fn bitmap_matches_btreeset_model((n, ops) in arb_bitmap_ops(300, 120)) {
        let mut bm = FrontierBitmap::new(n as usize);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for (op, v) in ops {
            match op {
                0 => {
                    bm.set(v);
                    model.insert(v);
                }
                1 => {
                    bm.unset(v);
                    model.remove(&v);
                }
                _ => prop_assert_eq!(bm.test(v), model.contains(&v)),
            }
        }
        let expected: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(bm.count(), expected.len() as u64);
        prop_assert_eq!(bm.is_empty(), expected.is_empty());
        prop_assert_eq!(bm.iter().collect::<Vec<_>>(), expected.clone());
        let mut drained = Vec::new();
        bm.drain_into(&mut drained);
        prop_assert_eq!(drained, expected);
        prop_assert!(bm.is_empty());
    }

    /// [`MetadataStore`] agrees with a plain `Vec` model in both
    /// layouts under arbitrary construction + point-write sequences:
    /// same elements at same indices, same length, same round-trip
    /// through `clone` and `into_vec`. Lengths are deliberately
    /// warp-misaligned most of the time, so the chunked layout's
    /// partial tail chunk (n % 32 != 0) is exercised constantly, and
    /// the chunked buffer must start on a cache-line boundary.
    #[test]
    fn metadata_store_matches_vec_model(
        (n, writes) in (1u32..200).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..u32::MAX), 0..64))
        }),
    ) {
        let init: Vec<u32> = (0..n).map(|i: u32| i.wrapping_mul(2_654_435_761)).collect();
        let mut model = init.clone();
        let mut flat = MetadataStore::from_vec(MetadataLayout::Flat, init.clone());
        let mut chunked = MetadataStore::from_vec(MetadataLayout::Chunked, init);
        prop_assert_eq!(
            chunked.as_slice().as_ptr() as usize % CHUNK_ALIGN,
            0,
            "chunked buffer must be cache-line aligned"
        );
        prop_assert_eq!(chunked.num_chunks(), (n as usize).div_ceil(CHUNK_LANES));
        for (v, x) in writes {
            model[v as usize] = x;
            flat.as_mut_slice()[v as usize] = x;
            chunked.as_mut_slice()[v as usize] = x;
        }
        prop_assert_eq!(flat.as_slice(), model.as_slice());
        prop_assert_eq!(chunked.as_slice(), model.as_slice());
        prop_assert_eq!(flat.len(), model.len());
        prop_assert_eq!(chunked.len(), model.len());
        let cloned = chunked.clone();
        prop_assert_eq!(cloned.as_slice(), model.as_slice());
        prop_assert_eq!(flat.into_vec(), model.clone());
        prop_assert_eq!(chunked.into_vec(), model);
    }

    /// A sorted, duplicate-free worklist round-trips through the
    /// bitmap representation unchanged, including at warp-misaligned
    /// lengths (partial tail words).
    #[test]
    fn bitmap_roundtrips_sorted_worklists((n, raw) in arb_bitmap_ops(200, 80)) {
        let mut list: Vec<u32> = raw.into_iter().map(|(_, v)| v).collect();
        list.sort_unstable();
        list.dedup();
        let mut bm = FrontierBitmap::default();
        bm.fill_from_list(n as usize, &list);
        prop_assert_eq!(bm.num_words(), (n as usize).div_ceil(64));
        prop_assert_eq!(bm.count(), list.len() as u64);
        let mut out = Vec::new();
        bm.collect_into(&mut out);
        prop_assert_eq!(out, list);
    }

    /// The grid CSR is a lossless destination-bucketed partition of
    /// the adjacency for *any* monotone fences: every shard's cell
    /// holds exactly the source's edges into the shard's vertex range,
    /// in original adjacency order with original offsets and weights,
    /// and reassembling the cells by offset reproduces the CSR.
    #[test]
    fn grid_csr_partitions_any_adjacency(
        (n, edges) in arb_edges(48, 150),
        cuts in proptest::collection::vec(0u32..48, 0..5),
        wseed in 0u64..100,
    ) {
        let el = EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        );
        let el = weights::assign_default_weights(&el, wseed);
        let csr = Csr::from_edge_list(&el);
        let n = csr.num_vertices();
        let mut fences: Vec<u32> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        fences.push(0);
        fences.push(n);
        fences.sort_unstable();
        let grid = GridCsr::build(&csr, &fences);
        prop_assert_eq!(grid.num_shards(), fences.len() - 1);
        prop_assert_eq!(grid.num_edges(), csr.num_edges());
        for v in 0..n {
            let mut rebuilt: Vec<(u32, u32, u32)> = Vec::new();
            for s in 0..grid.num_shards() {
                let sh = grid.shard(s);
                let (lo, hi) = sh.range(v);
                // Cell edges stay inside the shard's vertex range, in
                // strictly ascending adjacency-offset order.
                prop_assert!(sh.edge_offs()[lo..hi].windows(2).all(|w| w[0] < w[1]));
                for i in lo..hi {
                    let t = sh.targets()[i];
                    prop_assert!((fences[s]..fences[s + 1]).contains(&t));
                    rebuilt.push((
                        sh.edge_offs()[i],
                        t,
                        sh.weights().expect("weighted grid")[i],
                    ));
                }
            }
            rebuilt.sort_unstable_by_key(|&(off, _, _)| off);
            let expect: Vec<(u32, u32, u32)> = csr
                .neighbors(v)
                .iter()
                .enumerate()
                .map(|(k, &t)| (k as u32, t, csr.neighbor_weights(v).expect("weighted")[k]))
                .collect();
            prop_assert_eq!(rebuilt, expect, "vertex {} cells do not partition", v);
        }
    }

    /// The grid push strategy is bit-equal to the scan strategy on
    /// arbitrary graphs: same metadata, same activation log, same
    /// simulated cycle counts (the strategy axis of the determinism
    /// contract, at property scale).
    #[test]
    fn push_strategies_bit_equal_on_arbitrary_graphs((n, edges) in arb_edges(48, 150)) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let base = EngineConfig::unscaled().parallel(3);
        let scan = bfs::run(&g, 0, base.clone().scan_push()).expect("scan bfs");
        let grid = bfs::run(&g, 0, base.with_push(PushStrategy::Grid)).expect("grid bfs");
        prop_assert_eq!(&grid.meta, &scan.meta);
        prop_assert_eq!(&grid.report.log, &scan.report.log);
        prop_assert_eq!(&grid.report.stats, &scan.report.stats);
    }

    /// The engine's BFS equals the sequential reference on arbitrary
    /// graphs under every filter policy, frontier representation and
    /// metadata layout.
    #[test]
    fn engine_bfs_equals_reference((n, edges) in arb_edges(48, 150)) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let expected = reference::bfs(g.out(), 0);
        for policy in [FilterPolicy::Jit, FilterPolicy::BallotOnly] {
            for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
                for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
                    let r = bfs::run(
                        &g,
                        0,
                        EngineConfig::unscaled()
                            .with_filter(policy)
                            .with_frontier(repr)
                            .with_layout(layout),
                    )
                    .expect("bfs");
                    prop_assert_eq!(&r.meta, &expected);
                }
            }
        }
    }

    /// The engine's SSSP (frontier relaxation) equals Dijkstra for any
    /// positive weights — the ∆-stepping-family correctness property.
    #[test]
    fn engine_sssp_equals_dijkstra((n, edges) in arb_edges(40, 120), wseed in 0u64..1000) {
        let el = EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        );
        if el.num_vertices() == 0 {
            return Ok(());
        }
        let el = weights::assign_default_weights(&el, wseed);
        let g = Graph::directed_from_edges(el);
        let expected = reference::sssp(g.out(), 0);
        let r = sssp::run(&g, 0, EngineConfig::unscaled()).expect("sssp");
        prop_assert_eq!(r.meta, expected);
    }

    /// k-Core survivors each keep >= k surviving in-neighbors, and the
    /// result matches sequential peeling.
    #[test]
    fn engine_kcore_is_a_core((n, edges) in arb_edges(40, 150), k in 1u32..6) {
        let g = Graph::undirected_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let r = kcore::run(&g, k, EngineConfig::unscaled()).expect("kcore");
        let alive = kcore::survivors(&r.meta);
        prop_assert_eq!(&alive, &reference::kcore(&g, k));
        for v in 0..g.num_vertices() {
            if alive[v as usize] {
                let live = g
                    .in_()
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| alive[u as usize])
                    .count() as u32;
                prop_assert!(live >= k, "vertex {} kept {} < k", v, live);
            }
        }
    }

    /// WCC labels are consistent: same label iff reference gives the
    /// same label (on symmetric graphs: connected components).
    #[test]
    fn engine_wcc_equals_reference((n, edges) in arb_edges(40, 120)) {
        let g = Graph::undirected_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let r = wcc::run(&g, EngineConfig::unscaled()).expect("wcc");
        prop_assert_eq!(r.meta, reference::wcc(g.out()));
    }

    /// Cancelling a run at an arbitrary iteration leaves the session
    /// reusable: the next clean run over the same [`BoundGraph`] is
    /// bit-equal to a fresh engine — the abort-safe-reuse half of the
    /// supervision contract, at property scale, in both exec modes.
    #[test]
    fn cancelled_runs_leave_the_session_bit_equal(
        (n, edges) in arb_edges(48, 150),
        cancel_at in 0u32..6,
    ) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
            let cfg = EngineConfig::unscaled().with_exec(exec);
            let baseline = bfs::run(&g, 0, cfg.clone()).expect("fresh baseline");
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            let token = CancelToken::new();
            let hook_token = token.clone();
            let aborted = bound
                .run(Bfs::new(0))
                .cancel_token(token)
                .observe(move |rec| {
                    if rec.iteration >= cancel_at {
                        hook_token.cancel();
                    }
                })
                .execute();
            match aborted {
                // The abort is observed at the next supervision check.
                Err(SimdxError::Cancelled { progress }) => prop_assert!(
                    progress.iterations <= baseline.report.iterations,
                    "progress past convergence: {:?}",
                    progress
                ),
                // A cancel raised on the final iteration can lose the
                // race with convergence; the finished run must then be
                // untouched by supervision.
                Ok(r) => prop_assert_eq!(&r.meta, &baseline.meta),
                Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
            }
            // The same session, clean run: bit-equal to a fresh engine.
            let after = bound.run(Bfs::new(0)).execute().expect("reuse after abort");
            prop_assert_eq!(&after.meta, &baseline.meta);
            prop_assert_eq!(&after.report.log, &baseline.report.log);
            prop_assert_eq!(&after.report.stats, &baseline.report.stats);
        }
    }

    /// Cancelling a *checkpointed* run at an arbitrary iteration and
    /// resuming from the handed-back snapshot is bit-equal to the
    /// uninterrupted run — metadata, activation log and simulated
    /// cycles — on arbitrary graphs, across knob cells covering every
    /// value of the {exec} × {frontier repr} × {layout} × {push
    /// strategy} axes in both exec modes.
    #[test]
    fn checkpointed_cancel_then_resume_is_bit_equal(
        (n, edges) in arb_edges(48, 150),
        cancel_at in 0u32..6,
    ) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let par = ExecMode::Parallel { threads: 3 };
        let cells = [
            (ExecMode::Serial, FrontierRepr::List, MetadataLayout::Flat, PushStrategy::Grid),
            (ExecMode::Serial, FrontierRepr::Bitmap, MetadataLayout::Chunked, PushStrategy::Scan),
            (par, FrontierRepr::List, MetadataLayout::Chunked, PushStrategy::Scan),
            (par, FrontierRepr::Bitmap, MetadataLayout::Flat, PushStrategy::Scan),
            (par, FrontierRepr::Bitmap, MetadataLayout::Chunked, PushStrategy::Grid),
            (par, FrontierRepr::List, MetadataLayout::Flat, PushStrategy::Grid),
        ];
        for (exec, repr, layout, push) in cells {
            let cfg = EngineConfig::unscaled()
                .with_exec(exec)
                .with_frontier(repr)
                .with_layout(layout)
                .with_push(push);
            let baseline = bfs::run(&g, 0, cfg.clone()).expect("fresh baseline");
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            let token = CancelToken::new();
            let hook_token = token.clone();
            let outcome = bound
                .run(Bfs::new(0))
                .cancel_token(token)
                .checkpoint_on_abort()
                .observe(move |rec| {
                    if rec.iteration >= cancel_at {
                        hook_token.cancel();
                    }
                })
                .execute();
            let resumed = match outcome {
                // A cancel raised on the final iteration can lose the
                // race with convergence.
                Ok(r) => r,
                Err(aborted) => {
                    prop_assert!(
                        matches!(aborted.error, SimdxError::Cancelled { .. }),
                        "unexpected abort: {:?}",
                        aborted.error
                    );
                    match aborted.checkpoint {
                        Some(cp) => bound
                            .resume(Bfs::new(0), cp)
                            .execute()
                            .expect("resume from cancel checkpoint"),
                        // Aborted before the first boundary capture.
                        None => bound.run(Bfs::new(0)).execute().expect("fresh rerun"),
                    }
                }
            };
            prop_assert_eq!(&resumed.meta, &baseline.meta);
            prop_assert_eq!(resumed.report.iterations, baseline.report.iterations);
            prop_assert_eq!(&resumed.report.log, &baseline.report.log);
            prop_assert_eq!(&resumed.report.stats, &baseline.report.stats);
        }
    }

    /// The ballot filter's output is always sorted, duplicate-free, and
    /// equal to the set the online filter records (ignoring order).
    #[test]
    fn filters_agree_on_frontier_content((n, edges) in arb_edges(48, 150)) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let jit = bfs::run(&g, 0, EngineConfig::unscaled()).expect("jit");
        let ballot = bfs::run(
            &g,
            0,
            EngineConfig::unscaled().with_filter(FilterPolicy::BallotOnly),
        )
        .expect("ballot");
        // Same metadata and same iteration structure.
        prop_assert_eq!(jit.meta, ballot.meta);
        prop_assert_eq!(jit.report.iterations, ballot.report.iterations);
        for (a, b) in jit.report.log.records.iter().zip(&ballot.report.log.records) {
            prop_assert_eq!(a.frontier_len, b.frontier_len, "iteration {}", a.iteration);
        }
    }

    /// The durable wire format over *real* mid-run checkpoints (BFS
    /// cancelled at an arbitrary boundary, both metadata layouts):
    /// decode∘encode restores the checkpoint so exactly that (a)
    /// re-encoding reproduces the blob byte-for-byte and (b) resuming
    /// the decoded checkpoint is bit-equal to resuming the original —
    /// and to the uninterrupted run. Truncating the blob at **every**
    /// byte offset and flipping single bits at sampled offsets must
    /// yield typed `CheckpointCorrupt` errors: never a panic, never a
    /// silently-wrong restore.
    #[test]
    fn durable_checkpoint_roundtrips_and_rejects_corruption(
        (n, edges) in arb_edges(40, 120),
        cut in 0u32..4,
    ) {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            edges.iter().map(|&(s, d)| (s % n, d % n)).collect::<Vec<_>>(),
        ));
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let cells = [
            (ExecMode::Serial, FrontierRepr::List, MetadataLayout::Flat),
            (
                ExecMode::Parallel { threads: 2 },
                FrontierRepr::Bitmap,
                MetadataLayout::Chunked,
            ),
        ];
        for (exec, repr, layout) in cells {
            let cfg = EngineConfig::unscaled()
                .with_exec(exec)
                .with_frontier(repr)
                .with_layout(layout);
            let baseline = bfs::run(&g, 0, cfg.clone()).expect("fresh baseline");
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            let token = CancelToken::new();
            let hook_token = token.clone();
            let outcome = bound
                .run(Bfs::new(0))
                .cancel_token(token)
                .checkpoint_on_abort()
                .observe(move |rec| {
                    if rec.iteration >= cut {
                        hook_token.cancel();
                    }
                })
                .execute();
            // Converged before the cut, or aborted before the first
            // boundary: no checkpoint to serialize this round.
            let Err(aborted) = outcome else { continue };
            let Some(cp) = aborted.checkpoint else { continue };

            let frame = DurableCheckpoint {
                ticket: 42 + cut as u64,
                seed: 0,
                checkpoint: cp,
            };
            let blob = persist::encode(&frame);
            let back = persist::decode::<u32>(&blob).expect("decode own encoding");
            prop_assert_eq!(back.ticket, frame.ticket);
            prop_assert_eq!(back.seed, frame.seed);
            // (a) Byte-identical re-encoding.
            prop_assert_eq!(&persist::encode(&back), &blob);
            // (b) Resuming the decoded checkpoint completes bit-equal
            // to resuming the original — and to never aborting at all.
            let from_original = bound
                .resume(Bfs::new(0), frame.checkpoint)
                .execute()
                .expect("resume original");
            let from_decoded = bound
                .resume(Bfs::new(0), back.checkpoint)
                .execute()
                .expect("resume decoded");
            prop_assert_eq!(&from_decoded.meta, &from_original.meta);
            prop_assert_eq!(&from_decoded.report.log, &from_original.report.log);
            prop_assert_eq!(&from_decoded.report.stats, &from_original.report.stats);
            prop_assert_eq!(&from_decoded.meta, &baseline.meta);
            prop_assert_eq!(&from_decoded.report.log, &baseline.report.log);
            prop_assert_eq!(&from_decoded.report.stats, &baseline.report.stats);

            // Truncation at every byte offset: typed error, no panic.
            for len in 0..blob.len() {
                match persist::decode::<u32>(&blob[..len]) {
                    Err(SimdxError::CheckpointCorrupt { .. }) => {}
                    other => prop_assert!(
                        false,
                        "truncation to {} bytes: expected CheckpointCorrupt, got {:?}",
                        len,
                        other.map(|f| f.ticket)
                    ),
                }
            }
            // Single-bit corruption at sampled offsets (every offset
            // is swept by the unit test in `persist`; here the blob
            // varies with the generated graph).
            let stride = (blob.len() / 24).max(1);
            for byte in (0..blob.len()).step_by(stride) {
                let mut flipped = blob.clone();
                flipped[byte] ^= 1 << (byte % 8);
                match persist::decode::<u32>(&flipped) {
                    Err(SimdxError::CheckpointCorrupt { .. }) => {}
                    other => prop_assert!(
                        false,
                        "bit flip at byte {}: expected CheckpointCorrupt, got {:?}",
                        byte,
                        other.map(|f| f.ticket)
                    ),
                }
            }
        }
    }
}
