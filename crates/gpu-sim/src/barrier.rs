//! The software global barrier and its deadlock analysis.
//!
//! GPUs have no device-wide synchronization primitive, so fused kernels
//! synchronize with a *software* barrier: worker CTAs mark arrival in a
//! `lock` array and spin until a monitor CTA flips every slot to
//! "departure" (§5, Fig. 10). The failure mode the paper identifies:
//! if more CTAs are launched than can be simultaneously resident, the
//! resident workers spin while the CTAs that would let the barrier
//! complete (including, under some schedulers, the monitor) can never be
//! scheduled — deadlock.
//!
//! The simulator models CTA residency explicitly. [`GlobalBarrier::sync`]
//! returns [`BarrierError::Deadlock`] instead of hanging, which lets the
//! test suite *prove* the claim: any launch wider than the occupancy
//! bound deadlocks, and every launch within it completes.

use crate::kernel::LaunchConfig;
use crate::occupancy::Occupancy;

/// Arrival/departure state of one CTA's lock slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Initial state.
    Idle,
    /// Worker marked arrival.
    Arrived,
    /// Monitor released the worker.
    Departed,
}

/// Why a barrier pass failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierError {
    /// More CTAs launched than can be resident: non-resident CTAs can
    /// never arrive, resident ones spin forever.
    Deadlock {
        /// CTAs in the launch.
        launched: u32,
        /// Maximum simultaneously-resident CTAs.
        resident: u32,
    },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Deadlock { launched, resident } => write!(
                f,
                "software barrier deadlock: {launched} CTAs launched but only \
                 {resident} can be resident"
            ),
        }
    }
}

impl std::error::Error for BarrierError {}

/// Statistics from one successful barrier pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Scheduling rounds the simulation took (1 when every CTA is
    /// resident, which is always the case for deadlock-free configs).
    pub rounds: u32,
    /// Total lock-array stores performed (one arrival per worker plus
    /// one departure flip per worker by the monitor).
    pub lock_stores: u64,
}

/// A software global barrier over a launch.
#[derive(Clone, Debug)]
pub struct GlobalBarrier {
    launch: LaunchConfig,
    resident_limit: u32,
    slots: Vec<Slot>,
}

impl GlobalBarrier {
    /// Creates a barrier for a launch whose residency bound comes from
    /// the occupancy analysis of the fused kernel.
    pub fn new(launch: LaunchConfig, occupancy: &Occupancy) -> Self {
        Self {
            launch,
            resident_limit: occupancy.resident_ctas,
            slots: vec![Slot::Idle; launch.ctas as usize],
        }
    }

    /// Creates a barrier with an explicit residency limit (used by tests
    /// and by the naive-barrier demonstrations).
    pub fn with_resident_limit(launch: LaunchConfig, resident_limit: u32) -> Self {
        Self {
            launch,
            resident_limit,
            slots: vec![Slot::Idle; launch.ctas as usize],
        }
    }

    /// Simulates one barrier pass.
    ///
    /// CTA 0 is the monitor. The hardware scheduler is modeled as: the
    /// first `resident_limit` not-yet-finished CTAs occupy the SMs; a
    /// CTA only vacates its SM when the whole fused kernel ends — which
    /// is *after* this barrier — so if any CTA is non-resident when the
    /// residents reach the barrier, nothing can make progress.
    pub fn sync(&mut self) -> Result<BarrierStats, BarrierError> {
        let launched = self.launch.ctas;
        if launched == 0 {
            return Ok(BarrierStats::default());
        }
        if launched > self.resident_limit {
            // The residents spin in `Arrived`; the rest never get an SM.
            for slot in self.slots.iter_mut().take(self.resident_limit as usize) {
                *slot = Slot::Arrived;
            }
            return Err(BarrierError::Deadlock {
                launched,
                resident: self.resident_limit,
            });
        }

        // Every CTA is resident: workers arrive...
        let mut lock_stores = 0u64;
        for slot in self.slots.iter_mut() {
            *slot = Slot::Arrived;
            lock_stores += 1;
        }
        // ...the monitor observes all arrivals and flips them to departed.
        debug_assert!(self.slots.iter().all(|&s| s == Slot::Arrived));
        for slot in self.slots.iter_mut() {
            *slot = Slot::Departed;
            lock_stores += 1;
        }
        // Reset for the next pass (the real barrier alternates sense).
        for slot in self.slots.iter_mut() {
            *slot = Slot::Idle;
        }
        Ok(BarrierStats {
            rounds: 1,
            lock_stores,
        })
    }

    /// The launch this barrier coordinates.
    pub fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// The residency limit in force.
    pub fn resident_limit(&self) -> u32 {
        self.resident_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::KernelDesc;
    use crate::occupancy::{deadlock_free_launch, occupancy};

    fn launch(ctas: u32) -> LaunchConfig {
        LaunchConfig {
            ctas,
            threads_per_cta: 128,
        }
    }

    #[test]
    fn within_residency_completes() {
        let mut b = GlobalBarrier::with_resident_limit(launch(60), 60);
        let stats = b.sync().expect("no deadlock");
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.lock_stores, 120);
    }

    #[test]
    fn oversubscription_deadlocks() {
        let mut b = GlobalBarrier::with_resident_limit(launch(61), 60);
        assert_eq!(
            b.sync(),
            Err(BarrierError::Deadlock {
                launched: 61,
                resident: 60
            })
        );
    }

    #[test]
    fn empty_launch_is_trivially_fine() {
        let mut b = GlobalBarrier::with_resident_limit(launch(0), 60);
        assert!(b.sync().is_ok());
    }

    #[test]
    fn equation_one_config_never_deadlocks() {
        // The §5 example: 110-register kernel on a K40 → 60 CTAs. Any
        // launch derived from `deadlock_free_launch` must sync repeatedly.
        let k40 = DeviceSpec::k40();
        let kernel = KernelDesc::new("fused", 110);
        let lc = deadlock_free_launch(&k40, &kernel);
        let occ = occupancy(&k40, &kernel);
        let mut b = GlobalBarrier::new(lc, &occ);
        for _ in 0..100 {
            b.sync()
                .expect("deadlock-free configuration must not deadlock");
        }
    }

    #[test]
    fn one_extra_cta_over_equation_one_deadlocks() {
        let k40 = DeviceSpec::k40();
        let kernel = KernelDesc::new("fused", 110);
        let occ = occupancy(&k40, &kernel);
        let lc = LaunchConfig {
            ctas: occ.resident_ctas + 1,
            threads_per_cta: 128,
        };
        let mut b = GlobalBarrier::new(lc, &occ);
        assert!(matches!(b.sync(), Err(BarrierError::Deadlock { .. })));
    }

    #[test]
    fn barrier_is_reusable_across_iterations() {
        let mut b = GlobalBarrier::with_resident_limit(launch(8), 16);
        for _ in 0..1000 {
            assert!(b.sync().is_ok());
        }
    }
}
