//! Structural statistics: degree distributions, diameter estimation and
//! frontier profiles.
//!
//! The evaluation harness uses these to verify that each synthetic twin
//! lands in the right structural class (Table 3 reports vertex/edge
//! counts and the text reports diameter classes: road graphs 555–2,570,
//! medium 10–30, the rest below 10).

use crate::csr::Csr;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-level BFS distances from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs_levels(csr: &Csr, src: VertexId) -> Vec<u32> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![u32::MAX; n];
    if n == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    let mut frontier = vec![src];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in csr.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Estimates the diameter by running BFS from `samples` random sources
/// (plus the eccentricity-doubling heuristic: re-run from the farthest
/// vertex found). Returns the largest finite distance observed.
pub fn estimate_diameter(csr: &Csr, samples: u32, seed: u64) -> u32 {
    let n = csr.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = 0u32;
    // Always include the max-degree vertex: on skewed directed graphs a
    // random source frequently has no out-edges at all.
    let hub = (0..n).max_by_key(|&v| csr.degree(v)).unwrap_or(0);
    for sample in 0..samples.max(1) {
        let src = if sample == 0 {
            hub
        } else {
            rng.gen_range(0..n)
        };
        let dist = bfs_levels(csr, src);
        let (far, ecc) = farthest(&dist);
        best = best.max(ecc);
        // Sweep again from the periphery; on road networks this roughly
        // doubles the estimate toward the true diameter.
        let dist2 = bfs_levels(csr, far);
        best = best.max(farthest(&dist2).1);
    }
    best
}

fn farthest(dist: &[u32]) -> (VertexId, u32) {
    let mut far = 0u32;
    let mut ecc = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if d != u32::MAX && d >= ecc {
            ecc = d;
            far = v as VertexId;
        }
    }
    (far, ecc)
}

/// A degree histogram in power-of-two buckets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts vertices with degree in `[2^i, 2^(i+1))`;
    /// bucket 0 also includes degree-0 vertices.
    pub buckets: Vec<u64>,
    /// Maximum degree seen.
    pub max_degree: u32,
    /// Average degree.
    pub avg_degree: f64,
}

/// Computes the power-of-two degree histogram of `csr`.
pub fn degree_histogram(csr: &Csr) -> DegreeHistogram {
    let mut buckets = vec![0u64; 33];
    let mut max_degree = 0u32;
    let n = csr.num_vertices();
    for v in 0..n {
        let d = csr.degree(v);
        max_degree = max_degree.max(d);
        let b = if d <= 1 {
            0
        } else {
            32 - (d - 1).leading_zeros()
        } as usize;
        buckets[b] += 1;
    }
    while buckets.len() > 1 && *buckets.last().expect("non-empty") == 0 {
        buckets.pop();
    }
    DegreeHistogram {
        buckets,
        max_degree,
        avg_degree: if n == 0 {
            0.0
        } else {
            csr.num_edges() as f64 / n as f64
        },
    }
}

/// The Gini coefficient of the degree distribution — a single-number skew
/// measure (0 = perfectly uniform, → 1 = all edges on one hub).
pub fn degree_gini(csr: &Csr) -> f64 {
    let n = csr.num_vertices() as usize;
    if n == 0 {
        return 0.0;
    }
    let mut degs: Vec<u64> = (0..csr.num_vertices())
        .map(|v| csr.degree(v) as u64)
        .collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0u128;
    for (i, &d) in degs.iter().enumerate() {
        weighted += (i as u128 + 1) * d as u128;
    }
    let g = (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
    g.clamp(0.0, 1.0)
}

/// Frontier sizes per BFS level from `src` — the workload-volume profile
/// behind Fig. 8's filter-activation patterns.
pub fn frontier_profile(csr: &Csr, src: VertexId) -> Vec<u64> {
    let dist = bfs_levels(csr, src);
    let max = dist.iter().copied().filter(|&d| d != u32::MAX).max();
    let Some(max) = max else { return Vec::new() };
    let mut profile = vec![0u64; max as usize + 1];
    for &d in &dist {
        if d != u32::MAX {
            profile[d as usize] += 1;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeList, Graph};

    fn path(n: u32) -> Csr {
        let el = EdgeList::from_pairs((0..n - 1).map(|i| (i, i + 1)).collect());
        Graph::undirected_from_edges(el).out().clone()
    }

    #[test]
    fn bfs_levels_on_path() {
        let csr = path(5);
        assert_eq!(bfs_levels(&csr, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&csr, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let el = EdgeList::from_pairs(vec![(0, 1)]);
        let mut padded = EdgeList::new(3);
        for &(s, d) in el.edges() {
            padded.push(s, d);
        }
        let g = Graph::undirected_from_edges(padded);
        let dist = bfs_levels(g.out(), 0);
        assert_eq!(dist[2], u32::MAX);
    }

    #[test]
    fn diameter_of_path_is_exact_via_double_sweep() {
        let csr = path(100);
        assert_eq!(estimate_diameter(&csr, 1, 42), 99);
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let csr = path(10);
        let h = degree_histogram(&csr);
        let total: u64 = h.buckets.iter().sum();
        assert_eq!(total, 10);
        assert_eq!(h.max_degree, 2);
    }

    #[test]
    fn gini_uniform_vs_star() {
        let uniform = path(64);
        let star = {
            let el = EdgeList::from_pairs((1..64).map(|i| (0, i)).collect());
            Graph::undirected_from_edges(el).out().clone()
        };
        assert!(degree_gini(&star) > degree_gini(&uniform) + 0.3);
    }

    #[test]
    fn frontier_profile_sums_to_reachable() {
        let csr = path(8);
        let p = frontier_profile(&csr, 0);
        assert_eq!(p.iter().sum::<u64>(), 8);
        assert_eq!(p, vec![1; 8]);
    }

    #[test]
    fn empty_graph_stats() {
        let csr = Csr::from_edge_list(&EdgeList::new(0));
        assert_eq!(estimate_diameter(&csr, 2, 0), 0);
        assert_eq!(frontier_profile(&csr, 0).len(), 0);
        assert_eq!(degree_gini(&csr), 0.0);
    }
}
