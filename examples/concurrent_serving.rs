//! Concurrent serving: one shared `BoundGraph`, many clients.
//!
//! Stands up a `QueryPool` over a generated R-MAT graph and drives it
//! with a burst of BFS queries — bounded queue, batching scheduler,
//! per-query deadlines — then prints the throughput and latency
//! figures a service operator would watch. Also shows load shedding:
//! the same burst against a tiny queue under `AdmissionPolicy::Reject`
//! turns the overflow into typed `Overloaded` errors instead of
//! backpressure.
//!
//! ```text
//! cargo run --release --example concurrent_serving
//! ```

use std::time::Duration;

use simdx::algos::Bfs;
use simdx::core::{
    AdmissionPolicy, EngineConfig, ExecMode, QueryPool, QueryRequest, Runtime, ServiceConfig,
    SimdxError,
};
use simdx::graph::gen::Rmat;
use simdx::graph::Graph;

fn main() -> Result<(), SimdxError> {
    let graph = Graph::directed_from_edges(Rmat::gtgraph(12, 8).generate(5));
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // One runtime per service, one bind per graph — the serving
    // threads all share this bound core.
    let runtime =
        Runtime::new(EngineConfig::default().with_exec(ExecMode::Parallel { threads: 2 }))?;
    let bound = runtime.bind(&graph);

    // A burst of single-source queries. Each carries a generous
    // deadline measured from submission: queue time counts.
    let seeds: Vec<u32> = (0..64).map(|i| (i * 37) % graph.num_vertices()).collect();
    for workers in [1usize, 4] {
        let report = QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default().workers(workers).batch_max(4),
            |client| {
                for &seed in &seeds {
                    client.submit(QueryRequest::new(seed).deadline(Duration::from_secs(60)))?;
                }
                Ok(())
            },
        )?;
        println!(
            "\n{workers} serving thread(s): {} queries in {:.1} ms over {} batches",
            report.outcomes.len(),
            report.elapsed.as_secs_f64() * 1e3,
            report.batches,
        );
        println!(
            "  {:.0} queries/sec, p50 {:.2} ms, p99 {:.2} ms",
            report.queries_per_sec(),
            report.latency_percentile(50.0).as_secs_f64() * 1e3,
            report.latency_percentile(99.0).as_secs_f64() * 1e3,
        );
    }

    // Load shedding: a 4-deep queue that rejects instead of blocking.
    // Some of the burst is shed with a typed error; everything that
    // was admitted still completes (and stays bit-equal to a solo
    // run — that contract is what `tests/concurrent_serving.rs` pins).
    let mut shed = 0usize;
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default()
            .workers(2)
            .queue_depth(4)
            .admission(AdmissionPolicy::Reject),
        |client| {
            for &seed in &seeds {
                match client.submit(QueryRequest::new(seed)) {
                    Ok(_) => {}
                    Err(SimdxError::Overloaded { .. }) => shed += 1,
                    Err(other) => return Err(other),
                }
            }
            Ok(())
        },
    )?;
    println!(
        "\nload shedding: admitted {} of {} submissions ({} shed), all admitted completed: {}",
        report.outcomes.len(),
        seeds.len(),
        shed,
        report.completed() == report.outcomes.len(),
    );

    Ok(())
}
