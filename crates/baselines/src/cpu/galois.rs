//! Galois-style CPU baseline: asynchronous, priority-ordered worklist
//! execution.
//!
//! Galois schedules fine-grained tasks from an ordered worklist
//! (`OBIM`-style priority bins): SSSP relaxations are processed in
//! distance order, which makes the algorithm nearly work-efficient
//! (every vertex settles close to its final distance), at the price of
//! per-task scheduling overhead and one global coordination round per
//! priority level. High-diameter graphs therefore devolve toward a
//! sequential chain of tiny rounds — the behaviour behind Galois'
//! enormous SSSP time on ER in Table 4.
//!
//! The functional execution is a deterministic bucket queue (the result
//! equals Dijkstra); simulated time charges every relaxation plus the
//! worklist operations and per-round coordination.

use crate::cpu::{host_executor, host_kernel};
use crate::BaselineError;
use simdx_core::metrics::{RunReport, RunResult};
use simdx_core::ActivationLog;
use simdx_gpu::{Cost, GpuExecutor, SchedUnit};
use simdx_graph::{Graph, VertexId};

/// Configuration for the Galois-style runners.
#[derive(Clone, Copy, Debug)]
pub struct GaloisConfig {
    /// Device scale divisor (match the dataset twin scale).
    pub parallelism_scale: u32,
    /// Cap on priority rounds.
    pub max_rounds: u32,
}

impl Default for GaloisConfig {
    fn default() -> Self {
        Self {
            parallelism_scale: 64,
            max_rounds: 10_000_000,
        }
    }
}

/// Shared bucket-queue relaxation core (BFS when `use_weights` is
/// false; weighted SSSP otherwise).
fn relax_run(
    graph: &Graph,
    src: VertexId,
    use_weights: bool,
    name: &'static str,
    cfg: GaloisConfig,
) -> Result<RunResult<u32>, BaselineError> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let mut executor = host_executor(cfg.parallelism_scale);
    let kernel = host_kernel("galois-obim");

    let mut dist = vec![u32::MAX; n];
    dist[src as usize] = 0;
    // Bucket queue indexed by distance.
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![src]];
    let mut rounds = 0u32;
    let mut level = 0usize;

    while level < buckets.len() {
        if buckets[level].is_empty() {
            level += 1;
            continue;
        }
        if rounds >= cfg.max_rounds {
            return Err(BaselineError::IterationLimit {
                max_iterations: cfg.max_rounds,
            });
        }
        let bucket = std::mem::take(&mut buckets[level]);
        let mut tasks = Vec::with_capacity(bucket.len());
        for v in bucket {
            // A stale entry: the vertex settled at a smaller distance.
            if dist[v as usize] != level as u32 {
                tasks.push(Cost {
                    compute_ops: 2,
                    random_reads: 1,
                    ..Cost::default()
                });
                continue;
            }
            let (lo, hi) = out.range(v);
            let mut relaxed = 0u64;
            for i in lo..hi {
                let u = out.targets()[i] as usize;
                let w = if use_weights {
                    out.weights().map_or(1, |ws| ws[i])
                } else {
                    1
                };
                let nd = (level as u32).saturating_add(w);
                if nd < dist[u] {
                    dist[u] = nd;
                    relaxed += 1;
                    let slot = nd as usize;
                    if slot >= buckets.len() {
                        buckets.resize(slot + 1, Vec::new());
                    }
                    buckets[slot].push(u as VertexId);
                }
            }
            let d = (hi - lo) as u64;
            tasks.push(Cost {
                compute_ops: 2 * d + 4,
                coalesced_reads: 1 + d,
                random_reads: d,
                // Worklist pushes are shared-structure atomics.
                atomics: relaxed + 1,
                ..Cost::default()
            });
        }
        // One parallel round per priority level: spawn + join.
        executor.run_kernel(&kernel, SchedUnit::Thread, &tasks, true);
        executor.charge_barrier();
        rounds += 1;
    }

    finish(name, executor, rounds, dist)
}

/// Galois BFS (levels, ordered by level).
pub fn bfs(
    graph: &Graph,
    src: VertexId,
    cfg: GaloisConfig,
) -> Result<RunResult<u32>, BaselineError> {
    relax_run(graph, src, false, "galois-bfs", cfg)
}

/// Galois SSSP (bucketed delta-stepping with Δ = 1).
pub fn sssp(
    graph: &Graph,
    src: VertexId,
    cfg: GaloisConfig,
) -> Result<RunResult<u32>, BaselineError> {
    relax_run(graph, src, true, "galois-sssp", cfg)
}

/// Galois PageRank: synchronous rounds over all vertices (Galois' PR
/// benchmark is topology-driven, without frontier shrinking).
pub fn pagerank(
    graph: &Graph,
    damping: f32,
    eps: f32,
    cfg: GaloisConfig,
) -> Result<RunResult<f32>, BaselineError> {
    let n = graph.num_vertices() as usize;
    let out = graph.out();
    let in_ = graph.in_();
    let mut executor = host_executor(cfg.parallelism_scale);
    let kernel = host_kernel("galois-pr");
    let base = (1.0 - damping) / n.max(1) as f32;
    let inv_deg: Vec<f32> = (0..n as VertexId)
        .map(|v| {
            let d = out.degree(v);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f32
            }
        })
        .collect();
    let mut rank = vec![1.0f32 / n.max(1) as f32; n];
    let mut rounds = 0u32;
    loop {
        if rounds >= cfg.max_rounds {
            return Err(BaselineError::IterationLimit {
                max_iterations: cfg.max_rounds,
            });
        }
        let mut moved = false;
        let mut next = vec![0.0f32; n];
        let mut tasks = Vec::with_capacity(n);
        for v in 0..n {
            let mut sum = 0.0f32;
            for &u in in_.neighbors(v as VertexId) {
                sum += rank[u as usize] * inv_deg[u as usize];
            }
            let r = base + damping * sum;
            if (r - rank[v]).abs() > eps {
                moved = true;
                next[v] = r;
            } else {
                next[v] = rank[v];
            }
            let d = in_.degree(v as VertexId) as u64;
            tasks.push(Cost {
                compute_ops: 2 * d + 4,
                coalesced_reads: 1 + d,
                random_reads: d,
                writes: 1,
                // Task scheduling through the runtime's worklist.
                atomics: 1,
                ..Cost::default()
            });
        }
        executor.run_kernel(&kernel, SchedUnit::Thread, &tasks, true);
        executor.charge_barrier();
        rank = next;
        rounds += 1;
        if !moved {
            break;
        }
    }
    finish("galois-pagerank", executor, rounds, rank)
}

fn finish<M>(
    name: &str,
    executor: GpuExecutor,
    iterations: u32,
    meta: Vec<M>,
) -> Result<RunResult<M>, BaselineError> {
    let elapsed_ms = executor.elapsed_ms();
    Ok(RunResult {
        meta,
        report: RunReport {
            algorithm: name.to_string(),
            device: executor.device().name,
            iterations,
            elapsed_ms,
            stats: executor.stats().clone(),
            // Baseline simulators do not meter host edge traversals.
            edges_examined: 0,
            log: ActivationLog::default(),
            // Baselines run unsupervised.
            elapsed: std::time::Duration::ZERO,
            aborted: None,
            supervision_checks: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_algos::reference;
    use simdx_graph::datasets;

    fn cfg() -> GaloisConfig {
        GaloisConfig {
            parallelism_scale: 1,
            ..GaloisConfig::default()
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = datasets::dataset("PK").unwrap().build_scaled(3, 5);
        let src = datasets::default_source(g.out());
        let r = bfs(&g, src, cfg()).expect("galois bfs");
        assert_eq!(r.meta, reference::bfs(g.out(), src));
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = datasets::dataset("RC").unwrap().build_scaled(5, 4);
        let src = datasets::default_source(g.out());
        let r = sssp(&g, src, cfg()).expect("galois sssp");
        assert_eq!(r.meta, reference::sssp(g.out(), src));
    }

    #[test]
    fn sssp_is_nearly_work_efficient() {
        // Priority ordering settles almost every vertex once: the total
        // relaxation count stays within a small factor of |E|.
        let g = datasets::dataset("PK").unwrap().build_scaled(4, 4);
        let src = datasets::default_source(g.out());
        let r = sssp(&g, src, cfg()).expect("galois sssp");
        // Rounds = number of distinct distance values processed.
        assert!(r.report.iterations < 2_000);
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = datasets::dataset("PK").unwrap().build_scaled(5, 5);
        let r = pagerank(&g, 0.85, 1e-6, cfg()).expect("galois pr");
        let expected = reference::pagerank(&g, 0.85, 1e-6, 500);
        for (i, (a, b)) in r.meta.iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-3, "rank {i}: {a} vs {b}");
        }
    }

    #[test]
    fn high_diameter_means_many_tiny_rounds() {
        // The ER pathology: thousands of priority levels each with a
        // handful of vertices, every one paying spawn + barrier.
        let g = datasets::dataset("RC").unwrap().build_scaled(3, 3);
        let src = datasets::default_source(g.out());
        let r = sssp(&g, src, cfg()).expect("galois sssp");
        assert!(
            r.report.iterations > 500,
            "expected thousands of rounds, got {}",
            r.report.iterations
        );
    }
}
