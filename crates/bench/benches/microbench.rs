//! Criterion micro-benchmarks for the load-bearing primitives:
//! frontier filters (online vs ballot vs strided), warp primitives,
//! occupancy math, graph generation and one end-to-end engine run.
//!
//! These benchmark *host* execution speed of the simulator itself (not
//! simulated GPU time — the table/figure binaries report that).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simdx_algos::bfs::Bfs;
use simdx_algos::pagerank::PageRank;
use simdx_bench::run_one;
use simdx_core::acc::{AccProgram, CombineKind};
use simdx_core::filters::ballot::{self, WarpScanScratch};
use simdx_core::filters::{online, strided};
use simdx_core::frontier::ThreadBins;
use simdx_core::{
    EngineConfig, ExecMode, FrontierRepr, MetadataLayout, MetadataStore, PushStrategy, Runtime,
};
use simdx_gpu::occupancy::occupancy;
use simdx_gpu::warp;
use simdx_gpu::{DeviceSpec, GpuExecutor, KernelDesc};
use simdx_graph::gen::{ChungLu, Rmat, Road};
use simdx_graph::{datasets, Graph, VertexId, Weight};

/// Minimal program for the filter benches.
struct Diff;

impl AccProgram for Diff {
    type Meta = u32;
    type Update = u32;

    fn name(&self) -> &'static str {
        "diff"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Vote
    }

    fn init(&self, _g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
        unreachable!()
    }

    fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight, _a: &u32, _b: &u32) -> Option<u32> {
        None
    }

    fn combine(&self, a: u32, _b: u32) -> u32 {
        a
    }

    fn apply(&self, _v: VertexId, _c: &u32, _u: u32) -> Option<u32> {
        None
    }
}

fn bench_filters(c: &mut Criterion) {
    let n = 1 << 16;
    let prev = vec![0u32; n];
    let mut curr = prev.clone();
    for i in (0..n).step_by(97) {
        curr[i] = 1;
    }
    let kernel = KernelDesc::new("taskmgmt", 24);

    let mut group = c.benchmark_group("filters");
    group.sample_size(20);
    group.bench_function("ballot_scan_64k", |b| {
        b.iter(|| {
            let mut ex = GpuExecutor::new(DeviceSpec::k40());
            ballot::scan(&Diff, &curr, &prev, &mut ex, &kernel, false)
        })
    });
    group.bench_function("strided_scan_64k", |b| {
        b.iter(|| {
            let mut ex = GpuExecutor::new(DeviceSpec::k40());
            strided::scan(&Diff, &curr, &prev, &mut ex, &kernel, false)
        })
    });
    group.bench_function("online_concat_4k_records", |b| {
        let mut bins = ThreadBins::new(480, usize::MAX);
        for i in 0..4096u32 {
            bins.record(i as usize % 480, i % 999);
        }
        b.iter(|| {
            let mut ex = GpuExecutor::new(DeviceSpec::k40());
            online::concatenate(&bins, &mut ex, &kernel, false)
        })
    });
    group.finish();
}

fn bench_warp_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp");
    let preds = [true; 32];
    group.bench_function("ballot", |b| {
        b.iter(|| warp::ballot(std::hint::black_box(&preds)))
    });
    let vals: Vec<u32> = (0..32).collect();
    group.bench_function("reduce_min", |b| {
        b.iter(|| warp::reduce(std::hint::black_box(&vals), u32::min))
    });
    group.bench_function("inclusive_scan", |b| {
        b.iter(|| warp::inclusive_scan(std::hint::black_box(&vals), |a, x| a + x))
    });
    group.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let k40 = DeviceSpec::k40();
    c.bench_function("occupancy_eq1", |b| {
        b.iter(|| occupancy(&k40, &KernelDesc::new("k", std::hint::black_box(110))))
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("chung_lu_16k", |b| {
        b.iter(|| ChungLu::social(16_384, 8, 2.0).generate(7))
    });
    group.bench_function("road_16k", |b| b.iter(|| Road::strip(512, 32).generate(7)));
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let g = datasets::dataset("PK").expect("PK").build_scaled(3, 3);
    let src = datasets::default_source(g.out());
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("bfs", "PK/8"), &g, |b, g| {
        b.iter(|| run_one(g, EngineConfig::default(), Bfs::new(src)).expect("bfs"))
    });
    group.finish();
}

fn bench_exec_modes(c: &mut Criterion) {
    // A/B of the host execution backends on one skewed graph; the
    // results are bit-equal by contract, so this measures pure host
    // throughput. See also `snapshot` for the persisted JSON form.
    let g = datasets::dataset("PK").expect("PK").build_scaled(3, 2);
    let src = datasets::default_source(g.out());
    let modes = [
        ExecMode::Serial,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 0 },
    ];
    let mut group = c.benchmark_group("exec_mode");
    group.sample_size(10);
    for mode in modes {
        group.bench_with_input(BenchmarkId::new("bfs", mode.label()), &g, |b, g| {
            b.iter(|| {
                run_one(g, EngineConfig::default().with_exec(mode), Bfs::new(src)).expect("bfs")
            })
        });
        group.bench_with_input(BenchmarkId::new("pagerank", mode.label()), &g, |b, g| {
            b.iter(|| {
                run_one(g, EngineConfig::default().with_exec(mode), PageRank::new(g))
                    .expect("pagerank")
            })
        });
    }
    group.finish();
}

fn bench_frontier_reprs(c: &mut Criterion) {
    // A/B of the frontier representations (bit-equal by contract):
    // BFS is ballot/push heavy, PageRank is pull heavy — the two
    // regimes where the bitmap's word-skip and bit-test dedup differ
    // most from the list walks.
    let g = datasets::dataset("PK").expect("PK").build_scaled(3, 2);
    let src = datasets::default_source(g.out());
    let mut group = c.benchmark_group("frontier_repr");
    group.sample_size(10);
    for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
        group.bench_with_input(BenchmarkId::new("bfs", repr.label()), &g, |b, g| {
            b.iter(|| {
                run_one(
                    g,
                    EngineConfig::default().with_frontier(repr),
                    Bfs::new(src),
                )
                .expect("bfs")
            })
        });
        group.bench_with_input(BenchmarkId::new("pagerank", repr.label()), &g, |b, g| {
            b.iter(|| {
                run_one(
                    g,
                    EngineConfig::default().with_frontier(repr),
                    PageRank::new(g),
                )
                .expect("pagerank")
            })
        });
    }
    group.finish();
}

fn bench_metadata_layouts(c: &mut Criterion) {
    // A/B of the metadata layouts (bit-equal by contract).
    //
    // The raw pair is the load-bearing primitive: one dense ballot
    // sweep over RMAT-scale-14-sized metadata (every 3rd vertex
    // changed, so the scan cannot skip), flat scalar loop vs the
    // chunked fixed-width lane sweep over the 64-byte-aligned store.
    // The engine pair measures the end-to-end effect on a skewed
    // scale-14 RMAT graph — BFS is ballot/push heavy, PageRank drives
    // the pull-vote candidate sweep and the bitmap publish.
    let n = 1 << 14;
    let prev_v = vec![0u32; n];
    let mut curr_v = prev_v.clone();
    for i in (0..n).step_by(3) {
        curr_v[i] = 1;
    }
    let flat_prev = MetadataStore::from_vec(MetadataLayout::Flat, prev_v.clone());
    let flat_curr = MetadataStore::from_vec(MetadataLayout::Flat, curr_v.clone());
    let chunk_prev = MetadataStore::from_vec(MetadataLayout::Chunked, prev_v);
    let chunk_curr = MetadataStore::from_vec(MetadataLayout::Chunked, curr_v);

    let mut group = c.benchmark_group("metadata_layout");
    group.sample_size(20);
    group.bench_function("ballot_sweep_16k/flat", |b| {
        let mut out = WarpScanScratch::default();
        b.iter(|| {
            out.clear();
            ballot::scan_range(
                &Diff,
                flat_curr.as_slice(),
                flat_prev.as_slice(),
                0,
                n,
                &mut out,
            );
            out.active.len()
        })
    });
    group.bench_function("ballot_sweep_16k/chunked", |b| {
        let mut out = WarpScanScratch::default();
        b.iter(|| {
            out.clear();
            ballot::scan_range_chunked(
                &Diff,
                chunk_curr.as_slice(),
                chunk_prev.as_slice(),
                0,
                n,
                &mut out,
            );
            out.active.len()
        })
    });

    let g = Graph::directed_from_edges(Rmat::gtgraph(14, 8).generate(5));
    let src = 0;
    for layout in [MetadataLayout::Flat, MetadataLayout::Chunked] {
        group.bench_with_input(
            BenchmarkId::new("bfs_rmat14", layout.label()),
            &g,
            |b, g| {
                b.iter(|| {
                    run_one(
                        g,
                        EngineConfig::default().with_layout(layout),
                        Bfs::new(src),
                    )
                    .expect("bfs")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pagerank_rmat14", layout.label()),
            &g,
            |b, g| {
                b.iter(|| {
                    run_one(
                        g,
                        EngineConfig::default().with_layout(layout),
                        PageRank::new(g),
                    )
                    .expect("pagerank")
                })
            },
        );
    }
    group.finish();
}

fn bench_push_strategies(c: &mut Criterion) {
    // A/B of the parallel push strategies (bit-equal by contract):
    // Scan replays the whole task list per destination shard, Grid
    // iterates the bind-time destination-bucketed sub-CSRs, so the
    // delta is the redundant scan work. Push-heavy regimes only —
    // BFS under the fixed-push policy on a skewed graph, both
    // frontier representations. Queries run over one bound session so
    // the grid build cost is amortized the way a service would pay it
    // (bind once, push every iteration of every query).
    let g = datasets::dataset("PK").expect("PK").build_scaled(3, 2);
    let src = datasets::default_source(g.out());
    let mut group = c.benchmark_group("push_strategy");
    group.sample_size(10);
    for push in [PushStrategy::Scan, PushStrategy::Grid] {
        for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
            let cfg = EngineConfig::default()
                .with_direction(simdx_core::DirectionPolicy::FixedPush)
                .parallel(2)
                .with_frontier(repr)
                .with_push(push);
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            group.bench_function(
                BenchmarkId::new(format!("bfs_{}", repr.label()), push.label()),
                |b| b.iter(|| bound.run(Bfs::new(src)).execute().expect("bfs")),
            );
        }
    }
    group.finish();
}

fn bench_session_reuse(c: &mut Criterion) {
    // The api_redesign A/B: a 16-source BFS batch on RMAT scale-14,
    // fresh runtime (pool + scratch + fences) per query vs one reused
    // `BoundGraph` serving the whole batch. Bit-equal by contract, so
    // the delta is pure per-query setup amortization.
    let (g, sources): (Graph, Vec<VertexId>) = simdx_bench::session_reuse_workload();
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(10);
    for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 2 }] {
        group.bench_function(format!("fresh_engine/{}", mode.label()), |b| {
            b.iter(|| {
                for &src in &sources {
                    run_one(&g, EngineConfig::default().with_exec(mode), Bfs::new(src))
                        .expect("fresh bfs");
                }
            })
        });
        group.bench_function(format!("bound_graph/{}", mode.label()), |b| {
            b.iter(|| {
                let runtime =
                    Runtime::new(EngineConfig::default().with_exec(mode)).expect("runtime");
                runtime
                    .bind(&g)
                    .run_batch(Bfs::new(0), &sources)
                    .expect("bound bfs batch")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filters,
    bench_warp_primitives,
    bench_occupancy,
    bench_generators,
    bench_engine,
    bench_exec_modes,
    bench_frontier_reprs,
    bench_metadata_layouts,
    bench_push_strategies,
    bench_session_reuse
);
criterion_main!(benches);
