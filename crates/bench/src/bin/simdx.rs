//! `simdx` — command-line front end for running any algorithm on any
//! dataset twin (or an edge-list file) with any engine configuration.
//!
//! ```text
//! simdx <algo> <graph> [options]
//!
//! <algo>    bfs | sssp | pagerank | kcore | bp | wcc | spmv
//! <graph>   a Table 3 abbreviation (FB, ER, KR, LJ, OR, PK, RD, RC,
//!           RM, UK, TW) or a path to a whitespace `src dst [w]` file
//!
//! options:
//!   --filter jit|ballot|online     frontier filter policy (default jit)
//!   --fusion none|all|pushpull     kernel fusion strategy (default pushpull)
//!   --device k20|k40|p100          simulated GPU (default k40)
//!   --source N                     source vertex (default: max degree)
//!   --k N                          k for k-Core (default 16)
//!   --threshold N                  online-filter bin capacity (default 64)
//!   --seed N                       generator seed (default 3)
//! ```
//!
//! Example: `simdx sssp RC --fusion all --device p100`

use simdx_algos::{bfs, bp, kcore, pagerank, spmv, sssp, wcc};
use simdx_core::{EngineConfig, FilterPolicy, FusionStrategy, RunReport};
use simdx_gpu::DeviceSpec;
use simdx_graph::{datasets, io, weights, Graph};

fn usage() -> ! {
    eprintln!(
        "usage: simdx <bfs|sssp|pagerank|kcore|bp|wcc|spmv> <GRAPH|file> \
         [--filter jit|ballot|online] [--fusion none|all|pushpull] \
         [--device k20|k40|p100] [--source N] [--k N] [--threshold N] [--seed N]"
    );
    std::process::exit(2);
}

struct Options {
    algo: String,
    graph: String,
    filter: FilterPolicy,
    fusion: FusionStrategy,
    device: DeviceSpec,
    source: Option<u32>,
    k: u32,
    threshold: usize,
    seed: u64,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let algo = args.next().unwrap_or_else(|| usage());
    let graph = args.next().unwrap_or_else(|| usage());
    let mut opts = Options {
        algo,
        graph,
        filter: FilterPolicy::Jit,
        fusion: FusionStrategy::PushPull,
        device: DeviceSpec::k40(),
        source: None,
        k: 16,
        threshold: 64,
        seed: 3,
    };
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--filter" => {
                opts.filter = match value.as_str() {
                    "jit" => FilterPolicy::Jit,
                    "ballot" => FilterPolicy::BallotOnly,
                    "online" => FilterPolicy::OnlineOnly,
                    _ => usage(),
                }
            }
            "--fusion" => {
                opts.fusion = match value.as_str() {
                    "none" => FusionStrategy::None,
                    "all" => FusionStrategy::All,
                    "pushpull" => FusionStrategy::PushPull,
                    _ => usage(),
                }
            }
            "--device" => {
                opts.device = match value.as_str() {
                    "k20" => DeviceSpec::k20(),
                    "k40" => DeviceSpec::k40(),
                    "p100" => DeviceSpec::p100(),
                    _ => usage(),
                }
            }
            "--source" => opts.source = Some(value.parse().unwrap_or_else(|_| usage())),
            "--k" => opts.k = value.parse().unwrap_or_else(|_| usage()),
            "--threshold" => opts.threshold = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    opts
}

fn load_graph(opts: &Options) -> Graph {
    if let Some(spec) = datasets::dataset(&opts.graph) {
        return spec.build(opts.seed);
    }
    let text = std::fs::read_to_string(&opts.graph).unwrap_or_else(|e| {
        eprintln!("cannot read `{}`: {e}", opts.graph);
        std::process::exit(1);
    });
    let el = io::parse_edge_list(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse `{}`: {e}", opts.graph);
        std::process::exit(1);
    });
    let el = if el.is_weighted() {
        el
    } else {
        weights::assign_default_weights(&el, opts.seed)
    };
    Graph::directed_from_edges(el)
}

fn print_report(report: &RunReport) {
    println!("algorithm        : {}", report.algorithm);
    println!("device           : {}", report.device);
    println!("iterations       : {}", report.iterations);
    println!("simulated time   : {:.3} ms", report.elapsed_ms);
    println!("kernel launches  : {}", report.kernel_launches());
    println!("barrier passes   : {}", report.barrier_passes());
    println!("total cycles     : {}", report.total_cycles());
    println!(
        "traffic          : {} coalesced / {} random / {} write / {} atomic txns",
        report.stats.traffic.coalesced_reads,
        report.stats.traffic.random_reads,
        report.stats.traffic.writes,
        report.stats.traffic.atomics
    );
    if report.log.iterations() > 0 {
        println!("filter pattern   : {}", report.log.pattern_rle());
    }
}

fn main() {
    let opts = parse_args();
    let g = load_graph(&opts);
    let src = opts
        .source
        .unwrap_or_else(|| datasets::default_source(g.out()));
    println!(
        "graph            : {} ({} vertices, {} edges)",
        opts.graph,
        g.num_vertices(),
        g.num_edges()
    );
    let mut cfg = EngineConfig::default()
        .with_filter(opts.filter)
        .with_fusion(opts.fusion)
        .with_device(opts.device)
        .with_overflow_threshold(opts.threshold);
    // Files are real data, not 1/64 twins: run the device unscaled.
    if datasets::dataset(&opts.graph).is_none() {
        cfg.parallelism_scale = 1;
    }

    let outcome = match opts.algo.as_str() {
        "bfs" => bfs::run(&g, src, cfg).map(|r| {
            let reached = r.meta.iter().filter(|&&d| d != u32::MAX).count();
            println!("reached          : {reached} vertices from source {src}");
            r.report
        }),
        "sssp" => sssp::run(&g, src, cfg).map(|r| {
            let far = r
                .meta
                .iter()
                .filter(|&&d| d != u32::MAX)
                .max()
                .unwrap_or(&0);
            println!("max distance     : {far} from source {src}");
            r.report
        }),
        "pagerank" => pagerank::run(&g, cfg).map(|r| {
            let top = r
                .meta
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(v, _)| v)
                .unwrap_or(0);
            println!("top-ranked vertex: {top}");
            r.report
        }),
        "kcore" => kcore::run(&g, opts.k, cfg).map(|r| {
            let alive = kcore::survivors(&r.meta).iter().filter(|&&s| s).count();
            println!("{}-core survivors: {alive}", opts.k);
            r.report
        }),
        "bp" => bp::run(
            &g,
            bp::BeliefPropagation::with_random_priors(&g, opts.seed, 0.4, 10),
            cfg,
        )
        .map(|r| r.report),
        "wcc" => wcc::run(&g, cfg).map(|r| {
            println!("components       : {}", wcc::component_count(&r.meta));
            r.report
        }),
        "spmv" => spmv::run(&g, vec![1.0; g.num_vertices() as usize], cfg).map(|r| r.report),
        _ => usage(),
    };

    match outcome {
        Ok(report) => print_report(&report),
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}
