//! Regenerates **Figure 5**: speedup of the ACC model over Gunrock's
//! atomic-update approach — vote materialized by BFS, aggregation by
//! SSSP (§3.3 "Comparison").
//!
//! To isolate the programming-model difference from the task-management
//! and fusion contributions, SIMD-X runs here with the *unfused*
//! strategy (matching Gunrock's per-stage launches); what remains is
//! Combine-then-single-write versus per-edge atomic application, plus
//! the filter quality.

use simdx_algos::{bfs::Bfs, sssp::Sssp};
use simdx_baselines::gunrock::{GunrockConfig, GunrockEngine};
use simdx_bench::{load, print_table, run_one, source, GRAPH_ORDER};
use simdx_core::{DirectionPolicy, EngineConfig, FusionStrategy};

fn main() {
    let mut header: Vec<String> = vec!["Operation".into()];
    header.extend(GRAPH_ORDER.iter().map(|s| s.to_string()));
    header.push("Avg".into());

    let mut rows = Vec::new();
    for (label, vote) in [("Vote (BFS)", true), ("Aggregation (SSSP)", false)] {
        let mut row = vec![label.to_string()];
        let mut log_sum = 0.0f64;
        let mut n = 0u32;
        for abbrev in GRAPH_ORDER {
            let (_, g) = load(abbrev);
            let src = source(&g);
            // Fixed push + no fusion: both engines then differ only in
            // update application (combine vs atomic) and filter quality.
            let acc_cfg = EngineConfig::default()
                .with_fusion(FusionStrategy::None)
                .with_direction(DirectionPolicy::FixedPush);
            let gr_cfg = GunrockConfig::default();
            let (acc_ms, gr_ms) = if vote {
                (
                    run_one(&g, acc_cfg, Bfs::new(src))
                        .expect("acc bfs")
                        .report
                        .elapsed_ms,
                    GunrockEngine::new(Bfs::new(src), &g, gr_cfg)
                        .run()
                        .expect("gunrock bfs")
                        .report
                        .elapsed_ms,
                )
            } else {
                (
                    run_one(&g, acc_cfg, Sssp::new(src))
                        .expect("acc sssp")
                        .report
                        .elapsed_ms,
                    GunrockEngine::new(Sssp::new(src), &g, gr_cfg)
                        .run()
                        .expect("gunrock sssp")
                        .report
                        .elapsed_ms,
                )
            };
            let speedup = gr_ms / acc_ms;
            log_sum += speedup.ln();
            n += 1;
            row.push(format!("{speedup:.2}"));
        }
        row.push(format!("{:.2}", (log_sum / n as f64).exp()));
        rows.push(row);
    }
    print_table(
        "Figure 5: ACC speedup over Gunrock (atomic updates)",
        &header,
        &rows,
    );
    println!("\nPaper: vote avg 1.12x, aggregation avg 1.09x.");
}
