//! Fault-injection differential matrix (`--features fault-inject`).
//!
//! Arms deterministic faults (`crates/core/src/fault.rs`) at the named
//! engine sites — the ballot filter, the push and pull sweeps, the
//! bind-time grid build and the scratch reset — and asserts the three
//! guarantees the supervision subsystem makes about a contained fault:
//!
//! 1. the run comes back as a *typed* [`SimdxError::WorkerPanicked`]
//!    (never a process abort, never a hung pool);
//! 2. the `Runtime` and `BoundGraph` stay usable — the poisoned pool is
//!    rebuilt transparently before the next query;
//! 3. the next clean run over the *same* session is bit-equal to a
//!    fresh engine, across the {exec mode} × {frontier repr} ×
//!    {push strategy} knob matrix.
//!
//! Fault state is process-global, so every test body holds
//! [`TEST_LOCK`] for its whole duration: a baseline run racing another
//! test's armed plan would absorb that test's panic.

#![cfg(feature = "fault-inject")]

use std::sync::Mutex;
use std::time::Duration;

use simdx::algos::{Bfs, Sssp};
use simdx::core::fault::{self, FaultPlan, FaultSite};
use simdx::core::jit::ActivationLog;
use simdx::core::prelude::*;
use simdx::graph::gen::Rmat;
use simdx::graph::{weights, Graph};
use simdx_gpu::executor::ExecutorStats;

/// Serializes the test bodies in this binary (see the module docs).
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything that must match bit for bit after recovery.
#[derive(Debug, PartialEq)]
struct Fingerprint<M: PartialEq + std::fmt::Debug> {
    meta: Vec<M>,
    iterations: u32,
    stats: ExecutorStats,
    log: ActivationLog,
}

fn fingerprint<M: PartialEq + std::fmt::Debug>(r: RunResult<M>) -> Fingerprint<M> {
    Fingerprint {
        meta: r.meta,
        iterations: r.report.iterations,
        stats: r.report.stats,
        log: r.report.log,
    }
}

#[allow(deprecated)]
fn fresh<P: AccProgram>(program: P, g: &Graph, cfg: EngineConfig) -> Fingerprint<P::Meta> {
    fingerprint(Engine::new(program, g, cfg).run().expect("fresh run"))
}

fn rmat_graph() -> Graph {
    Graph::directed_from_edges(Rmat::gtgraph(11, 8).generate(5))
}

/// {exec} × {frontier repr} × {push strategy} (push only varies the
/// parallel cells: a serial run has a single shard either way).
fn config_matrix() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
        let strategies: &[PushStrategy] = match exec {
            ExecMode::Serial => &[PushStrategy::Grid],
            ExecMode::Parallel { .. } => &[PushStrategy::Scan, PushStrategy::Grid],
        };
        for &push in strategies {
            for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
                out.push((
                    format!("{}/{}/{}", exec.label(), repr.label(), push.label()),
                    EngineConfig::default()
                        .with_exec(exec)
                        .with_frontier(repr)
                        .with_push(push),
                ));
            }
        }
    }
    out
}

/// The per-site config tweak that makes the site deterministically
/// reachable on the first iteration, regardless of the JIT's choices.
fn aim_at(site: FaultSite, cfg: EngineConfig) -> EngineConfig {
    match site {
        // BFS opens with a tiny frontier, but pin the direction anyway
        // so the adaptive heuristic can never route around the fault.
        FaultSite::Push => cfg.with_direction(DirectionPolicy::FixedPush),
        FaultSite::Pull => cfg.with_direction(DirectionPolicy::FixedPull),
        FaultSite::Ballot => cfg.with_filter(FilterPolicy::BallotOnly),
        // Fires at `execute()` entry / bind time under any config.
        FaultSite::ScratchReset | FaultSite::GridBuild => cfg,
        // Fires whenever checkpoint capture / restore is armed,
        // regardless of the engine knobs.
        FaultSite::Capture | FaultSite::Restore => cfg,
        // Fires on spill, not inside a run; exercised end-to-end by
        // tests/durable_recovery.rs.
        FaultSite::Persist => cfg,
    }
}

/// Arms a first-hit panic at `site`, drives one query into it over a
/// reused session, and asserts the typed error plus bit-equal recovery.
fn assert_contained_and_recovered(label: &str, g: &Graph, cfg: EngineConfig, site: FaultSite) {
    let baseline = fresh(Bfs::new(0), g, cfg.clone());
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(g);

    let err = {
        let _armed = fault::install(FaultPlan::new().panic_on(site));
        bound
            .run(Bfs::new(0))
            .execute()
            .expect_err("armed fault must abort the run")
    };
    match &err {
        SimdxError::WorkerPanicked { worker, payload } => {
            assert!(
                payload.contains(&format!("injected fault at {}", site.label())),
                "{label}/{}: wrong payload: {payload}",
                site.label()
            );
            if site == FaultSite::ScratchReset {
                assert_eq!(
                    *worker, 0,
                    "{label}: scratch reset runs on the submitter thread"
                );
            }
        }
        other => panic!(
            "{label}/{}: expected WorkerPanicked, got {other:?}",
            site.label()
        ),
    }

    // Disarmed: the same session (pool rebuilt if the panic poisoned
    // it) must serve the next query bit-equal to a fresh engine.
    let after = fingerprint(bound.run(Bfs::new(0)).execute().expect("recovery run"));
    assert_eq!(
        after,
        baseline,
        "{label}/{}: recovery run diverged from fresh engine",
        site.label()
    );
}

#[test]
fn injected_panics_are_typed_and_recovery_is_bit_equal_across_the_matrix() {
    let _serial = lock();
    let g = rmat_graph();
    for (label, cfg) in config_matrix() {
        for site in [FaultSite::Push, FaultSite::Ballot, FaultSite::ScratchReset] {
            assert_contained_and_recovered(&label, &g, aim_at(site, cfg.clone()), site);
        }
    }
}

#[test]
fn pull_sweep_faults_are_contained_in_both_exec_modes() {
    let _serial = lock();
    let g = rmat_graph();
    for (label, cfg) in config_matrix() {
        assert_contained_and_recovered(&label, &g, aim_at(FaultSite::Pull, cfg), FaultSite::Pull);
    }
}

#[test]
fn sssp_recovers_bit_equal_after_a_push_fault() {
    // A second algorithm through the same harness: SSSP's aggregation
    // combine exercises the dirty-stamp path the recovery run must
    // leave pristine.
    let _serial = lock();
    let g = Graph::directed_from_edges(weights::assign_default_weights(
        &Rmat::gtgraph(11, 8).generate(5),
        9,
    ));
    for (label, cfg) in config_matrix() {
        let cfg = aim_at(FaultSite::Push, cfg);
        let baseline = fresh(Sssp::new(0), &g, cfg.clone());
        let runtime = Runtime::new(cfg).expect("runtime");
        let bound = runtime.bind(&g);
        let err = {
            let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::Push));
            bound.run(Sssp::new(0)).execute().expect_err("armed fault")
        };
        assert!(
            matches!(err, SimdxError::WorkerPanicked { .. }),
            "{label}: {err:?}"
        );
        let after = fingerprint(bound.run(Sssp::new(0)).execute().expect("recovery"));
        assert_eq!(after, baseline, "{label}: sssp recovery diverged");
    }
}

#[test]
fn grid_build_faults_surface_from_try_bind_and_the_runtime_recovers() {
    let _serial = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_push(PushStrategy::Grid);
    let baseline = fresh(Bfs::new(0), &g, cfg.clone());
    let runtime = Runtime::new(cfg).expect("runtime");

    {
        let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::GridBuild));
        let err = runtime.try_bind(&g).expect_err("bind-time fault");
        assert!(
            matches!(&err, SimdxError::WorkerPanicked { payload, .. }
                if payload.contains("injected fault at grid-build")),
            "wrong error: {err:?}"
        );
    }

    // The panic poisoned the pool mid-bind; the next bind must rebuild
    // it and produce a fully working session.
    let bound = runtime.try_bind(&g).expect("clean rebind");
    let after = fingerprint(bound.run(Bfs::new(0)).execute().expect("run after rebind"));
    assert_eq!(after, baseline, "post-recovery bind diverged");
}

#[test]
fn delay_faults_model_stragglers_without_changing_results() {
    // A straggler worker (delay, not panic) must not affect anything
    // the bit-equality contract covers — results depend on the merge
    // order, never on worker timing.
    let _serial = lock();
    let g = rmat_graph();
    for (label, cfg) in config_matrix() {
        let baseline = fresh(Bfs::new(0), &g, cfg.clone());
        let runtime = Runtime::new(cfg).expect("runtime");
        let bound = runtime.bind(&g);
        let _armed = fault::install(
            FaultPlan::new()
                .delay_at(FaultSite::Push, Duration::from_millis(2), 1)
                .delay_at(FaultSite::Ballot, Duration::from_millis(2), 1),
        );
        let delayed = fingerprint(bound.run(Bfs::new(0)).execute().expect("delayed run"));
        assert_eq!(delayed, baseline, "{label}: straggler changed results");
    }
}

#[test]
fn degrade_policy_retries_an_injected_worker_panic_serially() {
    // End-to-end through the injection harness: a parallel query eats a
    // worker panic, DegradePolicy::RetrySerial replays it serially, and
    // the answer matches the serial baseline with the abort flagged.
    let _serial = lock();
    let g = rmat_graph();
    let par = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_direction(DirectionPolicy::FixedPush)
        .degrade_serial();
    let serial_cfg = par.clone().with_exec(ExecMode::Serial);
    // The serial retry re-enters the push sweep, so arm the panic for
    // exactly one hit: the parallel attempt absorbs it, the retry runs
    // clean.
    let baseline = fresh(Bfs::new(0), &g, serial_cfg);
    let runtime = Runtime::new(par).expect("runtime");
    let bound = runtime.bind(&g);
    let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::Push));
    let recovered = bound.run(Bfs::new(0)).execute().expect("degraded run");
    assert_eq!(
        recovered.report.aborted,
        Some(AbortReason::WorkerPanic),
        "degrade retry must be flagged"
    );
    assert_eq!(
        fingerprint(recovered),
        baseline,
        "serial degrade retry diverged from the serial baseline"
    );
}

/// Every injected-panic site recovers through the checkpoint path: the
/// armed run aborts with a typed `WorkerPanicked` carrying its last
/// boundary snapshot (when one was reached), and resuming from it —
/// or rerunning fresh when the panic struck before the first boundary
/// — is bit-equal to an uninterrupted fresh engine, across the knob
/// matrix. This includes a panic injected inside the capture itself.
#[test]
fn every_panic_site_recovers_through_checkpoint_resume() {
    let _serial = lock();
    let g = rmat_graph();
    for (label, cfg) in config_matrix() {
        for site in [
            FaultSite::Push,
            FaultSite::Pull,
            FaultSite::Ballot,
            FaultSite::ScratchReset,
            FaultSite::Capture,
        ] {
            let cfg = aim_at(site, cfg.clone());
            let baseline = fresh(Bfs::new(0), &g, cfg.clone());
            let runtime = Runtime::new(cfg).expect("runtime");
            let bound = runtime.bind(&g);
            let aborted = {
                let _armed = fault::install(FaultPlan::new().panic_on(site));
                bound
                    .run(Bfs::new(0))
                    .checkpoint_on_abort()
                    .execute()
                    .expect_err("armed fault must abort the run")
            };
            assert!(
                matches!(aborted.error, SimdxError::WorkerPanicked { .. }),
                "{label}/{}: expected WorkerPanicked, got {:?}",
                site.label(),
                aborted.error
            );
            // A panic before the first boundary (scratch reset at
            // execute() entry, the capture hook itself at iteration 0)
            // leaves no snapshot; everything later must.
            let after = match aborted.checkpoint {
                Some(cp) => bound
                    .resume(Bfs::new(0), cp)
                    .execute()
                    .unwrap_or_else(|e| panic!("{label}/{}: resume failed: {}", site.label(), e)),
                None => bound.run(Bfs::new(0)).execute().expect("fresh rerun"),
            };
            assert_eq!(
                fingerprint(after),
                baseline,
                "{label}/{}: checkpointed recovery diverged from fresh engine",
                site.label()
            );
        }
    }
}

/// A panic injected at the restore hook is contained like any worker
/// panic, and the caller-side checkpoint (cloned before the attempt)
/// still resumes bit-equal once the fault is disarmed.
#[test]
fn restore_faults_are_contained_and_the_checkpoint_survives() {
    let _serial = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default().with_exec(ExecMode::Parallel { threads: 3 });
    let baseline = fresh(Bfs::new(0), &g, cfg.clone());
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let aborted = bound
        .run(Bfs::new(0))
        .max_iterations(2)
        .checkpoint_on_abort()
        .execute()
        .expect_err("capped run");
    assert_eq!(
        aborted.error,
        SimdxError::IterationLimit { max_iterations: 2 }
    );
    let cp = aborted.checkpoint.expect("boundary snapshot");
    let err = {
        let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::Restore));
        bound
            .resume(Bfs::new(0), cp.clone())
            .execute()
            .expect_err("armed restore fault")
    };
    assert!(
        matches!(&err.error, SimdxError::WorkerPanicked { payload, .. }
            if payload.contains("injected fault at restore")),
        "wrong error: {:?}",
        err.error
    );
    let after = fingerprint(
        bound
            .resume(Bfs::new(0), cp)
            .execute()
            .expect("clean resume after contained restore fault"),
    );
    assert_eq!(after, baseline, "resume after restore fault diverged");
}

#[test]
fn simdx_faults_env_grammar_drives_the_harness() {
    let _serial = lock();
    // Only this test reads SIMDX_FAULTS, and the whole body holds the
    // test lock, so the process-global variable cannot leak anywhere.
    std::env::set_var("SIMDX_FAULTS", "push:panic");
    let plan = FaultPlan::from_env()
        .expect("valid grammar")
        .expect("variable is set");
    std::env::remove_var("SIMDX_FAULTS");
    assert!(
        FaultPlan::from_env().expect("unset is fine").is_none(),
        "unset variable means no plan"
    );

    let g = rmat_graph();
    let cfg = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_direction(DirectionPolicy::FixedPush);
    let baseline = fresh(Bfs::new(0), &g, cfg.clone());
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let err = {
        let _armed = fault::install(plan);
        bound
            .run(Bfs::new(0))
            .execute()
            .expect_err("env-armed fault")
    };
    assert!(
        matches!(&err, SimdxError::WorkerPanicked { payload, .. }
            if payload.contains("injected fault at push")),
        "wrong error: {err:?}"
    );
    let after = fingerprint(bound.run(Bfs::new(0)).execute().expect("recovery"));
    assert_eq!(after, baseline, "recovery after env-driven fault diverged");
}
