//! Regenerates **Table 2**: register consumption per kernel under each
//! fusion strategy, and the measured kernel-launch counts.
//!
//! Register values are the static model in `simdx_core::fusion`
//! (calibrated to the paper's `-Xptxas -v` measurements); launch counts
//! are *measured* from real engine runs — SSSP on the high-diameter ER
//! twin for the unfused maximum, BFS for the fused counts.

use simdx_algos::sssp::Sssp;
use simdx_bench::{load, print_table, run_one, source};
use simdx_core::fusion::{registers, FusionPlan, FusionStrategy, KernelRole};
use simdx_core::EngineConfig;
use simdx_gpu::SchedUnit;
use simdx_graph::csr::Direction;

fn main() {
    // Static register table.
    let header = ["Kernel", "Registers"]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
    let rows = vec![
        vec![
            "push Thread (no fusion)".into(),
            registers::PUSH_THREAD.to_string(),
        ],
        vec![
            "push Warp (no fusion)".into(),
            registers::PUSH_WARP.to_string(),
        ],
        vec![
            "push CTA (no fusion)".into(),
            registers::PUSH_CTA.to_string(),
        ],
        vec![
            "push task mgmt (no fusion)".into(),
            registers::PUSH_TASK_MGMT.to_string(),
        ],
        vec![
            "pull Thread (no fusion)".into(),
            registers::PULL_THREAD.to_string(),
        ],
        vec![
            "pull Warp (no fusion)".into(),
            registers::PULL_WARP.to_string(),
        ],
        vec![
            "pull CTA (no fusion)".into(),
            registers::PULL_CTA.to_string(),
        ],
        vec![
            "pull task mgmt (no fusion)".into(),
            registers::PULL_TASK_MGMT.to_string(),
        ],
        vec![
            "selective fusion: push".into(),
            registers::FUSED_PUSH.to_string(),
        ],
        vec![
            "selective fusion: pull".into(),
            registers::FUSED_PULL.to_string(),
        ],
        vec!["all fusion".into(), registers::ALL_FUSION.to_string()],
    ];
    print_table("Table 2a: register consumption per kernel", &header, &rows);

    // Sanity: the plan hands out exactly these values.
    let plan = FusionPlan::new(FusionStrategy::None, 128);
    assert_eq!(
        plan.kernel(Direction::Push, KernelRole::Compute(SchedUnit::Thread))
            .registers_per_thread,
        registers::PUSH_THREAD
    );

    // Measured launch counts: SSSP on ER maximizes iteration count.
    let (_, g) = load("ER");
    let src = source(&g);
    let header = [
        "Strategy",
        "Kernel launches",
        "Iterations",
        "Barrier passes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect::<Vec<_>>();
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("no fusion", FusionStrategy::None),
        ("selective (push-pull)", FusionStrategy::PushPull),
        ("all fusion", FusionStrategy::All),
    ] {
        let cfg = EngineConfig::default().with_fusion(strategy);
        let r = run_one(&g, cfg, Sssp::new(src)).expect("sssp run");
        rows.push(vec![
            label.to_string(),
            r.report.kernel_launches().to_string(),
            r.report.iterations.to_string(),
            r.report.barrier_passes().to_string(),
        ]);
    }
    print_table(
        "Table 2b: measured kernel launching count (SSSP on ER twin)",
        &header,
        &rows,
    );
    println!("\nPaper: up to 40,688 launches unfused, 3 with push-pull fusion, 1 all-fused.");
}
