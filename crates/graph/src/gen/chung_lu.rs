//! Chung-Lu power-law generator for social-network twins.
//!
//! Social networks (FB, LJ, OR, PK, TW in Table 3) have heavy-tailed
//! degree distributions; the evaluation's workload-imbalance effects (one
//! Twitter thread "can reap more than 4,096 active vertices", §4) are a
//! direct consequence of that skew. The Chung-Lu model reproduces an
//! arbitrary expected-degree sequence: we draw degrees from a bounded
//! Pareto (power-law) distribution with exponent `alpha` and then sample
//! endpoints proportional to degree weight.

use crate::EdgeList;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chung-Lu power-law configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChungLu {
    /// Vertex count.
    pub num_vertices: VertexId,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Power-law exponent of the expected-degree sequence. Lower values
    /// are heavier-tailed; social graphs sit in `1.7..=2.2`.
    pub alpha: f64,
    /// Cap on a single vertex's expected degree, as a fraction of the
    /// total edge count. Twitter-class graphs use a high cap; capping low
    /// flattens hubs (used for graphs like LiveJournal).
    pub max_degree_fraction: f64,
}

impl ChungLu {
    /// A social-network preset with the given size and skew exponent.
    pub fn social(num_vertices: VertexId, edge_factor: u32, alpha: f64) -> Self {
        Self {
            num_vertices,
            edge_factor,
            alpha,
            max_degree_fraction: 0.01,
        }
    }

    /// Generates the edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_vertices as usize;
        let m = n as u64 * self.edge_factor as u64;

        // Expected-degree sequence: bounded Pareto via inverse transform.
        // F^-1(u) = xmin * (1 - u)^(-1/(alpha-1)).
        let xmin = 1.0f64;
        let cap = (m as f64 * self.max_degree_fraction).max(4.0);
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for _ in 0..n {
            let u: f64 = rng.gen();
            let w = (xmin * (1.0 - u).powf(-1.0 / (self.alpha - 1.0))).min(cap);
            weights.push(w);
            total += w;
        }

        // Cumulative table for O(log n) weighted endpoint sampling.
        let mut cum = Vec::with_capacity(n + 1);
        cum.push(0.0f64);
        for &w in &weights {
            let last = *cum.last().expect("cum is non-empty");
            cum.push(last + w);
        }

        let sample = |rng: &mut StdRng| -> VertexId {
            let r = rng.gen::<f64>() * total;
            // partition_point: first index with cum[i] > r, minus one.
            let idx = cum.partition_point(|&c| c <= r);
            (idx.saturating_sub(1)).min(n - 1) as VertexId
        };

        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let s = sample(&mut rng);
            let d = sample(&mut rng);
            edges.push((s, d));
        }
        let mut el = if el_needs_padding(&edges, self.num_vertices) {
            let mut out = EdgeList::new(self.num_vertices);
            for (s, d) in edges {
                out.push(s, d);
            }
            out
        } else {
            EdgeList::from_pairs(edges)
        };
        el.dedup();
        el
    }
}

fn el_needs_padding(edges: &[(VertexId, VertexId)], n: VertexId) -> bool {
    edges
        .iter()
        .map(|&(s, d)| s.max(d))
        .max()
        .is_none_or(|top| top + 1 < n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn deterministic() {
        let g = ChungLu::social(1000, 8, 2.0);
        assert_eq!(g.generate(7), g.generate(7));
    }

    #[test]
    fn respects_vertex_count() {
        let el = ChungLu::social(500, 4, 2.1).generate(1);
        assert_eq!(el.num_vertices(), 500);
    }

    #[test]
    fn heavy_tail_present() {
        let el = ChungLu::social(4000, 16, 1.8).generate(11);
        let csr = Csr::from_edge_list(&el);
        let max = csr.max_degree() as f64;
        let avg = csr.num_edges() as f64 / csr.num_vertices() as f64;
        assert!(
            max > avg * 10.0,
            "expected hub degree >> average: max={max}, avg={avg}"
        );
    }

    #[test]
    fn lower_alpha_is_more_skewed() {
        // Skew metric: share of edge endpoints carried by the top 1% of
        // vertices. (Raw max degree is not monotone in alpha here: at
        // very heavy tails the hub's sampled partners concentrate on
        // other hubs, so `dedup` collapses most of its multi-edges and
        // the post-dedup max can *fall* while the tail mass rises.)
        let skew = |alpha: f64| {
            // Disable the hub cap so the tail difference is visible.
            let cfg = ChungLu {
                num_vertices: 4000,
                edge_factor: 16,
                alpha,
                max_degree_fraction: 1.0,
            };
            let csr = Csr::from_edge_list(&cfg.generate(3));
            let n = csr.num_vertices();
            let mut degs: Vec<u32> = (0..n).map(|v| csr.degree(v)).collect();
            degs.sort_unstable_by(|a, b| b.cmp(a));
            let top: u64 = degs[..n as usize / 100].iter().map(|&d| d as u64).sum();
            top as f64 / degs.iter().map(|&d| d as u64).sum::<u64>() as f64
        };
        assert!(skew(1.7) > skew(2.4));
    }
}
