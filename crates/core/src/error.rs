//! The unified, typed error surface of the engine and session API.
//!
//! Every failure mode a service caller can hit — a bad `SIMDX_*`
//! environment knob, an inconsistent [`crate::config::EngineConfig`],
//! a malformed query, or a run that aborts inside the engine — is one
//! variant of [`SimdxError`], so callers match on variants instead of
//! catching panics. The pre-session `EngineError` (which only covered
//! the two in-run aborts) is absorbed as a deprecated alias.

/// Why a session construction, query setup or engine run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimdxError {
    /// The online-only policy hit a bin overflow: the filter alone
    /// "cannot work for many graphs, particularly large ones" (§7.2).
    OnlineOverflow {
        /// Iteration at which the overflow occurred.
        iteration: u32,
    },
    /// The configured iteration cap was reached before convergence.
    IterationLimit {
        /// The cap that was hit.
        max_iterations: u32,
    },
    /// A `SIMDX_*` environment knob (`SIMDX_EXEC`, `SIMDX_FRONTIER`,
    /// `SIMDX_LAYOUT`, `SIMDX_PUSH`) held an unrecognized value.
    InvalidKnob {
        /// The environment variable.
        var: &'static str,
        /// Human description of the accepted values.
        expected: &'static str,
        /// The rejected raw value.
        value: String,
    },
    /// The engine configuration is internally inconsistent.
    InvalidConfig {
        /// What is wrong with it.
        reason: String,
    },
    /// A query was malformed for the bound graph (out-of-range source,
    /// missing edge weights, mis-sized input vector, ...).
    InvalidQuery {
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for SimdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OnlineOverflow { iteration } => {
                write!(f, "online filter bin overflow at iteration {iteration}")
            }
            Self::IterationLimit { max_iterations } => {
                write!(f, "did not converge within {max_iterations} iterations")
            }
            // Keeps the exact wording of the historical `env_knob`
            // panic, which the panicking knob shims still emit.
            Self::InvalidKnob {
                var,
                expected,
                value,
            } => write!(f, "{var} must be {expected}, got '{value}'"),
            Self::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            Self::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
        }
    }
}

impl std::error::Error for SimdxError {}

/// The pre-session name for the engine's run failures.
#[deprecated(
    since = "0.2.0",
    note = "EngineError was absorbed into the unified `SimdxError`"
)]
pub type EngineError = SimdxError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases = [
            (
                SimdxError::OnlineOverflow { iteration: 5 },
                "overflow at iteration 5",
            ),
            (
                SimdxError::IterationLimit { max_iterations: 9 },
                "within 9 iterations",
            ),
            (
                SimdxError::InvalidKnob {
                    var: "SIMDX_EXEC",
                    expected: "'serial'",
                    value: "warp9".to_string(),
                },
                "SIMDX_EXEC must be 'serial', got 'warp9'",
            ),
            (
                SimdxError::InvalidKnob {
                    var: "SIMDX_PUSH",
                    expected: "'scan' or 'grid'",
                    value: "mesh".to_string(),
                },
                "SIMDX_PUSH must be 'scan' or 'grid', got 'mesh'",
            ),
            (
                SimdxError::InvalidConfig {
                    reason: "zero CTA width".to_string(),
                },
                "invalid engine config: zero CTA width",
            ),
            (
                SimdxError::InvalidQuery {
                    reason: "source 7 out of range".to_string(),
                },
                "invalid query: source 7 out of range",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err:?} display missing '{needle}'"
            );
        }
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            SimdxError::IterationLimit { max_iterations: 3 },
            SimdxError::IterationLimit { max_iterations: 3 }
        );
        assert_ne!(
            SimdxError::OnlineOverflow { iteration: 0 },
            SimdxError::OnlineOverflow { iteration: 1 }
        );
    }
}
