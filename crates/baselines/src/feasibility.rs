//! Paper-scale feasibility rules — the mechanics behind Table 4's
//! blank cells.
//!
//! The dataset twins are small enough that nothing OOMs at twin scale,
//! so feasibility is evaluated against the *paper-scale* sizes recorded
//! in each [`DatasetSpec`] (Table 3) and the target device's on-board
//! memory, exactly as the paper reasons:
//!
//! * CuSha "requires edge list as the input for computation, it cannot
//!   accommodate large graphs" (§7.1) — G-Shards store roughly
//!   20 bytes/edge (source value, source, destination, weight plus
//!   window bookkeeping);
//! * Gunrock's SSSP "suffers out of memory (OOM) error for all larger
//!   graphs" (§7.1) — the batch filter needs a worst-case `2·|E|`
//!   frontier on top of the weighted CSR;
//! * Galois "cannot converge for SSSP on ER" and Ligra "fails to obtain
//!   result for BFS on UK" (§7.1) — encoded as explicit rules.

use simdx_gpu::DeviceSpec;
use simdx_graph::datasets::DatasetSpec;

/// The systems compared in Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum System {
    /// This work.
    SimdX,
    /// CuSha (GPU, edge-centric).
    CuSha,
    /// Gunrock (GPU, AFC).
    Gunrock,
    /// Galois (CPU, async worklist).
    Galois,
    /// Ligra (CPU, push-pull frontier).
    Ligra,
}

/// Table 4 algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-first search.
    Bfs,
    /// PageRank.
    PageRank,
    /// Single-source shortest path.
    Sssp,
    /// k-Core decomposition.
    KCore,
}

/// Why a system cannot produce a number for a cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Infeasible {
    /// Paper-scale memory demand exceeds device memory.
    OutOfMemory {
        /// Bytes required at paper scale.
        required: u64,
        /// Bytes available.
        available: u64,
    },
    /// The system does not implement the algorithm (k-Core outside
    /// SIMD-X/Ligra: "those systems fail to support such algorithms").
    Unsupported,
    /// Known non-convergence from the paper's runs.
    DoesNotConverge,
}

/// Paper-scale bytes of the weighted CSR: uint64 offsets and uint32
/// targets for each stored orientation (out + in for directed graphs,
/// §6), with one shared weight array.
pub fn csr_bytes(spec: &DatasetSpec) -> u64 {
    let orientations = if spec.directed { 2 } else { 1 };
    orientations * ((spec.paper_vertices + 1) * 8 + spec.paper_edges * 4) + spec.paper_edges * 4
}

/// Paper-scale bytes of a CuSha G-Shards image: a 16-byte shard entry
/// (source index, destination index, source value, edge value) plus
/// ~6 B/edge of window bookkeeping, and per-vertex window arrays.
pub fn cusha_bytes(spec: &DatasetSpec) -> u64 {
    spec.paper_edges * 22 + spec.paper_vertices * 8
}

/// Paper-scale bytes Gunrock needs for an algorithm: weighted CSR plus,
/// for SSSP, the worst-case `2·|E|` batch-filter frontier of
/// (vertex, distance) pairs (§4's "up to 2·|E| memory space").
pub fn gunrock_bytes(spec: &DatasetSpec, algo: Algo) -> u64 {
    let frontier = match algo {
        Algo::Sssp => 2 * spec.paper_edges * 8,
        _ => spec.paper_vertices * 8,
    };
    csr_bytes(spec) + frontier
}

/// Checks whether `system` can run `algo` on `spec` within `device` at
/// paper scale. `Ok(())` means Table 4 shows a number.
pub fn check(
    system: System,
    algo: Algo,
    spec: &DatasetSpec,
    device: &DeviceSpec,
) -> Result<(), Infeasible> {
    let mem = device.global_mem_bytes;
    let oom = |required: u64| {
        if required > mem {
            Err(Infeasible::OutOfMemory {
                required,
                available: mem,
            })
        } else {
            Ok(())
        }
    };
    match (system, algo) {
        // k-Core comparisons exist only for SIMD-X and Ligra (§7.1).
        (System::CuSha | System::Gunrock | System::Galois, Algo::KCore) => {
            Err(Infeasible::Unsupported)
        }
        (System::SimdX, _) => oom(csr_bytes(spec) + spec.paper_vertices * 16),
        (System::CuSha, _) => oom(cusha_bytes(spec)),
        (System::Gunrock, a) => oom(gunrock_bytes(spec, a)),
        // CPU systems have 512 GB; their failures are convergence rules.
        (System::Galois, Algo::Sssp) if spec.abbrev == "ER" => Err(Infeasible::DoesNotConverge),
        (System::Ligra, Algo::Bfs) if spec.abbrev == "UK" => Err(Infeasible::DoesNotConverge),
        (System::Galois | System::Ligra, _) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::datasets;

    fn k40() -> DeviceSpec {
        DeviceSpec::k40()
    }

    fn spec(abbrev: &str) -> &'static DatasetSpec {
        datasets::dataset(abbrev).expect("known dataset")
    }

    #[test]
    fn simdx_fits_everything_on_k40() {
        for d in datasets::all() {
            for algo in [Algo::Bfs, Algo::PageRank, Algo::Sssp, Algo::KCore] {
                assert_eq!(
                    check(System::SimdX, algo, d, &k40()),
                    Ok(()),
                    "SIMD-X should fit {} for {:?}",
                    d.abbrev,
                    algo
                );
            }
        }
    }

    #[test]
    fn cusha_ooms_on_the_largest_graphs() {
        // §7.1: CuSha "cannot accommodate large graphs (e.g., FB and
        // TW) across all algorithms".
        for abbrev in ["FB", "TW", "UK"] {
            assert!(
                matches!(
                    check(System::CuSha, Algo::Bfs, spec(abbrev), &k40()),
                    Err(Infeasible::OutOfMemory { .. })
                ),
                "{abbrev} should OOM for CuSha"
            );
        }
        for abbrev in ["ER", "LJ", "OR", "PK", "RC", "KR"] {
            assert_eq!(
                check(System::CuSha, Algo::Bfs, spec(abbrev), &k40()),
                Ok(()),
                "{abbrev} should fit CuSha"
            );
        }
    }

    #[test]
    fn gunrock_sssp_ooms_on_larger_graphs_only() {
        // §7.1: Gunrock "suffers OOM for all larger graphs in SSSP" but
        // its BFS runs everywhere.
        for abbrev in ["FB", "TW", "UK"] {
            assert!(matches!(
                check(System::Gunrock, Algo::Sssp, spec(abbrev), &k40()),
                Err(Infeasible::OutOfMemory { .. })
            ));
            assert_eq!(
                check(System::Gunrock, Algo::Bfs, spec(abbrev), &k40()),
                Ok(())
            );
        }
        assert_eq!(
            check(System::Gunrock, Algo::Sssp, spec("LJ"), &k40()),
            Ok(())
        );
    }

    #[test]
    fn kcore_only_simdx_and_ligra() {
        assert_eq!(
            check(System::Gunrock, Algo::KCore, spec("LJ"), &k40()),
            Err(Infeasible::Unsupported)
        );
        assert_eq!(
            check(System::Ligra, Algo::KCore, spec("LJ"), &k40()),
            Ok(())
        );
        assert_eq!(
            check(System::SimdX, Algo::KCore, spec("LJ"), &k40()),
            Ok(())
        );
    }

    #[test]
    fn convergence_rules() {
        assert_eq!(
            check(System::Galois, Algo::Sssp, spec("ER"), &k40()),
            Err(Infeasible::DoesNotConverge)
        );
        assert_eq!(
            check(System::Ligra, Algo::Bfs, spec("UK"), &k40()),
            Err(Infeasible::DoesNotConverge)
        );
        assert_eq!(check(System::Galois, Algo::Bfs, spec("ER"), &k40()), Ok(()));
    }
}
