//! k-Core decomposition in the ACC model (§6).
//!
//! "k-Core iteratively deletes the vertices whose degree is less than k
//! until all remaining vertices possess more than k neighbors. It
//! experiences large volume of workloads at initial iterations and
//! follows with light workloads" — which is why Fig. 8 shows the ballot
//! filter firing in the first couple of iterations and the online
//! filter afterwards.
//!
//! Metadata is the remaining degree, with a `DELETED` sentinel. The
//! Active condition is the default changed-metadata test, so the
//! frontier contains both newly-deleted and merely-decremented vertices
//! — the documented online-filter redundancy (§4). `compute` keeps the
//! redundancy harmless: only deleted sources emit decrements, and
//! already-deleted destinations absorb nothing (the §7.1 optimization
//! that "reduces tremendous unnecessary updates"). Because every
//! decrement event is recorded, the massive early-iteration cascades
//! overflow the bins and flip JIT control to the ballot filter for
//! "typically the first two iterations" (Fig. 8).

use simdx_core::acc::{AccProgram, CombineKind, DirectionCtx};
use simdx_core::{EngineConfig, RunResult, Runtime, SimdxError};
use simdx_graph::csr::Direction;
use simdx_graph::{Graph, VertexId, Weight};

/// Sentinel marking a deleted vertex.
pub const DELETED: u32 = u32::MAX;

/// Default k used by the evaluation figures (§6; Table 4 uses k = 32).
pub const DEFAULT_K: u32 = 16;

/// k-Core decomposition.
#[derive(Clone, Copy, Debug)]
pub struct KCore {
    /// The core order.
    pub k: u32,
}

impl KCore {
    /// Creates a k-Core program.
    pub fn new(k: u32) -> Self {
        Self { k }
    }
}

impl AccProgram for KCore {
    type Meta = u32;
    type Update = u32;

    fn name(&self) -> &'static str {
        "kcore"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Aggregation
    }

    fn init(&self, graph: &Graph) -> (Vec<u32>, Vec<VertexId>) {
        // Track *in*-degrees: a deletion propagates along the deleted
        // vertex's out-edges and removes an in-edge at each destination.
        // On undirected graphs this is the plain degree.
        let in_ = graph.in_();
        let n = graph.num_vertices();
        let mut meta: Vec<u32> = (0..n).map(|v| in_.degree(v)).collect();
        let frontier: Vec<VertexId> = (0..n).filter(|&v| meta[v as usize] < self.k).collect();
        for &v in &frontier {
            meta[v as usize] = DELETED;
        }
        (meta, frontier)
    }

    fn compute(
        &self,
        _src: VertexId,
        _dst: VertexId,
        _w: Weight,
        m_src: &u32,
        m_dst: &u32,
    ) -> Option<u32> {
        // Only deleted sources emit decrements; already-deleted
        // destinations absorb nothing (the unnecessary-update cut).
        (*m_src == DELETED && *m_dst != DELETED).then_some(1)
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a + b
    }

    fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
        if *current == DELETED {
            return None;
        }
        let remaining = current.saturating_sub(update);
        Some(if remaining < self.k {
            DELETED
        } else {
            remaining
        })
    }

    /// Deletions propagate along out-edges; the decomposition runs in
    /// push mode (the paper's early pull phase is an optimization for
    /// the all-active first iterations; see DESIGN.md).
    fn direction(&self, _ctx: &DirectionCtx) -> Option<Direction> {
        Some(Direction::Push)
    }
}

/// Runs k-Core; returns per-vertex remaining degree (`DELETED` for
/// peeled vertices) plus the run report.
pub fn run(graph: &Graph, k: u32, config: EngineConfig) -> Result<RunResult<u32>, SimdxError> {
    let runtime = Runtime::new(config)?;
    runtime.bind(graph).run(KCore::new(k)).execute()
}

/// Extracts the survivor bitmap from a k-Core result.
pub fn survivors(meta: &[u32]) -> Vec<bool> {
    meta.iter().map(|&m| m != DELETED).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use simdx_graph::{datasets, EdgeList};

    #[test]
    fn triangle_with_pendant() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g = Graph::undirected_from_edges(el);
        let r = run(&g, 2, EngineConfig::unscaled()).expect("kcore");
        assert_eq!(survivors(&r.meta), vec![true, true, true, false]);
    }

    #[test]
    fn cascading_deletion() {
        // A path: every vertex eventually peels at k=2.
        let el = EdgeList::from_pairs((0..9).map(|i| (i, i + 1)).collect());
        let g = Graph::undirected_from_edges(el);
        let r = run(&g, 2, EngineConfig::unscaled()).expect("kcore");
        assert!(survivors(&r.meta).iter().all(|&s| !s));
        // The peel cascades inward from both endpoints.
        assert!(r.report.iterations >= 4);
    }

    #[test]
    fn matches_reference_on_dataset_twin() {
        let g = datasets::dataset("OR").unwrap().build_scaled(7, 4);
        let r = run(&g, DEFAULT_K, EngineConfig::default()).expect("kcore");
        assert_eq!(survivors(&r.meta), reference::kcore(&g, DEFAULT_K));
    }

    #[test]
    fn chunked_layout_is_bit_equal_on_peeling_cascade() {
        // k-Core's decrements are non-idempotent: a chunked-layout
        // divergence in first-change dedup or publish order would
        // corrupt the peel, not just reorder it.
        use simdx_core::MetadataLayout;
        let g = datasets::dataset("OR").unwrap().build_scaled(7, 4);
        let flat = run(
            &g,
            DEFAULT_K,
            EngineConfig::default().with_layout(MetadataLayout::Flat),
        )
        .expect("kcore flat");
        let chunked = run(&g, DEFAULT_K, EngineConfig::default().chunked()).expect("kcore chunked");
        assert_eq!(chunked.meta, flat.meta);
        assert_eq!(chunked.report.log, flat.report.log);
        assert_eq!(chunked.report.stats, flat.report.stats);
    }

    #[test]
    fn survivors_keep_k_surviving_in_neighbors() {
        let g = datasets::dataset("PK").unwrap().build_scaled(9, 5);
        let k = 8;
        let r = run(&g, k, EngineConfig::default()).expect("kcore");
        let alive = survivors(&r.meta);
        for v in 0..g.num_vertices() {
            if alive[v as usize] {
                let surviving = g
                    .in_()
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| alive[u as usize])
                    .count() as u32;
                assert!(
                    surviving >= k,
                    "vertex {v} survives with only {surviving} in-neighbors"
                );
            }
        }
    }

    #[test]
    fn ballot_fires_in_early_iterations_on_social_twin() {
        // "k-Core activates the ballot filter at the initial iterations,
        // i.e., typically the first two iterations" (§4).
        let g = datasets::dataset("LJ").unwrap().build(3);
        let r = run(&g, DEFAULT_K, EngineConfig::default()).expect("kcore");
        use simdx_core::FilterKind;
        assert_eq!(
            r.report.log.records[0].filter,
            FilterKind::Ballot,
            "pattern: {}",
            r.report.log.pattern()
        );
        let tail_ballots = r
            .report
            .log
            .records
            .iter()
            .skip(3)
            .filter(|x| x.filter == FilterKind::Ballot)
            .count();
        assert_eq!(tail_ballots, 0, "pattern: {}", r.report.log.pattern());
    }

    #[test]
    fn low_degree_graph_peels_in_one_iteration() {
        // The RC case in §4: "all its vertices have < 16 neighbors", so
        // everything dies immediately and the run is one iteration.
        let g = datasets::dataset("RC").unwrap().build_scaled(11, 4);
        assert!(g.out().max_degree() < 16);
        let r = run(&g, 16, EngineConfig::default()).expect("kcore");
        assert!(r.report.iterations <= 2);
        assert!(survivors(&r.meta).iter().all(|&s| !s));
    }
}
