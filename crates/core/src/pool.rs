//! Shared, poison-safe resource pools backing concurrent query serving.
//!
//! The session API (PR 4) kept its two mutable resources — the
//! [`WorkerPool`] and the per-metadata-type scratch arenas — in
//! `RefCell`s, which made [`crate::session::Runtime`] and
//! [`crate::session::BoundGraph`] accidentally `!Sync`: only one query
//! could ever be in flight per bound graph. This module replaces both
//! cells with check-out/check-in pools that are `Sync` by construction:
//!
//! * [`PoolStash`] — a mutex-guarded stash of idle [`WorkerPool`]s of
//!   one width. Every query checks a pool out for its duration, so two
//!   concurrent queries never share one pool (a pool runs exactly one
//!   parallel region at a time — `WorkerPool::try_run` asserts it).
//!   Poison safety falls out of the protocol: a pool poisoned by a
//!   contained worker panic is *discarded* at check-in instead of
//!   returned, so the next checkout spawns a fresh pool and in-flight
//!   peers — each holding their own pool — never observe the fault.
//! * [`ArenaPool`] — a mutex-guarded stash of idle scratch arenas keyed
//!   by the program's metadata [`TypeId`]. Queries check an arena out
//!   (or create one on a dry stash) and return it at completion, so `N`
//!   concurrent queries cost at most `N` live arenas per metadata type
//!   while a lone sequential caller reuses a single arena forever —
//!   the PR 4 amortization, minus the thread confinement.
//!
//! Both stashes cap their *idle* inventory ([`MAX_IDLE_POOLS`],
//! [`ArenaPool::cap_per_type`]): a burst of concurrency allocates
//! freely, but the steady state retains only a bounded set, so a
//! long-lived service cannot accumulate dead pools or arenas
//! (`BoundGraph::clear_scratch` drops even those).
//!
//! Lock discipline: each stash holds its mutex only to push/pop — never
//! across a spawn, a run or an arena reset — so the stashes cannot
//! deadlock against each other or the pool's own state lock, and lock
//! poisoning from a panicking *holder* is impossible by construction
//! (we still recover defensively via [`PoisonError::into_inner`]).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::Deref;

use crate::sync::{Mutex, MutexGuard, PoisonError};

use crate::par::WorkerPool;

/// Idle worker pools retained per [`PoolStash`]. Checkouts beyond this
/// still succeed (they spawn), but check-ins beyond it drop the pool —
/// a burst of concurrent queries does not permanently pin its
/// high-water mark of OS threads.
pub const MAX_IDLE_POOLS: usize = 8;

/// A stash of idle [`WorkerPool`]s of one width; see the module docs.
pub struct PoolStash {
    width: usize,
    idle: Mutex<Vec<WorkerPool>>,
}

impl std::fmt::Debug for PoolStash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolStash")
            .field("width", &self.width)
            .field("idle", &self.lock().len())
            .finish()
    }
}

impl PoolStash {
    /// A stash handing out pools presenting `width` workers each. A
    /// width of 1 is the serial runtime: [`Self::checkout`] returns
    /// `None` and no OS thread is ever spawned.
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The worker count of every pool this stash hands out.
    pub fn width(&self) -> usize {
        self.width
    }

    fn lock(&self) -> MutexGuard<'_, Vec<WorkerPool>> {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks a pool out for one query (or one bind-time build): pops
    /// an idle pool or spawns a fresh one of the stash width. `None`
    /// iff this is a serial (width 1) stash. Dropping the lease checks
    /// the pool back in; a poisoned pool is discarded there.
    pub fn checkout(&self) -> Option<PoolLease<'_>> {
        if self.width <= 1 {
            return None;
        }
        let pool = self
            .lock()
            .pop()
            .unwrap_or_else(|| WorkerPool::new(self.width));
        Some(PoolLease {
            stash: self,
            pool: Some(pool),
        })
    }

    /// Idle (checked-in) pools currently retained.
    // Exercised by this module's tests and (via the `model` re-export)
    // the workspace interleaving harness; unused in production builds.
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    pub fn idle_pools(&self) -> usize {
        self.lock().len()
    }
}

/// A checked-out [`WorkerPool`]; derefs to the pool and checks it back
/// in on drop (unless poisoned — then the pool is dropped, joining its
/// threads, and the next checkout spawns a replacement).
pub struct PoolLease<'a> {
    stash: &'a PoolStash,
    pool: Option<WorkerPool>,
}

impl Deref for PoolLease<'_> {
    type Target = WorkerPool;

    fn deref(&self) -> &WorkerPool {
        self.pool.as_ref().expect("pool present until drop")
    }
}

impl Drop for PoolLease<'_> {
    fn drop(&mut self) {
        let pool = self.pool.take().expect("pool present until drop");
        if !pool.is_poisoned() {
            let mut idle = self.stash.lock();
            if idle.len() < MAX_IDLE_POOLS {
                idle.push(pool);
            }
        }
    }
}

/// A stash of idle scratch arenas keyed by metadata [`TypeId`]; see the
/// module docs. Arenas are type-erased as `Box<dyn Any + Send>`
/// (`AccProgram::Meta: Send + 'static` makes every
/// `IterScratch<P::Meta>` satisfy that), so one pool serves interleaved
/// BFS (`u32`) and PageRank (`f32`) queries without mixing their
/// buffers.
#[derive(Debug)]
pub(crate) struct ArenaPool {
    idle: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    cap_per_type: usize,
}

impl ArenaPool {
    /// An empty pool retaining at most `cap_per_type` idle arenas per
    /// metadata type.
    pub fn new(cap_per_type: usize) -> Self {
        Self {
            idle: Mutex::new(HashMap::new()),
            cap_per_type: cap_per_type.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<TypeId, Vec<Box<dyn Any + Send>>>> {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pops an idle arena of type `T`, or `None` when the caller should
    /// create one (the pool itself cannot: construction needs the
    /// session's worker count and bitmap pre-sizing).
    pub fn checkout<T: Any + Send>(&self) -> Option<T> {
        let boxed = self.lock().get_mut(&TypeId::of::<T>())?.pop()?;
        Some(*boxed.downcast::<T>().expect("arena stash keyed by TypeId"))
    }

    /// Returns an arena to the stash; beyond [`Self::cap_per_type`]
    /// idle entries of its type, it is dropped instead.
    pub fn checkin<T: Any + Send>(&self, arena: T) {
        let mut idle = self.lock();
        let slot = idle.entry(TypeId::of::<T>()).or_default();
        if slot.len() < self.cap_per_type {
            slot.push(Box::new(arena));
        }
    }

    /// Drops every idle arena (checked-out arenas are unaffected and
    /// will be re-admitted at check-in, up to the cap).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Total idle arenas across every metadata type.
    pub fn idle_count(&self) -> usize {
        self.lock().values().map(Vec::len).sum()
    }
}

// The whole point of these pools: both are shareable across serving
// threads. (Their contents are `Send`; the stash mutexes provide the
// synchronization.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PoolStash>();
    assert_send_sync::<ArenaPool>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_stash_never_hands_out_pools() {
        let stash = PoolStash::new(1);
        assert!(stash.checkout().is_none());
        assert_eq!(stash.idle_pools(), 0);
        let stash = PoolStash::new(0);
        assert_eq!(stash.width(), 1, "width clamps to 1");
        assert!(stash.checkout().is_none());
    }

    #[test]
    fn checkout_reuses_checked_in_pools() {
        let stash = PoolStash::new(2);
        let a = stash.checkout().expect("parallel stash");
        assert_eq!(a.threads(), 2);
        drop(a);
        assert_eq!(stash.idle_pools(), 1);
        let b = stash.checkout().expect("parallel stash");
        assert_eq!(stash.idle_pools(), 0, "idle pool was reused, not respawned");
        drop(b);
        assert_eq!(stash.idle_pools(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_pools() {
        let stash = PoolStash::new(2);
        let a = stash.checkout().expect("first");
        let b = stash.checkout().expect("second");
        // Both pools are live and independent: run disjoint regions.
        a.run(&|_| {});
        b.run(&|_| {});
        drop(a);
        drop(b);
        assert_eq!(stash.idle_pools(), 2);
    }

    #[test]
    fn poisoned_pools_are_discarded_at_checkin() {
        let stash = PoolStash::new(2);
        let lease = stash.checkout().expect("parallel stash");
        let res = lease.try_run(&|w| {
            if w == 1 {
                panic!("injected");
            }
        });
        assert!(res.is_err() && lease.is_poisoned());
        drop(lease);
        assert_eq!(stash.idle_pools(), 0, "poisoned pool discarded");
        let fresh = stash.checkout().expect("replacement spawned");
        assert!(!fresh.is_poisoned());
        fresh.run(&|_| {});
    }

    #[test]
    fn idle_pool_inventory_is_capped() {
        let stash = PoolStash::new(2);
        let burst: Vec<_> = (0..MAX_IDLE_POOLS + 3)
            .map(|_| stash.checkout().expect("burst checkout"))
            .collect();
        drop(burst);
        assert_eq!(stash.idle_pools(), MAX_IDLE_POOLS);
    }

    #[test]
    fn arena_pool_roundtrips_by_type() {
        let pool = ArenaPool::new(4);
        assert_eq!(pool.checkout::<Vec<u32>>(), None, "dry stash");
        pool.checkin(vec![1u32, 2, 3]);
        pool.checkin(vec![0.5f32]);
        assert_eq!(pool.idle_count(), 2);
        assert_eq!(pool.checkout::<Vec<u32>>(), Some(vec![1u32, 2, 3]));
        assert_eq!(pool.checkout::<Vec<u32>>(), None, "u32 arena checked out");
        assert_eq!(pool.checkout::<Vec<f32>>(), Some(vec![0.5f32]));
    }

    #[test]
    fn arena_pool_caps_idle_inventory_per_type() {
        let pool = ArenaPool::new(2);
        for i in 0..5u32 {
            pool.checkin(vec![i]);
        }
        assert_eq!(pool.idle_count(), 2, "per-type cap holds");
        pool.checkin(vec![0.0f32]);
        assert_eq!(pool.idle_count(), 3, "cap is per type, not global");
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }
}
