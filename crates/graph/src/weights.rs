//! Random edge-weight assignment.
//!
//! "For graphs without edge weight, we use a random generator to generate
//! one weight for each edge similar to Gunrock" (§6). Gunrock draws
//! uniform integers in `[1, 64)`; we follow that convention and keep it
//! deterministic per seed so that SSSP results are reproducible.

use crate::edgelist::EdgeList;
use crate::Weight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default weight range (inclusive low, exclusive high), following Gunrock.
pub const DEFAULT_WEIGHT_RANGE: (Weight, Weight) = (1, 64);

/// Returns a weighted copy of `el`, drawing each weight uniformly from
/// `range`.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn assign_random_weights(el: &EdgeList, range: (Weight, Weight), seed: u64) -> EdgeList {
    assert!(range.0 < range.1, "weight range must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<Weight> = (0..el.num_edges())
        .map(|_| rng.gen_range(range.0..range.1))
        .collect();
    EdgeList::from_weighted(el.num_vertices(), el.edges().to_vec(), weights)
}

/// Convenience wrapper using [`DEFAULT_WEIGHT_RANGE`].
pub fn assign_default_weights(el: &EdgeList, seed: u64) -> EdgeList {
    assign_random_weights(el, DEFAULT_WEIGHT_RANGE, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_in_range_and_deterministic() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0), (0, 2)]);
        let w1 = assign_default_weights(&el, 99);
        let w2 = assign_default_weights(&el, 99);
        assert_eq!(w1, w2);
        for &w in w1.weights().expect("weighted") {
            assert!((1..64).contains(&w));
        }
    }

    #[test]
    fn different_seed_different_weights() {
        let el = EdgeList::from_pairs(vec![(0, 1); 64]);
        let a = assign_default_weights(&el, 1);
        let b = assign_default_weights(&el, 2);
        assert_ne!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let el = EdgeList::from_pairs(vec![(0, 1)]);
        assign_random_weights(&el, (5, 5), 0);
    }
}
