//! Offline stub for `crossbeam::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63 — scoped threads no
//! longer need an external crate, but the seed sources use crossbeam's
//! spelling). Only the API surface the workspace uses is provided:
//! `scope`, `Scope::spawn` (whose closure receives a placeholder `()`
//! instead of a nested `&Scope` — every call site ignores the argument)
//! and `ScopedJoinHandle::join`. See `crates/compat/README.md`.

use std::any::Any;
use std::thread;

/// Error type matching `crossbeam::thread::Result`'s payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Runs `f` with a scope handle; spawned threads may borrow from the
/// enclosing stack frame and are all joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope(s))))
}

/// Scope handle for spawning borrowing threads.
pub struct Scope<'scope, 'env>(&'scope thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder
    /// for crossbeam's nested-`&Scope` parameter.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.0.spawn(move || f(())))
    }
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T>(thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread, returning its result or the panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.0.join()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sum: u32 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| s.spawn(move |_| part.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn panic_surfaces_through_join() {
        super::scope(|s| {
            let h = s.spawn(|_| -> () { panic!("boom") });
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
