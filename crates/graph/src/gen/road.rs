//! Road-network generator for the high-diameter twins (ER, RC).
//!
//! Europe-osm and RoadCA-net drive the paper's most extreme behaviours:
//! thousands of BFS/SSSP iterations (2,578 / 555 / 5,086 / 675 in Fig. 8),
//! tiny frontiers that never overflow the online filter, and CuSha's
//! 480× SSSP blowup on ER. What matters structurally is (a) near-uniform
//! small degree, and (b) diameter proportional to the grid dimensions.
//!
//! The generator builds a `width × height` grid: a serpentine spanning
//! path guarantees connectivity, each remaining lattice edge appears with
//! probability `edge_keep_prob`, and a small fraction of local diagonal
//! shortcuts mimics real road junctions.

use crate::EdgeList;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Road-network (grid) generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct Road {
    /// Grid width (the long axis; diameter grows with `width + height`).
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Probability of keeping each non-spanning lattice edge.
    pub edge_keep_prob: f64,
    /// Probability of adding a diagonal shortcut at each cell.
    pub diagonal_prob: f64,
}

impl Road {
    /// A strip road network sized so that the diameter is roughly
    /// `width + height`.
    pub fn strip(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            edge_keep_prob: 0.85,
            diagonal_prob: 0.05,
        }
    }

    /// Vertex count (`width * height`).
    pub fn num_vertices(&self) -> VertexId {
        self.width * self.height
    }

    fn id(&self, x: u32, y: u32) -> VertexId {
        y * self.width + x
    }

    /// Generates the (directed, to-be-symmetrized) edge list.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate grid (either dimension zero).
    pub fn generate(&self, seed: u64) -> EdgeList {
        assert!(self.width > 0 && self.height > 0, "grid must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(self.num_vertices());

        // Serpentine spanning path: row 0 left-to-right, row 1
        // right-to-left, ... guarantees a connected backbone whose length
        // forces the diameter floor.
        for y in 0..self.height {
            for x in 0..self.width.saturating_sub(1) {
                el.push(self.id(x, y), self.id(x + 1, y));
            }
            if y + 1 < self.height {
                let x = if y % 2 == 0 { self.width - 1 } else { 0 };
                el.push(self.id(x, y), self.id(x, y + 1));
            }
        }

        // Probabilistic vertical lattice edges (horizontal ones are all in
        // the backbone already).
        for y in 0..self.height.saturating_sub(1) {
            for x in 0..self.width {
                if rng.gen::<f64>() < self.edge_keep_prob {
                    el.push(self.id(x, y), self.id(x, y + 1));
                }
            }
        }

        // Occasional diagonals.
        for y in 0..self.height.saturating_sub(1) {
            for x in 0..self.width.saturating_sub(1) {
                if rng.gen::<f64>() < self.diagonal_prob {
                    el.push(self.id(x, y), self.id(x + 1, y + 1));
                }
            }
        }

        el.dedup();
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats, Graph};

    #[test]
    fn deterministic() {
        let g = Road::strip(64, 8);
        assert_eq!(g.generate(3), g.generate(3));
    }

    #[test]
    fn connected_backbone() {
        let g = Graph::undirected_from_edges(Road::strip(40, 5).generate(1));
        let dist = stats::bfs_levels(g.out(), 0);
        assert!(
            dist.iter().all(|&d| d != u32::MAX),
            "grid must be connected"
        );
    }

    #[test]
    fn diameter_scales_with_width() {
        let short = Road::strip(32, 4);
        let long = Road::strip(256, 4);
        let d_short =
            stats::estimate_diameter(Graph::undirected_from_edges(short.generate(2)).out(), 4, 7);
        let d_long =
            stats::estimate_diameter(Graph::undirected_from_edges(long.generate(2)).out(), 4, 7);
        assert!(
            d_long > d_short * 4,
            "diameter must grow with strip length: {d_short} vs {d_long}"
        );
    }

    #[test]
    fn degrees_are_small() {
        let g = Graph::undirected_from_edges(Road::strip(64, 16).generate(5));
        assert!(g.out().max_degree() <= 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn degenerate_grid_panics() {
        Road::strip(0, 4).generate(0);
    }
}
