//! SSSP on a road-network twin — the workload class where SIMD-X's JIT
//! task management matters most (§4, Fig. 12).
//!
//! High-diameter graphs run thousands of tiny iterations. This example
//! shows why the ballot filter alone would be a disaster there (a full
//! metadata scan per iteration) and how the JIT controller avoids it —
//! comparing the two policies through two runtimes bound to the same
//! graph.
//!
//! ```text
//! cargo run --release --example sssp_roadmap
//! ```

use simdx::algos::Sssp;
use simdx::core::{EngineConfig, FilterPolicy, Runtime, SimdxError};
use simdx::graph::datasets;

fn main() -> Result<(), SimdxError> {
    let spec = datasets::dataset("RC").expect("RoadCA twin");
    let graph = spec.build(3);
    let src = datasets::default_source(graph.out());
    println!(
        "RoadCA-net twin: {} vertices, {} edges (paper scale: {} / {})",
        graph.num_vertices(),
        graph.num_edges(),
        spec.paper_vertices,
        spec.paper_edges
    );

    // One runtime per policy under comparison; each binds the same
    // graph once.
    let jit_rt = Runtime::new(EngineConfig::default())?;
    let jit = jit_rt.bind(&graph).run(Sssp::new(src)).execute()?;
    let ballot_rt = Runtime::new(EngineConfig::default().with_filter(FilterPolicy::BallotOnly))?;
    let ballot = ballot_rt.bind(&graph).run(Sssp::new(src)).execute()?;
    assert_eq!(jit.meta, ballot.meta, "policies agree on distances");

    println!("\niterations: {}", jit.report.iterations);
    println!(
        "JIT policy:        {:>8.1} simulated ms ({} ballot iterations)",
        jit.report.elapsed_ms,
        jit.report.ballot_iterations()
    );
    println!(
        "ballot-only:       {:>8.1} simulated ms (scans all {} vertices every iteration)",
        ballot.report.elapsed_ms,
        graph.num_vertices()
    );
    println!(
        "JIT speedup:       {:>8.2}x",
        ballot.report.elapsed_ms / jit.report.elapsed_ms
    );

    let reachable = jit.meta.iter().filter(|&&d| d != u32::MAX).count();
    let max_dist = jit.meta.iter().filter(|&&d| d != u32::MAX).max().unwrap();
    println!("\n{reachable} reachable vertices, farthest at distance {max_dist}");
    Ok(())
}
