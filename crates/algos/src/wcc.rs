//! Connected components by label propagation — the voting-class
//! algorithm §3.2 lists alongside BFS ("weakly connected component ...
//! algorithms fall into this category").
//!
//! Every vertex starts with its own ID as label; the minimum label
//! floods each component. Voting semantics apply: any single improving
//! update is useful and overwrites are tolerated, so the engine's
//! early-termination pull path is sound (a better label simply arrives
//! in a later iteration).

use simdx_core::acc::{AccProgram, CombineKind};
use simdx_core::{EngineConfig, RunResult, Runtime, SimdxError};
use simdx_graph::{Graph, VertexId, Weight};

/// Connected components via min-label propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wcc;

impl AccProgram for Wcc {
    type Meta = u32;
    type Update = u32;

    fn name(&self) -> &'static str {
        "wcc"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Vote
    }

    fn init(&self, graph: &Graph) -> (Vec<u32>, Vec<VertexId>) {
        let n = graph.num_vertices();
        ((0..n).collect(), (0..n).collect())
    }

    fn compute(
        &self,
        _src: VertexId,
        _dst: VertexId,
        _w: Weight,
        m_src: &u32,
        m_dst: &u32,
    ) -> Option<u32> {
        (*m_src < *m_dst).then_some(*m_src)
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
        (update < *current).then_some(update)
    }
}

/// Runs connected components; returns per-vertex labels plus the report.
///
/// On an undirected graph the labels are the weakly connected
/// components; on a directed graph they are the fixpoint of min-label
/// flooding along edge direction.
pub fn run(graph: &Graph, config: EngineConfig) -> Result<RunResult<u32>, SimdxError> {
    let runtime = Runtime::new(config)?;
    runtime.bind(graph).run(Wcc).execute()
}

/// Number of distinct labels in a WCC result.
pub fn component_count(labels: &[u32]) -> usize {
    let mut sorted: Vec<u32> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use simdx_graph::{datasets, EdgeList};

    #[test]
    fn two_components() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 4), (2, 3)]);
        let g = Graph::undirected_from_edges(el);
        let r = run(&g, EngineConfig::unscaled()).expect("wcc");
        assert_eq!(r.meta, vec![0, 0, 2, 2, 0]);
        assert_eq!(component_count(&r.meta), 2);
    }

    #[test]
    fn matches_reference_on_dataset_twin() {
        let g = datasets::dataset("RC").unwrap().build_scaled(8, 4);
        let r = run(&g, EngineConfig::default()).expect("wcc");
        assert_eq!(r.meta, reference::wcc(g.out()));
    }

    #[test]
    fn singleton_vertices_keep_own_label() {
        let g = Graph::undirected_from_edges({
            let mut el = EdgeList::new(4);
            el.push(0, 1);
            el
        });
        let r = run(&g, EngineConfig::unscaled()).expect("wcc");
        assert_eq!(r.meta[2], 2);
        assert_eq!(r.meta[3], 3);
        assert_eq!(component_count(&r.meta), 3);
    }

    #[test]
    fn connected_twin_collapses_to_one_component() {
        let g = datasets::dataset("ER").unwrap().build_scaled(6, 3);
        let r = run(&g, EngineConfig::default()).expect("wcc");
        // The road generator guarantees a connected backbone.
        assert_eq!(component_count(&r.meta), 1);
    }
}
