//! Resilient serving: checkpointed retries under injected faults.
//!
//! Stands up a `QueryPool` with a `RetryPolicy`, arms deterministic
//! worker panics mid-stream (when built with `--features fault-inject`)
//! and gives every query a deadline — then shows that every ticket
//! still completes, because a tripped attempt hands its
//! iteration-boundary checkpoint back to the scheduler and the retry
//! resumes from it instead of starting over. Per-ticket attempt counts
//! make the recovery visible.
//!
//! ```text
//! cargo run --release --features fault-inject --example resilient_serving
//! ```
//!
//! Without the feature the same binary runs clean: no faults fire and
//! every ticket completes on its first attempt.

use std::time::Duration;

use simdx::algos::Bfs;
use simdx::core::{
    EngineConfig, ExecMode, QueryPool, QueryRequest, RetryPolicy, Runtime, ServiceConfig,
    SimdxError,
};
use simdx::graph::gen::Rmat;
use simdx::graph::Graph;

fn main() -> Result<(), SimdxError> {
    let graph = Graph::directed_from_edges(Rmat::gtgraph(12, 8).generate(5));
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let runtime =
        Runtime::new(EngineConfig::default().with_exec(ExecMode::Parallel { threads: 2 }))?;
    let bound = runtime.bind(&graph);

    // Arm two mid-stream worker panics: the 3rd and 9th push sweeps
    // die. Each kills one in-flight attempt; the retry resumes from the
    // checkpoint captured at the last iteration boundary.
    #[cfg(feature = "fault-inject")]
    let _faults = {
        use simdx::core::fault::{self, FaultPlan, FaultSite};
        // The pool contains worker panics; keep the demo output to one
        // line per fault instead of a full backtrace.
        std::panic::set_hook(Box::new(|info| {
            let payload = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("<non-string payload>");
            eprintln!("[worker panic contained] {payload}");
        }));
        println!("fault injection: push sweeps 3 and 9 will panic\n");
        fault::install(
            FaultPlan::new()
                .panic_at(FaultSite::Push, 3)
                .panic_at(FaultSite::Push, 9),
        )
    };
    #[cfg(not(feature = "fault-inject"))]
    println!("fault injection disabled (rebuild with --features fault-inject)\n");

    // Up to three attempts per ticket with a short backoff between
    // them. A retry policy past one attempt arms checkpoint capture,
    // so a panicked or deadline-tripped attempt resumes instead of
    // recomputing from the seed.
    let seeds: Vec<u32> = (0..12).map(|i| (i * 97) % graph.num_vertices()).collect();
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default().workers(2).batch_max(2).retry(
            RetryPolicy::default()
                .max_attempts(3)
                .backoff(Duration::from_millis(2)),
        ),
        |client| {
            for &seed in &seeds {
                // Tight-ish deadline measured from submission; a
                // deadline trip is transient and retried just like a
                // panic, with a fresh allowance.
                client.submit(QueryRequest::new(seed).deadline(Duration::from_secs(5)))?;
            }
            Ok(())
        },
    )?;

    println!("per-ticket outcomes:");
    for (ticket, outcome) in report.outcomes.iter().enumerate() {
        let status = match &outcome.result {
            Ok(r) => format!("ok, {} iterations", r.report.iterations),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "  ticket {ticket:>2}  seed {:>4}  attempts {}  {}",
            outcome.seed, outcome.attempts, status
        );
    }

    let retried = report.outcomes.iter().filter(|o| o.attempts > 1).count();
    println!(
        "\n{} of {} queries completed ({} recovered via checkpointed retry) in {:.1} ms",
        report.completed(),
        report.outcomes.len(),
        retried,
        report.elapsed.as_secs_f64() * 1e3,
    );
    assert_eq!(
        report.completed(),
        report.outcomes.len(),
        "every query must complete despite injected faults"
    );

    Ok(())
}
