//! Occupancy: how many CTAs can be simultaneously resident.
//!
//! This is the paper's Equation 1 (§5):
//!
//! ```text
//! #CTA = floor(#registersPerSMX / (#registersPerThread · #threadsPerCTA)) · #SMX
//! ```
//!
//! plus the hardware's independent per-SM limits on threads, CTA slots
//! and shared memory. The result feeds two consumers: the executor's
//! parallelism bound, and the deadlock-free software barrier, which must
//! never launch more CTAs than can be resident at once.

use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, LaunchConfig};

/// Residency analysis of a kernel on a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident CTAs per SM.
    pub ctas_per_sm: u32,
    /// Resident CTAs across the device (`ctas_per_sm * sm_count`).
    pub resident_ctas: u32,
    /// Resident threads across the device.
    pub resident_threads: u64,
    /// Which resource limits residency.
    pub limiter: Limiter,
}

/// The resource that bounds occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Register file (the paper's Eq. 1 term).
    Registers,
    /// Per-SM thread ceiling.
    Threads,
    /// Per-SM CTA-slot ceiling.
    CtaSlots,
    /// Per-SM shared memory.
    SharedMem,
}

/// Computes the occupancy of `kernel` on `device`.
///
/// # Panics
///
/// Panics if the kernel cannot be resident at all (a single CTA exceeds
/// the register file or shared memory) — such a kernel fails to launch
/// on real hardware too.
pub fn occupancy(device: &DeviceSpec, kernel: &KernelDesc) -> Occupancy {
    let by_regs = if kernel.registers_per_thread == 0 {
        device.max_ctas_per_sm
    } else {
        (device.registers_per_sm as u64 / kernel.registers_per_cta()) as u32
    };
    let by_threads = device.max_threads_per_sm / kernel.threads_per_cta;
    let by_slots = device.max_ctas_per_sm;
    let by_shmem = device
        .shared_mem_per_sm
        .checked_div(kernel.shared_mem_per_cta)
        .unwrap_or(device.max_ctas_per_sm);

    let ctas_per_sm = by_regs.min(by_threads).min(by_slots).min(by_shmem);
    assert!(
        ctas_per_sm > 0,
        "kernel `{}` cannot be resident: {} regs/CTA, {} B shmem/CTA",
        kernel.name,
        kernel.registers_per_cta(),
        kernel.shared_mem_per_cta
    );

    let limiter = if ctas_per_sm == by_regs {
        Limiter::Registers
    } else if ctas_per_sm == by_threads {
        Limiter::Threads
    } else if ctas_per_sm == by_slots {
        Limiter::CtaSlots
    } else {
        Limiter::SharedMem
    };

    let resident_ctas = ctas_per_sm * device.sm_count;
    Occupancy {
        ctas_per_sm,
        resident_ctas,
        resident_threads: resident_ctas as u64 * kernel.threads_per_cta as u64,
        limiter,
    }
}

/// The deadlock-free launch configuration for a *fused, persistent*
/// kernel that synchronizes through the software global barrier: exactly
/// the resident-CTA bound, so every CTA is guaranteed hardware resources
/// (§5, "Compiler-based deadlock free barrier").
pub fn deadlock_free_launch(device: &DeviceSpec, kernel: &KernelDesc) -> LaunchConfig {
    let occ = occupancy(device, kernel);
    LaunchConfig {
        ctas: occ.resident_ctas,
        threads_per_cta: kernel.threads_per_cta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from §5: 110 regs/thread, 128 threads/CTA on a
    /// K40 (15 SMX, 65,536 regs) → floor(65536 / (110·128)) · 15 = 60.
    #[test]
    fn paper_equation_one_example() {
        let k40 = DeviceSpec::k40();
        let kernel = KernelDesc::new("all-fusion", 110);
        let lc = deadlock_free_launch(&k40, &kernel);
        assert_eq!(lc.ctas, 60);
        assert_eq!(lc.threads_per_cta, 128);
    }

    #[test]
    fn fewer_registers_mean_more_ctas() {
        let k40 = DeviceSpec::k40();
        let heavy = occupancy(&k40, &KernelDesc::new("heavy", 110));
        let light = occupancy(&k40, &KernelDesc::new("light", 48));
        assert!(light.resident_ctas > heavy.resident_ctas);
        // §5: halving registers roughly doubles configurable threads.
        assert!(light.resident_threads >= heavy.resident_threads * 2);
    }

    #[test]
    fn thread_ceiling_limits_tiny_kernels() {
        let k40 = DeviceSpec::k40();
        let tiny = KernelDesc::new("tiny", 8); // regs would allow 64 CTAs
        let occ = occupancy(&k40, &tiny);
        // 2048 threads / 128 per CTA = 16 CTAs; also the CTA-slot limit.
        assert_eq!(occ.ctas_per_sm, 16);
        assert_ne!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn shared_memory_can_be_the_limiter() {
        let k40 = DeviceSpec::k40();
        let k = KernelDesc::new("shmem-hungry", 32).with_shared_mem(24 * 1024);
        let occ = occupancy(&k40, &k);
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMem);
    }

    #[test]
    #[should_panic(expected = "cannot be resident")]
    fn impossible_kernel_panics() {
        let k40 = DeviceSpec::k40();
        // 600 regs * 128 threads = 76,800 > 65,536 per SM.
        occupancy(&k40, &KernelDesc::new("monster", 600));
    }

    #[test]
    fn k20_smaller_register_file_halves_residency() {
        let kernel = KernelDesc::new("push", 48);
        let on_k40 = occupancy(&DeviceSpec::k40(), &kernel);
        let on_k20 = occupancy(&DeviceSpec::k20(), &kernel);
        assert!(on_k20.ctas_per_sm < on_k40.ctas_per_sm);
    }

    #[test]
    fn p100_has_most_resident_threads() {
        let kernel = KernelDesc::new("push", 48);
        let p = occupancy(&DeviceSpec::p100(), &kernel);
        let k = occupancy(&DeviceSpec::k40(), &kernel);
        assert!(p.resident_threads > k.resident_threads * 3);
    }
}
