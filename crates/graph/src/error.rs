//! Typed ingestion errors.
//!
//! Graph construction historically policed its invariants with
//! `assert!` — fine for generator-produced inputs, fatal for a service
//! ingesting untrusted data. Every invariant now has a [`GraphError`]
//! variant and a fallible constructor (`Csr::try_new`,
//! `Csr::try_build`, `EdgeList::try_push`, ...); the legacy panicking
//! entry points delegate to them and panic with the error's `Display`,
//! preserving their historical messages.

use crate::{EdgeIdx, VertexId};

/// A structural invariant violated while building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A weights vector is not parallel to the edges it annotates.
    WeightsLengthMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of edges they should annotate.
        edges: usize,
    },
    /// An unweighted edge was appended to a weighted edge list.
    WeightedPush,
    /// A weighted edge was appended to a list with unweighted edges.
    UnweightedPush,
    /// An edge endpoint is outside `0..num_vertices`.
    EndpointOutOfRange {
        /// The offending edge's source.
        src: VertexId,
        /// The offending edge's destination.
        dst: VertexId,
        /// Vertex count of the list or CSR under construction.
        num_vertices: VertexId,
    },
    /// A CSR target is outside `0..num_vertices`.
    TargetOutOfRange {
        /// Position of the edge in the targets array.
        edge: u64,
        /// The out-of-range destination.
        target: VertexId,
        /// Vertex count of the CSR under construction.
        num_vertices: VertexId,
    },
    /// The CSR offsets array does not start at 0 / end at the edge count.
    OffsetEndpoints {
        /// `offsets.first()`, which must be 0.
        first: EdgeIdx,
        /// `offsets.last()`, which must equal `num_edges`.
        last: EdgeIdx,
        /// Length of the targets array.
        num_edges: EdgeIdx,
    },
    /// The CSR offsets array decreases at some vertex.
    NonMonotonicOffsets {
        /// First vertex whose offset exceeds its successor's.
        vertex: VertexId,
    },
    /// An offset (or edge count) does not fit the host's address space.
    EdgeCountOverflow {
        /// The unrepresentable offset value.
        offset: EdgeIdx,
    },
    /// The offsets array is empty or larger than the vertex-ID space.
    BadVertexCount {
        /// `offsets.len()` as supplied.
        offsets_len: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WeightsLengthMismatch { weights, edges } => write!(
                f,
                "weights must be parallel to edges ({weights} weights, {edges} edges)"
            ),
            Self::WeightedPush => write!(f, "edge list is weighted; use push_weighted"),
            Self::UnweightedPush => write!(f, "edge list already has unweighted edges"),
            Self::EndpointOutOfRange {
                src,
                dst,
                num_vertices,
            } => write!(
                f,
                "edge ({src}, {dst}) outside a graph with {num_vertices} vertices"
            ),
            Self::TargetOutOfRange {
                edge,
                target,
                num_vertices,
            } => write!(
                f,
                "edge {edge}: target {target} out of range for {num_vertices} vertices"
            ),
            Self::OffsetEndpoints {
                first,
                last,
                num_edges,
            } => write!(
                f,
                "offsets must span [0, {num_edges}], got [{first}, {last}]"
            ),
            Self::NonMonotonicOffsets { vertex } => {
                write!(f, "offsets not monotone at vertex {vertex}")
            }
            Self::EdgeCountOverflow { offset } => {
                write!(f, "offset {offset} exceeds the host address space")
            }
            Self::BadVertexCount { offsets_len } => write!(
                f,
                "offsets array of length {offsets_len} encodes no valid vertex count"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_legacy_assert_phrases() {
        // Panicking wrappers format these errors, so `#[should_panic
        // (expected = ...)]` call sites keep matching.
        assert!(GraphError::WeightsLengthMismatch {
            weights: 2,
            edges: 3
        }
        .to_string()
        .contains("weights must be parallel to edges"));
        assert_eq!(
            GraphError::WeightedPush.to_string(),
            "edge list is weighted; use push_weighted"
        );
        assert_eq!(
            GraphError::UnweightedPush.to_string(),
            "edge list already has unweighted edges"
        );
    }

    #[test]
    fn display_names_the_offending_edge() {
        let err = GraphError::TargetOutOfRange {
            edge: 4,
            target: 9,
            num_vertices: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("target 9"), "got: {msg}");
        assert!(msg.contains("3 vertices"), "got: {msg}");
    }
}
