//! Resumable run state: boundary snapshots and the abort wrapper that
//! carries them.
//!
//! An aborted run used to surrender every completed iteration — a
//! [`crate::supervise::RunProgress`] is just counters. This module
//! makes aborts *resumable*: when a run opts in
//! ([`crate::session::RunBuilder::checkpoint_on_abort`], or a
//! [`crate::service::RetryPolicy`] with more than one attempt), the
//! engine overwrites a caller-owned slot with a [`RunCheckpoint`] at
//! every supervised iteration boundary. Whatever abort then fires —
//! cancellation, deadline, cycle budget, iteration limit, even a
//! contained worker panic (the slot lives *outside* the panic guard) —
//! the typed error comes back inside a [`RunAborted`] holding the last
//! boundary snapshot, and
//! [`crate::session::BoundGraph::resume`] continues the run from it.
//!
//! # The resume contract
//!
//! Abort-at-iteration-k then resume is **bit-equal** to the
//! uninterrupted run — identical metadata, activation logs and
//! simulated cycle counts — across the full {Serial, Parallel} ×
//! {List, Bitmap} × {Flat, Chunked} × {Scan, Grid} matrix
//! (`tests/properties.rs`, `tests/fault_injection.rs`). This holds
//! because a boundary snapshot is *complete*: at the top of an
//! iteration `metadata_prev == metadata_curr` (the publish step just
//! ran), the activation log holds exactly the completed iterations,
//! and the executor's cycle counters plus the fusion plan's
//! launch-residency state are captured verbatim. A mid-iteration abort
//! (in-sweep poll, worker panic) surfaces the snapshot of the
//! iteration's *start*, so the resumed run re-executes that iteration
//! from scratch — charging the same costs the uninterrupted run
//! charged, because the interrupted attempt's partial charges died
//! with its executor.
//!
//! A checkpoint is RNG-free by construction (the engine is
//! deterministic), holds no borrowed state, and is `Send`, so a
//! serving layer can hand it across threads or back to the submitter.
//! It also outlives the process: [`crate::persist`] frames a
//! checkpoint into a versioned, CRC-guarded wire format and spills it
//! through a crash-safe [`crate::persist::CheckpointStore`], and
//! [`crate::service::QueryPool::recover`] resumes it bit-equal in a
//! restarted process.

use crate::error::SimdxError;
use crate::jit::ActivationLog;
use crate::metadata::MetadataStore;
use simdx_gpu::executor::ExecutorStats;
use simdx_graph::csr::Direction;
use simdx_graph::VertexId;

/// A resumable snapshot of one run at a supervised iteration boundary.
///
/// Opaque by design: every field the engine needs to continue
/// bit-equally is here (metadata store, frontier/worklist state,
/// activation log, simulated-cycle counters, fusion launch residency),
/// but callers only observe the summary accessors — mutating a
/// checkpoint would void the resume contract.
#[derive(Clone)]
pub struct RunCheckpoint<M: Copy> {
    /// `AccProgram::name()` of the run that captured this — resume
    /// validates it so a checkpoint cannot continue a different
    /// algorithm's run.
    pub(crate) algorithm: String,
    /// Vertex count of the graph the run was bound to.
    pub(crate) num_vertices: u32,
    /// The metadata store at the boundary (`prev == curr` there, so
    /// one copy restores both).
    pub(crate) meta: MetadataStore<M>,
    /// The boundary's frontier, always materialized as a list: a
    /// bins-resident frontier is drained in concatenation order at
    /// capture (same entries, duplicates and order; the concatenation
    /// costs were already charged when the bins were filled).
    pub(crate) frontier: Vec<VertexId>,
    /// Activation log of every completed iteration.
    pub(crate) log: ActivationLog,
    /// Direction of the last completed iteration.
    pub(crate) prev_dir: Direction,
    /// The iteration the resumed run executes next.
    pub(crate) iteration: u32,
    /// Host edge-traversal meter at the boundary.
    pub(crate) edges_examined: u64,
    /// Simulated-device counters at the boundary; restored verbatim so
    /// the resumed run charges on top of them.
    pub(crate) stats: ExecutorStats,
    /// Fusion launch residency `(running direction, all-launched)` —
    /// without it a resumed fused run would re-charge a kernel launch
    /// the uninterrupted run never paid.
    pub(crate) fusion: (Option<Direction>, bool),
}

impl<M: Copy> RunCheckpoint<M> {
    /// `AccProgram::name()` of the checkpointed run.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Vertex count of the graph the checkpoint was captured on.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// The iteration the resumed run will execute next — equivalently,
    /// the number of completed iterations the checkpoint preserves.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Frontier size at the checkpointed boundary.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Simulated device cycles completed before the boundary.
    pub fn cycles(&self) -> u64 {
        self.stats.total_cycles
    }

    /// Host edge traversals completed before the boundary.
    pub fn edges_examined(&self) -> u64 {
        self.edges_examined
    }
}

impl<M: Copy> std::fmt::Debug for RunCheckpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCheckpoint")
            .field("algorithm", &self.algorithm)
            .field("iteration", &self.iteration)
            .field("frontier_len", &self.frontier.len())
            .field("cycles", &self.stats.total_cycles)
            .field("edges_examined", &self.edges_examined)
            .finish_non_exhaustive()
    }
}

/// A typed abort plus, when checkpointing was armed and a boundary was
/// reached, the snapshot to resume from.
///
/// Returned (boxed — the snapshot is as big as the metadata store) by
/// [`crate::session::ResumableRunBuilder::execute`] and per seed by
/// [`crate::session::BoundGraph::run_batch_partial`]. `checkpoint` is
/// `None` when the run aborted before its first boundary capture
/// (e.g. a pre-cancelled token, or a malformed query that never
/// started) — resuming from nothing is just a fresh run.
#[derive(Clone, Debug)]
pub struct RunAborted<M: Copy> {
    /// Why the run stopped — the same typed [`SimdxError`] a
    /// non-resumable run returns.
    pub error: SimdxError,
    /// The last boundary snapshot, if one was captured.
    pub checkpoint: Option<RunCheckpoint<M>>,
}

impl<M: Copy> RunAborted<M> {
    /// Splits the wrapper into its parts.
    pub fn into_parts(self) -> (SimdxError, Option<RunCheckpoint<M>>) {
        (self.error, self.checkpoint)
    }
}

impl<M: Copy> std::fmt::Display for RunAborted<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)?;
        match &self.checkpoint {
            Some(cp) => write!(f, " (resumable from iteration {})", cp.iteration),
            None => write!(f, " (no checkpoint captured)"),
        }
    }
}

impl<M: Copy + std::fmt::Debug> std::error::Error for RunAborted<M> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

// Checkpoints travel: from a panicked serving thread's slot back to
// the submitter (`CloseMode::Abort` hands outstanding queries back
// across the scope boundary), so they must stay `Send + Sync` for any
// metadata type the ACC model admits.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunCheckpoint<u32>>();
    assert_send_sync::<RunAborted<u32>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetadataLayout;

    fn sample() -> RunCheckpoint<u32> {
        RunCheckpoint {
            algorithm: "levels".to_string(),
            num_vertices: 4,
            meta: MetadataStore::from_vec(MetadataLayout::Flat, vec![0, 1, u32::MAX, u32::MAX]),
            frontier: vec![1],
            log: ActivationLog::default(),
            prev_dir: Direction::Push,
            iteration: 2,
            edges_examined: 7,
            stats: ExecutorStats {
                total_cycles: 1234,
                ..ExecutorStats::default()
            },
            fusion: (Some(Direction::Push), false),
        }
    }

    #[test]
    fn accessors_summarize_without_exposing_state() {
        let cp = sample();
        assert_eq!(cp.algorithm(), "levels");
        assert_eq!(cp.num_vertices(), 4);
        assert_eq!(cp.iteration(), 2);
        assert_eq!(cp.frontier_len(), 1);
        assert_eq!(cp.cycles(), 1234);
        assert_eq!(cp.edges_examined(), 7);
        let dbg = format!("{cp:?}");
        assert!(
            dbg.contains("levels") && dbg.contains("iteration: 2"),
            "{dbg}"
        );
    }

    #[test]
    fn aborted_display_carries_resume_hint() {
        let with = RunAborted {
            error: SimdxError::IterationLimit { max_iterations: 2 },
            checkpoint: Some(sample()),
        };
        assert!(with.to_string().contains("resumable from iteration 2"));
        let without = RunAborted::<u32> {
            error: SimdxError::IterationLimit { max_iterations: 2 },
            checkpoint: None,
        };
        assert!(without.to_string().contains("no checkpoint captured"));
        let (err, cp) = with.into_parts();
        assert_eq!(err, SimdxError::IterationLimit { max_iterations: 2 });
        assert_eq!(cp.expect("checkpoint").iteration(), 2);
    }
}
