//! R-MAT and Graph500 Kronecker generators.
//!
//! The paper uses the Graph500 generator for Kron24 and GTgraph for the
//! R-MAT and random graphs (§6). Both are recursive-matrix generators:
//! each edge picks one of four quadrants with probabilities `(a, b, c, d)`
//! at every one of `scale` recursion levels. Kronecker graphs are R-MAT
//! with the Graph500 parameters `a=0.57, b=0.19, c=0.19` and endpoint
//! noise, which we include for both.

use crate::EdgeList;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Recursive-matrix (R-MAT) generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct Rmat {
    /// `log2` of the vertex count.
    pub scale: u32,
    /// Average directed edges per vertex (edge factor).
    pub edge_factor: u32,
    /// Quadrant probabilities; `d` is implied as `1 - a - b - c`.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Perturb quadrant probabilities per level (Graph500-style noise),
    /// which avoids the "staircase" degree artifacts of plain R-MAT.
    pub noise: f64,
}

impl Rmat {
    /// Graph500 Kronecker parameters at the given scale.
    pub fn kronecker(scale: u32, edge_factor: u32) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// Classic GTgraph R-MAT parameters (a=0.45, b=0.15, c=0.15).
    pub fn gtgraph(scale: u32, edge_factor: u32) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.45,
            b: 0.15,
            c: 0.15,
            noise: 0.0,
        }
    }

    /// Number of vertices this configuration produces.
    pub fn num_vertices(&self) -> VertexId {
        1u32 << self.scale
    }

    /// Generates the edge list.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are malformed (`a + b + c >= 1` is
    /// required to leave room for quadrant `d`).
    pub fn generate(&self, seed: u64) -> EdgeList {
        assert!(
            self.a + self.b + self.c < 1.0 + 1e-9,
            "quadrant probabilities must leave room for d"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_vertices();
        let m = n as u64 * self.edge_factor as u64;
        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            edges.push(self.one_edge(&mut rng));
        }
        let mut el = EdgeList::from_pairs(edges);
        // Force the vertex-count invariant even if the top ID was unused.
        if el.num_vertices() < n {
            el = pad_vertices(el, n);
        }
        el.dedup();
        el
    }

    /// Draws a single edge by recursive quadrant descent.
    fn one_edge(&self, rng: &mut StdRng) -> (VertexId, VertexId) {
        let mut src = 0u32;
        let mut dst = 0u32;
        for level in 0..self.scale {
            let bit = 1u32 << (self.scale - 1 - level);
            // Per-level multiplicative noise, renormalized.
            let (mut a, mut b, mut c) = (self.a, self.b, self.c);
            if self.noise > 0.0 {
                let jitter = |rng: &mut StdRng, p: f64, noise: f64| {
                    p * (1.0 - noise + 2.0 * noise * rng.gen::<f64>())
                };
                a = jitter(rng, a, self.noise);
                b = jitter(rng, b, self.noise);
                c = jitter(rng, c, self.noise);
                let d = (1.0 - self.a - self.b - self.c)
                    * (1.0 - self.noise + 2.0 * self.noise * rng.gen::<f64>());
                let total = a + b + c + d;
                a /= total;
                b /= total;
                c /= total;
            }
            let r: f64 = rng.gen();
            if r < a {
                // Upper-left: neither bit set.
            } else if r < a + b {
                dst |= bit;
            } else if r < a + b + c {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        (src, dst)
    }
}

/// Rebuilds `el` with an explicit larger vertex count.
fn pad_vertices(el: EdgeList, n: VertexId) -> EdgeList {
    match el.weights() {
        None => {
            let mut out = EdgeList::new(n);
            for &(s, d) in el.edges() {
                out.push(s, d);
            }
            out
        }
        Some(w) => EdgeList::from_weighted(n, el.edges().to_vec(), w.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let g = Rmat::kronecker(8, 4);
        assert_eq!(g.generate(42), g.generate(42));
    }

    #[test]
    fn different_seeds_differ() {
        let g = Rmat::kronecker(8, 4);
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let el = Rmat::gtgraph(7, 8).generate(3);
        assert_eq!(el.num_vertices(), 128);
    }

    #[test]
    fn edge_count_close_to_target_after_dedup() {
        let g = Rmat::gtgraph(10, 8);
        let el = g.generate(9);
        let target = 1024 * 8;
        // Dedup removes duplicates/self-loops; skewed R-MAT loses some but
        // should retain well over half.
        assert!(el.num_edges() > target / 2, "kept {}", el.num_edges());
        assert!(el.num_edges() <= target);
    }

    #[test]
    fn kronecker_is_skewed() {
        // Quadrant-a bias concentrates edges on low IDs: the top 1% of
        // vertices should hold a disproportionate share of out-edges.
        let el = Rmat::kronecker(10, 16).generate(5);
        let csr = crate::Csr::from_edge_list(&el);
        let mut degs: Vec<u32> = (0..csr.num_vertices()).map(|v| csr.degree(v)).collect();
        degs.sort_unstable_by(|x, y| y.cmp(x));
        let top: u64 = degs.iter().take(degs.len() / 100).map(|&d| d as u64).sum();
        let total: u64 = degs.iter().map(|&d| d as u64).sum();
        assert!(
            top * 10 > total,
            "top 1% holds {top}/{total}, expected > 10%"
        );
    }

    #[test]
    #[should_panic(expected = "room for d")]
    fn bad_probabilities_panic() {
        let g = Rmat {
            scale: 4,
            edge_factor: 1,
            a: 0.6,
            b: 0.3,
            c: 0.3,
            noise: 0.0,
        };
        g.generate(0);
    }
}
