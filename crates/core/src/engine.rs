//! The SIMD-X BSP engine (Fig. 4(b)).
//!
//! Each iteration:
//!
//! 1. decide the scan direction (program hint, then the frontier-volume
//!    heuristic);
//! 2. classify active tasks into small/med/large worklists (§4 step I);
//! 3. run the Thread, Warp and CTA compute kernels over their lists
//!    (§4 step II), performing real Compute/Combine/apply work while the
//!    online filter records updated vertices into bounded thread bins;
//! 4. pass the software global barrier (fused modes);
//! 5. task management: concatenate bins (online) or ballot-scan the
//!    metadata (ballot), under JIT control;
//! 6. barrier again, publish `metadata_prev`, loop until the frontier
//!    is empty or the program reports convergence.
//!
//! All metadata updates are performed exactly (the result is bit-equal
//! to a sequential reference); the executor charges simulated cycles for
//! every step so the report reflects the paper's cost structure.

use crate::acc::{AccProgram, CombineKind, DirectionCtx};
use crate::config::{DirectionPolicy, EngineConfig};
use crate::filters::{ballot, online, FilterKind};
use crate::frontier::{ThreadBins, Worklists};
use crate::fusion::{FusionPlan, KernelRole};
use crate::jit::{ActivationLog, EngineError, IterationRecord, JitController};
use crate::metrics::{RunReport, RunResult};
use simdx_graph::csr::{Csr, Direction};
use simdx_graph::{Graph, VertexId};
use simdx_gpu::{Cost, GpuExecutor, SchedUnit};

/// The SIMD-X engine: a program, a graph and a configuration.
pub struct Engine<'g, P: AccProgram> {
    program: P,
    graph: &'g Graph,
    config: EngineConfig,
}

impl<'g, P: AccProgram> Engine<'g, P> {
    /// Creates an engine.
    pub fn new(program: P, graph: &'g Graph, config: EngineConfig) -> Self {
        Self {
            program,
            graph,
            config,
        }
    }

    /// The program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the program to convergence, returning final metadata and the
    /// run report.
    pub fn run(&mut self) -> Result<RunResult<P::Meta>, EngineError> {
        let n = self.graph.num_vertices() as usize;
        let num_edges = self.graph.num_edges();
        let mut executor = GpuExecutor::new(self.config.device.clone());
        executor.set_scale(self.config.parallelism_scale);
        let mut plan = FusionPlan::new(self.config.fusion, self.config.threads_per_cta);
        let jit = JitController::new(self.config.filter);

        let (mut curr, mut frontier) = self.program.init(self.graph);
        assert_eq!(curr.len(), n, "init must produce one metadata per vertex");
        let mut prev = curr.clone();
        let mut changed: Vec<VertexId> = Vec::new();
        let mut log = ActivationLog::default();
        let mut bins = ThreadBins::new(1, self.config.overflow_threshold);
        let mut prev_dir = Direction::Push;
        let mut iteration = 0u32;
        // Per-iteration stamps for the aggregation-pull dirty marking.
        let mut dirty_stamp: Vec<u32> = Vec::new();

        loop {
            if frontier.is_empty()
                || self
                    .program
                    .converged(iteration, frontier.len() as u64, &curr)
            {
                break;
            }
            if iteration >= self.config.max_iterations {
                return Err(EngineError::IterationLimit {
                    max_iterations: self.config.max_iterations,
                });
            }
            let cycles_before = executor.stats().total_cycles;

            // 1. Direction.
            let out_csr = self.graph.out();
            let degree_sum: u64 = frontier.iter().map(|&v| out_csr.degree(v) as u64).sum();
            let ctx = DirectionCtx {
                iteration,
                frontier_len: frontier.len() as u64,
                frontier_degree_sum: degree_sum,
                num_vertices: n as u64,
                num_edges,
                previous: prev_dir,
            };
            let dir = self
                .program
                .direction(&ctx)
                .unwrap_or_else(|| self.heuristic_direction(&ctx));
            let scan_csr = self.graph.csr(dir);

            // 2. Worklists. Pull mode recomputes every candidate vertex;
            // push mode expands the frontier itself.
            let frontier_sorted = log
                .records
                .last()
                .map_or(true, |r| r.filter == FilterKind::Ballot);
            let worklists = match dir {
                Direction::Push => {
                    Worklists::classify(&frontier, scan_csr, self.config.thresholds)
                }
                Direction::Pull => {
                    // Voting programs sweep every candidate (bottom-up
                    // BFS scans all unvisited vertices and terminates
                    // each scan early). Aggregation programs must visit
                    // every in-edge of a recomputed vertex, so task
                    // management restricts recomputation to vertices
                    // with at least one active in-neighbor — a skipped
                    // vertex would recompute its existing value.
                    let mut cands = Vec::new();
                    match self.program.combine_kind() {
                        CombineKind::Vote => {
                            for v in 0..n as VertexId {
                                if self.program.pull_candidate(v, &curr[v as usize]) {
                                    cands.push(v);
                                }
                            }
                            // Candidate scan: a coalesced metadata sweep.
                            let scan_tasks: Vec<Cost> = (0..(n as u64).div_ceil(32))
                                .map(|_| Cost {
                                    compute_ops: 64,
                                    coalesced_reads: 32,
                                    writes: 4,
                                    width: 32,
                                    ..Cost::default()
                                })
                                .collect();
                            let k = plan.kernel(dir, KernelRole::TaskMgmt);
                            executor.run_kernel(&k, SchedUnit::Warp, &scan_tasks, false);
                        }
                        CombineKind::Aggregation => {
                            if dirty_stamp.len() != n {
                                dirty_stamp = vec![u32::MAX; n];
                            }
                            let mut mark_tasks = Vec::with_capacity(frontier.len());
                            for &v in &frontier {
                                let nbrs = out_csr.neighbors(v);
                                for &u in nbrs {
                                    if dirty_stamp[u as usize] != iteration
                                        && self
                                            .program
                                            .pull_candidate(u, &curr[u as usize])
                                    {
                                        dirty_stamp[u as usize] = iteration;
                                        cands.push(u);
                                    }
                                }
                                mark_tasks.push(Cost {
                                    compute_ops: nbrs.len() as u64 + 1,
                                    coalesced_reads: 1 + nbrs.len() as u64,
                                    writes: nbrs.len() as u64,
                                    width: 32,
                                    ..Cost::default()
                                });
                            }
                            cands.sort_unstable();
                            let k = plan.kernel(dir, KernelRole::TaskMgmt);
                            executor.run_kernel(&k, SchedUnit::Warp, &mark_tasks, false);
                        }
                    }
                    Worklists::classify(&cands, scan_csr, self.config.thresholds)
                }
            };

            // 3. Thread bins for the online filter, sized by the Thread
            // kernel's (scaled) slot count.
            let thread_kernel = plan.kernel(dir, KernelRole::Compute(SchedUnit::Thread));
            let bin_count = executor.slots_for(&thread_kernel, SchedUnit::Thread) as usize;
            if bins.num_threads() != bin_count
                || bins.threshold() != self.config.overflow_threshold
            {
                bins = ThreadBins::new(bin_count, self.config.overflow_threshold);
            } else {
                bins.clear();
            }
            let record = jit.records_bins();

            // 4. Compute kernels over the three worklists.
            let mut task_counter = 0u64;
            for (unit, list) in worklists.iter_units() {
                let kernel = plan.kernel(dir, KernelRole::Compute(unit));
                let launch = plan.needs_launch(dir);
                let width = unit.threads(self.config.threads_per_cta) as u64;
                let mut tasks = Vec::with_capacity(list.len());
                for &v in list {
                    let cost = match dir {
                        Direction::Push => Self::push_task(
                            &self.program,
                            v,
                            scan_csr,
                            &prev,
                            &mut curr,
                            &mut bins,
                            &mut changed,
                            record,
                            width,
                            task_counter,
                            frontier_sorted,
                        ),
                        Direction::Pull => Self::pull_task(
                            &self.program,
                            v,
                            scan_csr,
                            &prev,
                            &mut curr,
                            &mut bins,
                            &mut changed,
                            record,
                            width,
                            task_counter,
                        ),
                    };
                    tasks.push(cost);
                    task_counter += 1;
                }
                executor.run_kernel(&kernel, unit, &tasks, launch);
            }
            if plan.uses_global_barrier() {
                executor.charge_barrier();
            }

            // 5. Task management under JIT control.
            let decision = jit.decide(&bins, iteration)?;
            let tm_kernel = plan.kernel(dir, KernelRole::TaskMgmt);
            let tm_launch = plan.needs_launch(dir);
            let next = match decision {
                FilterKind::Online => {
                    online::concatenate(&bins, &mut executor, &tm_kernel, tm_launch)
                }
                FilterKind::Ballot => {
                    ballot::scan(&self.program, &curr, &prev, &mut executor, &tm_kernel, tm_launch)
                }
            };
            if plan.uses_global_barrier() {
                executor.charge_barrier();
            }

            // 6. Publish metadata_prev for the changed vertices.
            for &v in &changed {
                prev[v as usize] = curr[v as usize];
            }
            changed.clear();

            log.records.push(IterationRecord {
                iteration,
                direction: dir,
                frontier_len: worklists.len(),
                degree_sum,
                filter: decision,
                overflowed: bins.overflowed(),
                cycles: executor.stats().total_cycles - cycles_before,
            });

            frontier = next;
            prev_dir = dir;
            iteration += 1;
        }

        let elapsed_ms = executor.elapsed_ms();
        Ok(RunResult {
            meta: curr,
            report: RunReport {
                algorithm: self.program.name().to_string(),
                device: executor.device().name,
                iterations: iteration,
                elapsed_ms,
                stats: executor.stats().clone(),
                log,
            },
        })
    }

    /// Frontier-volume direction heuristic (Beamer-style): pull when the
    /// frontier's out-degree volume exceeds `|E| / alpha`.
    ///
    /// The divisor only applies to voting programs, whose pull
    /// iterations terminate early at the first useful parent (§3.3's
    /// collaborative early termination makes a pull sweep much cheaper
    /// than |E|). Aggregation programs must visit every in-edge of every
    /// candidate, so pull can only win once the push volume exceeds the
    /// full sweep itself.
    fn heuristic_direction(&self, ctx: &DirectionCtx) -> Direction {
        match self.config.direction {
            DirectionPolicy::FixedPush => Direction::Push,
            DirectionPolicy::FixedPull => Direction::Pull,
            DirectionPolicy::Adaptive { alpha } => {
                let alpha = match self.program.combine_kind() {
                    CombineKind::Vote => alpha,
                    CombineKind::Aggregation => 1,
                };
                if ctx.frontier_degree_sum.saturating_mul(alpha) > ctx.num_edges {
                    Direction::Pull
                } else {
                    Direction::Push
                }
            }
        }
    }

    /// Processes one push-mode task (active vertex `v` scatters along
    /// its out-edges), returning the slot-scaled cost.
    ///
    /// BSP semantics: source metadata is read from the iteration-start
    /// snapshot (`prev`), destination metadata is read from and written
    /// to `curr` — in-iteration updates accumulate at destinations but
    /// never propagate transitively within an iteration, matching the
    /// synchronization of Fig. 4(b).
    #[allow(clippy::too_many_arguments)]
    fn push_task(
        program: &P,
        v: VertexId,
        csr: &Csr,
        prev: &[P::Meta],
        curr: &mut [P::Meta],
        bins: &mut ThreadBins,
        changed: &mut Vec<VertexId>,
        record: bool,
        width: u64,
        task_counter: u64,
        frontier_sorted: bool,
    ) -> Cost {
        let (lo, hi) = csr.range(v);
        let d = (hi - lo) as u64;
        let m_src = prev[v as usize];
        let mut applied = 0u64;
        let bin_base = (task_counter * width) as usize;
        for i in lo..hi {
            let u = csr.targets()[i];
            let w = csr.weights().map_or(1, |ws| ws[i]);
            if let Some(up) = program.compute(v, u, w, &m_src, &curr[u as usize]) {
                // First-change detection: a vertex is enqueued exactly
                // once per iteration even when several sources update it
                // (duplicate frontier entries would double-apply
                // non-idempotent aggregations like k-Core's decrements).
                let first_change = curr[u as usize] == prev[u as usize];
                if let Some(new) = program.apply(u, &curr[u as usize], up) {
                    curr[u as usize] = new;
                    applied += 1;
                    if first_change {
                        changed.push(u);
                        if record && program.activates(u, &new) {
                            bins.record(bin_base + (i - lo) % width as usize, u);
                        }
                    }
                }
            }
        }
        Cost {
            compute_ops: 2 * d + 2 + Self::tree_ops(width),
            coalesced_reads: d + if frontier_sorted { 1 } else { 0 },
            random_reads: d + if frontier_sorted { 0 } else { 1 },
            writes: applied,
            width,
            ..Cost::default()
        }
    }

    /// Processes one pull-mode task (candidate vertex `v` gathers along
    /// its in-edges, combining updates warp-locally before a single
    /// non-atomic write — Fig. 4(b) lines 1-8).
    #[allow(clippy::too_many_arguments)]
    fn pull_task(
        program: &P,
        v: VertexId,
        csr: &Csr,
        prev: &[P::Meta],
        curr: &mut [P::Meta],
        bins: &mut ThreadBins,
        changed: &mut Vec<VertexId>,
        record: bool,
        width: u64,
        task_counter: u64,
    ) -> Cost {
        let (lo, hi) = csr.range(v);
        let m_dst = curr[v as usize];
        let vote = program.combine_kind() == CombineKind::Vote;
        let mut acc: Option<P::Update> = None;
        let mut scanned = 0u64;
        for i in lo..hi {
            scanned += 1;
            let u = csr.targets()[i];
            let w = csr.weights().map_or(1, |ws| ws[i]);
            if let Some(up) = program.compute(u, v, w, &prev[u as usize], &m_dst) {
                acc = Some(match acc {
                    None => up,
                    Some(a) => program.combine(a, up),
                });
                if vote {
                    // Collaborative early termination: for voting
                    // combines any single update decides the vertex.
                    break;
                }
            }
        }
        let mut applied = 0u64;
        if let Some(up) = acc {
            let first_change = curr[v as usize] == prev[v as usize];
            if let Some(new) = program.apply(v, &curr[v as usize], up) {
                curr[v as usize] = new;
                applied = 1;
                if first_change {
                    changed.push(v);
                    if record && program.activates(v, &new) {
                        bins.record((task_counter * width) as usize, v);
                    }
                }
            }
        }
        Cost {
            compute_ops: 2 * scanned + 2 + Self::tree_ops(width),
            coalesced_reads: 1 + scanned,
            random_reads: scanned,
            writes: applied,
            width,
            ..Cost::default()
        }
    }

    /// ALU cost of the cross-lane Combine tree: `log2(width)` shuffle
    /// steps per lane (Fig. 4(b) line 5's cross-warp Combine).
    fn tree_ops(width: u64) -> u64 {
        if width <= 1 {
            0
        } else {
            (64 - u64::leading_zeros(width) as u64) * width / 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CombineKind;
    use crate::config::FilterPolicy;
    use crate::fusion::FusionStrategy;
    use simdx_graph::{EdgeList, Weight};

    /// BFS-like vote program over levels, used to exercise the engine
    /// end to end without depending on `simdx-algos`.
    struct Levels {
        src: VertexId,
    }

    impl AccProgram for Levels {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "levels"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Vote
        }

        fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            let mut meta = vec![u32::MAX; g.num_vertices() as usize];
            meta[self.src as usize] = 0;
            (meta, vec![self.src])
        }

        fn compute(
            &self,
            _src: VertexId,
            _dst: VertexId,
            _w: Weight,
            m_src: &u32,
            m_dst: &u32,
        ) -> Option<u32> {
            if *m_src == u32::MAX || *m_dst != u32::MAX {
                return None;
            }
            Some(m_src + 1)
        }

        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
            (update < *current).then_some(update)
        }

        fn pull_candidate(&self, _v: VertexId, meta: &u32) -> bool {
            *meta == u32::MAX
        }
    }

    fn path_graph(n: u32) -> Graph {
        Graph::undirected_from_edges(EdgeList::from_pairs(
            (0..n - 1).map(|i| (i, i + 1)).collect(),
        ))
    }

    fn run_levels(g: &Graph, config: EngineConfig) -> RunResult<u32> {
        Engine::new(Levels { src: 0 }, g, config)
            .run()
            .expect("engine run")
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(10);
        let r = run_levels(&g, EngineConfig::unscaled());
        assert_eq!(r.meta, (0..10).collect::<Vec<u32>>());
        // Nine discovery levels plus the final empty-frontier iteration.
        assert_eq!(r.report.iterations, 10);
        assert!(r.report.elapsed_ms > 0.0);
    }

    #[test]
    fn all_filter_policies_agree_on_result() {
        let g = path_graph(64);
        let base = run_levels(&g, EngineConfig::unscaled()).meta;
        for policy in [FilterPolicy::Jit, FilterPolicy::BallotOnly, FilterPolicy::OnlineOnly] {
            let r = run_levels(&g, EngineConfig::unscaled().with_filter(policy));
            assert_eq!(r.meta, base, "policy {policy:?} diverged");
        }
    }

    #[test]
    fn all_fusion_strategies_agree_on_result() {
        let g = path_graph(64);
        let base = run_levels(&g, EngineConfig::unscaled()).meta;
        for fusion in [FusionStrategy::None, FusionStrategy::All, FusionStrategy::PushPull] {
            let r = run_levels(&g, EngineConfig::unscaled().with_fusion(fusion));
            assert_eq!(r.meta, base, "fusion {fusion:?} diverged");
        }
    }

    #[test]
    fn fusion_reduces_kernel_launches() {
        let g = path_graph(200);
        let none = run_levels(&g, EngineConfig::unscaled().with_fusion(FusionStrategy::None));
        let pp = run_levels(&g, EngineConfig::unscaled().with_fusion(FusionStrategy::PushPull));
        let all = run_levels(&g, EngineConfig::unscaled().with_fusion(FusionStrategy::All));
        // Unfused: 4 launches per iteration. Fused: a handful total.
        assert!(none.report.kernel_launches() >= 4 * none.report.iterations as u64);
        assert!(pp.report.kernel_launches() <= 6);
        assert_eq!(all.report.kernel_launches(), 1);
        // Fused strategies pay barriers instead.
        assert_eq!(none.report.barrier_passes(), 0);
        assert!(pp.report.barrier_passes() >= 2 * pp.report.iterations as u64);
    }

    #[test]
    fn non_fused_is_slower_on_iteration_heavy_graphs() {
        // A long path = thousands of tiny iterations: launch overhead
        // dominates, fusion wins (the §7.2 BFS-on-ER effect).
        let g = path_graph(400);
        let none = run_levels(&g, EngineConfig::unscaled().with_fusion(FusionStrategy::None));
        let pp = run_levels(&g, EngineConfig::unscaled().with_fusion(FusionStrategy::PushPull));
        assert!(
            none.report.elapsed_ms > pp.report.elapsed_ms * 2.0,
            "non-fused {} vs push-pull {}",
            none.report.elapsed_ms,
            pp.report.elapsed_ms
        );
    }

    #[test]
    fn online_only_overflows_on_wide_fanout() {
        // A star graph: one CTA task activates every leaf at once, far
        // over its lanes' bin thresholds (the Twitter hub effect of §4).
        let leaves = 10_000u32;
        let g = Graph::directed_from_edges(EdgeList::from_pairs(
            (1..=leaves).map(|i| (0, i)).collect(),
        ));
        let cfg = EngineConfig::unscaled()
            .with_filter(FilterPolicy::OnlineOnly)
            .with_direction(DirectionPolicy::FixedPush);
        let err = Engine::new(Levels { src: 0 }, &g, cfg).run().unwrap_err();
        assert!(matches!(err, EngineError::OnlineOverflow { iteration: 0 }));

        // JIT handles the same graph by switching to ballot.
        let cfg = EngineConfig::unscaled()
            .with_filter(FilterPolicy::Jit)
            .with_direction(DirectionPolicy::FixedPush);
        let r = Engine::new(Levels { src: 0 }, &g, cfg).run().expect("jit run");
        assert_eq!(r.report.log.records[0].filter, FilterKind::Ballot);
        assert!(r.report.log.records[0].overflowed);
        assert_eq!(r.meta[1], 1);
    }

    #[test]
    fn ballot_only_charges_scan_every_iteration() {
        // A long path at the twin device scale: tiny frontiers, many
        // iterations — the V-proportional scan makes ballot-only slower
        // (the Fig. 12 road-graph effect).
        let g = path_graph(2048);
        let mut cfg = EngineConfig::default();
        cfg.max_iterations = 10_000;
        let jit = run_levels(&g, cfg.clone());
        let ballot = run_levels(&g, cfg.with_filter(FilterPolicy::BallotOnly));
        assert!(
            ballot.report.elapsed_ms > jit.report.elapsed_ms,
            "ballot {} <= jit {}",
            ballot.report.elapsed_ms,
            jit.report.elapsed_ms
        );
        assert_eq!(ballot.report.ballot_iterations(), ballot.report.iterations);
        assert_eq!(jit.report.ballot_iterations(), 0);
    }

    #[test]
    fn direction_switches_to_pull_mid_bfs() {
        // A dense-ish random graph so the mid frontier carries most of
        // the edge volume.
        let mut edges = Vec::new();
        let n = 256u32;
        for v in 0..n {
            for k in 1..=8 {
                edges.push((v, (v * 7 + k * 13) % n));
            }
        }
        let g = Graph::directed_from_edges(EdgeList::from_pairs(edges));
        let r = run_levels(&g, EngineConfig::unscaled());
        let dirs: Vec<Direction> = r.report.log.records.iter().map(|x| x.direction).collect();
        assert_eq!(dirs.first(), Some(&Direction::Push), "starts pushing");
        assert!(
            dirs.contains(&Direction::Pull),
            "high-volume frontier should trigger pull, got {dirs:?}"
        );
    }

    #[test]
    fn iteration_limit_enforced() {
        let g = path_graph(50);
        let mut cfg = EngineConfig::unscaled();
        cfg.max_iterations = 3;
        let err = Engine::new(Levels { src: 0 }, &g, cfg).run().unwrap_err();
        assert_eq!(err, EngineError::IterationLimit { max_iterations: 3 });
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let mut el = EdgeList::new(4);
        el.push(1, 2);
        let g = Graph::directed_from_edges(el);
        let r = run_levels(&g, EngineConfig::unscaled());
        // Source 0 has no out-edges: one iteration processes it and
        // activates nothing.
        assert_eq!(r.meta[0], 0);
        assert_eq!(r.meta[2], u32::MAX);
        assert!(r.report.iterations <= 1);
    }

    #[test]
    fn activation_log_is_complete() {
        let g = path_graph(20);
        let r = run_levels(
            &g,
            EngineConfig::unscaled().with_direction(DirectionPolicy::FixedPush),
        );
        assert_eq!(r.report.log.iterations(), r.report.iterations);
        for (i, rec) in r.report.log.records.iter().enumerate() {
            assert_eq!(rec.iteration, i as u32);
            assert!(rec.cycles > 0);
            assert_eq!(rec.frontier_len, 1);
        }
    }
}
