//! SIMD-X core: the ACC programming model, just-in-time task management
//! and push-pull based kernel fusion over the simulated GPU.
//!
//! The crate mirrors the paper's architecture diagram (Fig. 3):
//!
//! ```text
//!          BFS  BP  k-Core  PageRank  SpMV  SSSP   (simdx-algos)
//!        ┌──────────────────────────────────────┐
//!        │        ACC programming model          │  acc
//!        ├──────────────────┬───────────────────┤
//!        │ Just-in-time     │ Push-pull based   │  jit, filters /
//!        │ task management  │ kernel fusion     │  fusion
//!        │ online + ballot  │ deadlock-free     │
//!        │ filters, JIT ctl │ global barrier    │
//!        └──────────────────┴───────────────────┘
//!                      GPU (simdx-gpu)
//! ```
//!
//! # Example: a session serving repeated queries
//!
//! The public surface is the session API ([`session`]): a long-lived
//! [`Runtime`](session::Runtime) owns the worker pool and validated
//! configuration, [`Runtime::bind`](session::Runtime::bind)
//! precomputes per-graph engine state, and every query through the run
//! builder reuses those resources — the paper's own design, where task
//! management state persists so per-iteration decisions stay cheap,
//! extended across whole queries.
//!
//! ```
//! use simdx_core::prelude::*;
//! use simdx_graph::{EdgeList, Graph, VertexId, Weight};
//!
//! // A 4-vertex path and a trivial "levels" vote program.
//! #[derive(Clone)]
//! struct Levels {
//!     src: VertexId,
//! }
//! impl AccProgram for Levels {
//!     type Meta = u32;
//!     type Update = u32;
//!     fn name(&self) -> &'static str { "levels" }
//!     fn combine_kind(&self) -> CombineKind { CombineKind::Vote }
//!     fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
//!         let mut m = vec![u32::MAX; g.num_vertices() as usize];
//!         m[self.src as usize] = 0;
//!         (m, vec![self.src])
//!     }
//!     fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight,
//!                ms: &u32, md: &u32) -> Option<u32> {
//!         (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
//!     }
//!     fn combine(&self, a: u32, b: u32) -> u32 { a.min(b) }
//!     fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
//!         (u < *c).then_some(u)
//!     }
//! }
//! impl SourcedProgram for Levels {
//!     fn with_source(mut self, src: VertexId) -> Self {
//!         self.src = src;
//!         self
//!     }
//! }
//!
//! let g = Graph::directed_from_edges(
//!     EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3)]));
//!
//! // One runtime, one bind — then as many queries as you like,
//! // amortizing the pool, scratch arenas and push shards.
//! let runtime = Runtime::new(EngineConfig::unscaled())?;
//! let bound = runtime.bind(&g);
//! let result = bound.run(Levels { src: 0 }).execute()?;
//! assert_eq!(result.meta, vec![0, 1, 2, 3]);
//!
//! // Batched queries: one report per seed, shared scratch.
//! let batch = bound.run_batch(Levels { src: 0 }, &[0, 1, 2])?;
//! assert_eq!(batch[2].meta, vec![u32::MAX, u32::MAX, 0, 1]);
//! # Ok::<(), SimdxError>(())
//! ```

pub mod acc;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod filters;
pub mod frontier;
pub mod fusion;
pub mod grid;
pub mod jit;
pub mod metadata;
pub mod metrics;
pub mod par;
pub mod persist;
mod pool;
mod scratch;
pub mod service;
pub mod session;
pub mod supervise;
pub mod sync;

// The deterministic interleaving harness (`tests/model_interleave.rs`
// at the workspace root, `--features model`) drives the internal pools
// through explicitly enumerated schedules; the types stay private in
// every other build.
#[cfg(feature = "model")]
pub use pool::{PoolLease, PoolStash, MAX_IDLE_POOLS};

pub use acc::{AccProgram, CombineKind, DirectionCtx, SourcedProgram};
pub use checkpoint::{RunAborted, RunCheckpoint};
pub use config::{
    DegradePolicy, DirectionPolicy, EngineConfig, ExecMode, FilterPolicy, FrontierRepr,
    MetadataLayout, PushStrategy,
};
pub use engine::Engine;
#[allow(deprecated)]
pub use error::EngineError;
pub use error::SimdxError;
pub use filters::FilterKind;
pub use frontier::FrontierBitmap;
pub use fusion::FusionStrategy;
pub use grid::GridCsr;
pub use jit::{ActivationLog, IterationRecord};
pub use metadata::MetadataStore;
pub use metrics::{RunReport, RunResult};
pub use par::WorkerPanic;
pub use persist::{CheckpointStore, DirStore, DurableCheckpoint, PersistMeta};
pub use service::{
    AdmissionPolicy, Breaker, CloseMode, DurabilityPolicy, QueryClient, QueryPool, QueryRequest,
    QueryTicket, RecoveredQuery, RecoveryReport, RetryPolicy, ServeOutcome, ServeReport,
    ServiceConfig,
};
pub use session::{BoundGraph, ResumableRunBuilder, RunBuilder, Runtime, SeedOutcome};
pub use supervise::{AbortReason, CancelToken, RunProgress};

/// Convenience re-exports for programs and harnesses.
pub mod prelude {
    pub use crate::acc::{AccProgram, CombineKind, DirectionCtx, SourcedProgram};
    pub use crate::checkpoint::{RunAborted, RunCheckpoint};
    pub use crate::config::{
        DegradePolicy, DirectionPolicy, EngineConfig, ExecMode, FilterPolicy, FrontierRepr,
        MetadataLayout, PushStrategy,
    };
    pub use crate::engine::Engine;
    pub use crate::error::SimdxError;
    pub use crate::frontier::FrontierBitmap;
    pub use crate::fusion::FusionStrategy;
    pub use crate::grid::GridCsr;
    pub use crate::jit::IterationRecord;
    pub use crate::metadata::MetadataStore;
    pub use crate::metrics::{RunReport, RunResult};
    pub use crate::persist::{CheckpointStore, DirStore, DurableCheckpoint, PersistMeta};
    pub use crate::service::{
        AdmissionPolicy, CloseMode, DurabilityPolicy, QueryPool, QueryRequest, RecoveryReport,
        RetryPolicy, ServeReport, ServiceConfig,
    };
    pub use crate::session::{BoundGraph, ResumableRunBuilder, RunBuilder, Runtime, SeedOutcome};
    pub use crate::supervise::{AbortReason, CancelToken, RunProgress};
}
