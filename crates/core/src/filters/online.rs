//! The online filter's task-management step (§4).
//!
//! Recording happens *during* computation (the engine pushes updated
//! vertices into [`ThreadBins`]); what remains for task management is
//! the "simple prefix-scan based concatenation of all thread bins"
//! (Fig. 4(b) line 20). The resulting list may be unsorted and contain
//! duplicates — both documented properties the evaluation measures.

use crate::frontier::ThreadBins;
use simdx_gpu::{Cost, GpuExecutor, KernelDesc, SchedUnit};
use simdx_graph::VertexId;

/// Concatenates all thread bins into the next active list, charging the
/// prefix-scan + copy kernel to `executor`.
pub fn concatenate(
    bins: &ThreadBins,
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
) -> Vec<VertexId> {
    let mut tasks = Vec::new();
    let mut list = Vec::with_capacity(bins.total_recorded() as usize);
    concatenate_into(bins, executor, kernel, launch, &mut tasks, &mut list);
    list
}

/// In-place [`concatenate`] writing the next active list and the charged
/// task costs into reused buffers (both cleared first) — the engine
/// scratch's zero-allocation path.
pub fn concatenate_into(
    bins: &ThreadBins,
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
    tasks: &mut Vec<Cost>,
    out: &mut Vec<VertexId>,
) {
    bins.concatenate_into(out);
    charge_concatenation(bins, executor, kernel, launch, tasks);
}

/// Charges the concatenation kernel *without* materializing the list:
/// the cost depends only on the bin count and the recorded total, so
/// the engine's bitmap mode can pay for task management here and drain
/// the bins directly ([`ThreadBins::for_each_entry`]) next iteration.
/// Bit-identical charging to [`concatenate_into`] by construction —
/// both derive `copy_warps` from [`ThreadBins::total_recorded`].
pub fn charge_concatenation(
    bins: &ThreadBins,
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
    tasks: &mut Vec<Cost>,
) {
    // Cost: a warp-cooperative exclusive scan over the bin sizes plus a
    // coalesced copy of every recorded vertex to its offset.
    let scan_warps = (bins.num_threads() as u64).div_ceil(32);
    let copy_warps = bins.total_recorded().div_ceil(32);
    tasks.clear();
    for _ in 0..scan_warps {
        tasks.push(Cost {
            compute_ops: 96,
            coalesced_reads: 32,
            width: 32,
            ..Cost::default()
        });
    }
    for _ in 0..copy_warps {
        tasks.push(Cost {
            compute_ops: 32,
            coalesced_reads: 32,
            writes: 32,
            width: 32,
            ..Cost::default()
        });
    }
    executor.run_kernel(kernel, SchedUnit::Warp, tasks, launch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_gpu::DeviceSpec;

    fn setup() -> (GpuExecutor, KernelDesc) {
        (
            GpuExecutor::new(DeviceSpec::k40()),
            KernelDesc::new("taskmgmt", 24),
        )
    }

    #[test]
    fn concatenation_matches_bins() {
        let (mut ex, k) = setup();
        let mut bins = ThreadBins::new(3, 8);
        bins.record(0, 5);
        bins.record(2, 9);
        bins.record(0, 5); // duplicate kept
        let list = concatenate(&bins, &mut ex, &k, true);
        assert_eq!(list, vec![5, 5, 9]);
        assert_eq!(ex.stats().kernel_launches, 1);
    }

    #[test]
    fn cost_scales_with_recorded_count() {
        let (mut ex, k) = setup();
        let mut small = ThreadBins::new(64, 1024);
        let mut large = ThreadBins::new(64, 1024);
        for i in 0..10u32 {
            small.record(i as usize, i);
        }
        for i in 0..10_000u32 {
            large.record(i as usize % 64, i % 999);
        }
        concatenate(&small, &mut ex, &k, false);
        let small_cycles = ex.stats().total_cycles;
        ex.reset();
        concatenate(&large, &mut ex, &k, false);
        assert!(ex.stats().total_cycles > small_cycles);
    }

    #[test]
    fn empty_bins_produce_empty_list() {
        let (mut ex, k) = setup();
        let bins = ThreadBins::new(4, 8);
        assert!(concatenate(&bins, &mut ex, &k, false).is_empty());
    }

    #[test]
    fn charge_without_materializing_costs_the_same() {
        let mut bins = ThreadBins::new(16, 64);
        for i in 0..500u32 {
            bins.record(i as usize % 16, i % 97);
        }
        let (mut ex_full, k) = setup();
        concatenate(&bins, &mut ex_full, &k, true);
        let (mut ex_charge, _) = setup();
        let mut tasks = Vec::new();
        charge_concatenation(&bins, &mut ex_charge, &k, true, &mut tasks);
        assert_eq!(ex_charge.stats(), ex_full.stats());
    }
}
