//! Durable serving: spill final failures, restart, recover.
//!
//! Stands up a `QueryPool` with a `DurabilityPolicy` spilling into a
//! directory-backed `CheckpointStore`, drives a batch where several
//! queries fail past their retry budget — a panic storm on every pull
//! sweep when built with `--features fault-inject`, starvation cycle
//! budgets otherwise — and then plays the crash: throws the pool away,
//! reopens the store from the directory alone (as a restarted process
//! would), and `QueryPool::recover`s every spilled ticket to completion
//! from its durable iteration-boundary checkpoint.
//!
//! ```text
//! cargo run --release --example durable_serving
//! cargo run --release --features fault-inject --example durable_serving
//! ```
//!
//! Either way, every admitted query completes: some inside the original
//! pool, the rest via cross-"process" recovery — and the store is
//! drained at the end.

use std::path::PathBuf;

use simdx::algos::Bfs;
use simdx::core::{
    CheckpointStore, DirStore, DurabilityPolicy, EngineConfig, ExecMode, QueryPool, QueryRequest,
    RetryPolicy, Runtime, ServiceConfig, SimdxError,
};
use simdx::graph::gen::Rmat;
use simdx::graph::Graph;

fn main() -> Result<(), SimdxError> {
    let graph = Graph::directed_from_edges(Rmat::gtgraph(12, 8).generate(5));
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let runtime =
        Runtime::new(EngineConfig::default().with_exec(ExecMode::Parallel { threads: 2 }))?;
    let bound = runtime.bind(&graph);

    // The spill directory IS the durable state: everything below could
    // run in two different processes. Drain leftovers from a previous
    // demo run so the recovery count below is honest.
    let spill_dir = PathBuf::from("target").join("durable-serving-demo");
    let store = DirStore::open(&spill_dir)?;
    for stale in store.tickets()? {
        store.remove(stale)?;
    }

    // A panic storm the retry policy cannot outlast: every pull sweep
    // dies. BFS on this graph flips push→pull once the frontier grows,
    // so each query survives its opening push iterations (capturing
    // boundary checkpoints), then both attempts die at their first pull
    // sweep — a deterministic final failure that spills the checkpoint.
    #[cfg(feature = "fault-inject")]
    let faults = {
        use simdx::core::fault::{self, FaultPlan, FaultSite};
        std::panic::set_hook(Box::new(|info| {
            let payload = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("<non-string payload>");
            eprintln!("[worker panic contained] {payload}");
        }));
        println!("fault injection: every pull sweep panics\n");
        let mut plan = FaultPlan::new();
        for nth in 1..=100 {
            plan = plan.panic_at(FaultSite::Pull, nth);
        }
        fault::install(plan)
    };

    let seeds: Vec<u32> = (0..10).map(|i| (i * 131) % graph.num_vertices()).collect();

    // Without the harness, starve every other query instead: a cycle
    // budget equal to the first iteration's cost passes at least one
    // checkpoint boundary per attempt, and the filter keeps only seeds
    // whose runs are long enough that two budgeted attempts still
    // exhaust before convergence.
    #[cfg(not(feature = "fault-inject"))]
    println!("fault injection disabled: starving every other query via cycle budgets\n");
    let budget_for = |idx: usize, seed: u32| -> Option<u64> {
        if cfg!(feature = "fault-inject") || idx % 2 == 1 {
            return None;
        }
        let solo = bound.run(Bfs::new(seed)).execute().ok()?;
        let records = &solo.report.log.records;
        let n = records.len();
        if n < 3 {
            return None;
        }
        // Two attempts spend at most 2x the first iteration's cost
        // before their budgets run dry; keep the seed only if the run
        // is still unconverged at that point.
        let first = records[0].cycles;
        let through_second_last: u64 = records[..n - 1].iter().map(|r| r.cycles).sum();
        (through_second_last >= 2 * first).then_some(first)
    };

    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default()
            .workers(2)
            .retry(RetryPolicy::default().max_attempts(2))
            .durability(DurabilityPolicy::spill_to(DirStore::open(&spill_dir)?)),
        |client| {
            for (idx, &seed) in seeds.iter().enumerate() {
                let mut request = QueryRequest::new(seed);
                if let Some(budget) = budget_for(idx, seed) {
                    request = request.cycle_budget(budget);
                }
                client.submit(request)?;
            }
            Ok(())
        },
    )?;

    // Stand the storm down before recovery: the restarted process is
    // healthy; only the durable damage remains.
    #[cfg(feature = "fault-inject")]
    drop(faults);

    println!("serve: per-ticket outcomes:");
    for (ticket, outcome) in report.outcomes.iter().enumerate() {
        let status = match &outcome.result {
            Ok(r) => format!("ok, {} iterations", r.report.iterations),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "  ticket {ticket:>2}  seed {:>4}  attempts {}  {}",
            outcome.seed, outcome.attempts, status
        );
    }
    println!(
        "serve: {} of {} completed, {} checkpoints spilled to {}",
        report.completed(),
        report.outcomes.len(),
        report.spilled.len(),
        spill_dir.display()
    );
    assert!(report.spill_failures.is_empty());
    assert!(
        !report.spilled.is_empty(),
        "demo expects at least one final failure to spill"
    );

    // ---- the "restart": the pool and its durability policy are gone;
    // all that survives is the directory. Reopen and recover.
    let store = DirStore::open(&spill_dir)?;
    let found = store.tickets()?;
    println!("\nrecovery: found {} durable checkpoint(s)", found.len());
    let recovery = QueryPool::recover(&bound, Bfs::new(0), &store)?;
    for recovered in &recovery.recovered {
        let status = match &recovered.result {
            Ok(r) => format!("ok, {} iterations", r.report.iterations),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "  ticket {:>2}  seed {:>4}  resumed from iteration {}  {}",
            recovered.ticket, recovered.seed, recovered.resumed_from, status
        );
    }
    assert!(recovery.skipped.is_empty(), "no corrupt blobs expected");
    assert_eq!(
        recovery.completed(),
        report.spilled.len(),
        "every spilled ticket must complete on recovery"
    );
    assert_eq!(
        report.completed() + recovery.completed(),
        seeds.len(),
        "every admitted query completes: in the pool or via recovery"
    );
    assert!(store.tickets()?.is_empty(), "recovery drains the store");

    println!(
        "\n{} completed in the pool + {} recovered from durable checkpoints = {} / {} queries",
        report.completed(),
        recovery.completed(),
        report.completed() + recovery.completed(),
        seeds.len()
    );

    Ok(())
}
