//! Quickstart: build a runtime, bind a graph, and serve queries — BFS,
//! then a multi-source SSSP batch with every allocation amortized
//! across the queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simdx::algos::{Bfs, Sssp};
use simdx::core::{EngineConfig, Runtime, SimdxError};
use simdx::graph::{weights, EdgeList, Graph};

fn main() -> Result<(), SimdxError> {
    // A small weighted directed graph: the SSSP example of the paper's
    // Fig. 1 has nine vertices a..i; we label them 0..9.
    let edges = vec![
        (0, 1), // a-b
        (0, 3), // a-d
        (1, 2), // b-c
        (3, 4), // d-e
        (4, 1), // e-b
        (4, 2), // e-c
        (4, 5), // e-f
        (5, 6), // f-g
        (6, 7), // g-h
        (7, 8), // h-i
    ];
    let el = EdgeList::from_pairs(edges);
    let el = weights::assign_default_weights(&el, 42);
    let graph = Graph::undirected_from_edges(el);

    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // One runtime per service, one bind per graph. `unscaled()` runs
    // the device at full size — right for toy graphs (the default
    // config assumes 1/64-scale dataset twins).
    let runtime = Runtime::new(EngineConfig::unscaled())?;
    let bound = runtime.bind(&graph);

    // BFS from vertex 0 through the run builder.
    let r = bound.run(Bfs::new(0)).execute()?;
    println!("\nBFS levels:     {:?}", r.meta);
    println!(
        "  {} iterations, {:.4} simulated ms on {}",
        r.report.iterations, r.report.elapsed_ms, r.report.device
    );

    // Multi-source SSSP as one batch: one distance array per source,
    // with the worker pool, scratch arenas and push shards reused
    // across all queries — the amortization a per-query
    // `Engine::new(..).run()` could never give you.
    let sources = [0, 4, 8];
    let batch = bound.run_batch(Sssp::new(0), &sources)?;
    println!("\nSSSP batch over sources {sources:?}:");
    for (src, r) in sources.iter().zip(&batch) {
        println!(
            "  from {src}: distances {:?} ({} iterations, {} launches)",
            r.meta,
            r.report.iterations,
            r.report.kernel_launches()
        );
    }
    println!(
        "  filter pattern of last query: {}",
        batch.last().expect("non-empty").report.log.pattern_rle()
    );
    Ok(())
}
