//! Kernel descriptors and launch configurations.
//!
//! A [`KernelDesc`] is the simulator's stand-in for a compiled CUDA
//! kernel: its register consumption per thread (what `nvcc -Xptxas -v`
//! reports, the input to Table 2) and its CTA shape. The launch
//! configuration derived from it via [`crate::occupancy`] determines how
//! many CTAs can be simultaneously resident — the quantity the
//! deadlock-free barrier depends on.

use serde::{Deserialize, Serialize};

/// Scheduling granularity for a worklist, per §4's step II: "a single
/// thread per small task, a warp per medium task and a CTA per large
/// task".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedUnit {
    /// One thread per task (small list).
    Thread,
    /// One 32-lane warp per task (medium list).
    Warp,
    /// One CTA per task (large list).
    Cta,
}

impl SchedUnit {
    /// Threads consumed by one scheduling unit given the CTA width.
    pub fn threads(self, threads_per_cta: u32) -> u32 {
        match self {
            Self::Thread => 1,
            Self::Warp => crate::WARP_SIZE as u32,
            Self::Cta => threads_per_cta,
        }
    }
}

/// A compiled kernel's resource footprint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name for reports.
    pub name: String,
    /// Registers per thread (`-Xptxas -v` output; Table 2 row).
    pub registers_per_thread: u32,
    /// Threads per CTA. The paper's default is 128 (§5).
    pub threads_per_cta: u32,
    /// Shared memory per CTA in bytes.
    pub shared_mem_per_cta: u32,
}

impl KernelDesc {
    /// Creates a descriptor with the default 128-thread CTA and no
    /// shared-memory demand.
    pub fn new(name: impl Into<String>, registers_per_thread: u32) -> Self {
        Self {
            name: name.into(),
            registers_per_thread,
            threads_per_cta: 128,
            shared_mem_per_cta: 0,
        }
    }

    /// Builder: overrides the CTA width.
    pub fn with_threads_per_cta(mut self, t: u32) -> Self {
        self.threads_per_cta = t;
        self
    }

    /// Builder: overrides shared-memory use.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_per_cta = bytes;
        self
    }

    /// Registers consumed by one CTA of this kernel.
    pub fn registers_per_cta(&self) -> u64 {
        self.registers_per_thread as u64 * self.threads_per_cta as u64
    }
}

/// A concrete launch: how many CTAs of a kernel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of CTAs launched.
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
}

impl LaunchConfig {
    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.ctas as u64 * self.threads_per_cta as u64
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.total_threads() / crate::WARP_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_unit_thread_counts() {
        assert_eq!(SchedUnit::Thread.threads(128), 1);
        assert_eq!(SchedUnit::Warp.threads(128), 32);
        assert_eq!(SchedUnit::Cta.threads(128), 128);
        assert_eq!(SchedUnit::Cta.threads(256), 256);
    }

    #[test]
    fn registers_per_cta() {
        let k = KernelDesc::new("push", 48);
        assert_eq!(k.registers_per_cta(), 48 * 128);
        let k = k.with_threads_per_cta(256);
        assert_eq!(k.registers_per_cta(), 48 * 256);
    }

    #[test]
    fn launch_totals() {
        let lc = LaunchConfig {
            ctas: 60,
            threads_per_cta: 128,
        };
        assert_eq!(lc.total_threads(), 7_680);
        assert_eq!(lc.total_warps(), 240);
    }
}
