//! Run-level reports returned by the engine.

use crate::jit::ActivationLog;
use crate::supervise::AbortReason;
use simdx_gpu::executor::ExecutorStats;
use std::time::Duration;

/// Everything the evaluation harness needs from one engine run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Device name.
    pub device: &'static str,
    /// BSP iterations executed.
    pub iterations: u32,
    /// Simulated wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Raw executor statistics (cycles, launches, barriers, traffic).
    pub stats: ExecutorStats,
    /// *Host-side* edge traversals performed by the compute kernels:
    /// every edge a push scatter or pull gather actually touched,
    /// summed over workers. Unlike `stats`, this is **not** covered by
    /// the bit-equality contract — it is the work-optimality meter the
    /// contract deliberately leaves free: `PushStrategy::Scan` charges
    /// `threads ×` the frontier degree sum per push iteration (every
    /// worker replays the full task list), `PushStrategy::Grid` charges
    /// it exactly once (`tests/parallel_equivalence.rs` pins both).
    /// Classification and candidate marking walk degrees/neighbor
    /// lists too but are not counted here; the counter meters compute
    /// work only.
    pub edges_examined: u64,
    /// Per-iteration activation log (Fig. 8 data).
    pub log: ActivationLog,
    /// *Host* wall-clock time of the run, measured from `execute()`
    /// entry. Like `edges_examined`, host-side and outside the
    /// bit-equality contract (the simulated time is `elapsed_ms`).
    pub elapsed: Duration,
    /// `None` for a run that converged normally. `Some(WorkerPanic)`
    /// when the result came from a successful serial retry under
    /// [`crate::config::DegradePolicy::RetrySerial`] — the answer is
    /// still bit-exact, but the parallel attempt was abandoned.
    pub aborted: Option<AbortReason>,
    /// Supervision checks performed (iteration-boundary checks plus
    /// in-sweep polls): the overhead meter for the supervision layer,
    /// recorded by the `snapshot` bin. 0 when the run sets no token,
    /// deadline or budget.
    pub supervision_checks: u64,
}

impl RunReport {
    /// Kernel launches charged during the run.
    pub fn kernel_launches(&self) -> u64 {
        self.stats.kernel_launches
    }

    /// Global-barrier passes charged during the run.
    pub fn barrier_passes(&self) -> u64 {
        self.stats.barrier_passes
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.stats.total_cycles
    }

    /// Iterations that used the ballot filter.
    pub fn ballot_iterations(&self) -> u32 {
        self.log.ballot_iterations()
    }

    /// Host-side compute-kernel edge traversals (see the field docs).
    pub fn edges_examined(&self) -> u64 {
        self.edges_examined
    }
}

/// A finished run: final metadata plus its report.
#[derive(Clone, Debug)]
pub struct RunResult<M> {
    /// Final per-vertex metadata (the "distance array" of Fig. 1).
    pub meta: Vec<M>,
    /// Performance and behaviour report.
    pub report: RunReport,
}
