//! The simulated executor: schedules kernel work over the device and
//! accumulates simulated time.
//!
//! A kernel invocation is a bag of per-task [`Cost`]s, one per
//! scheduling unit (thread / warp / CTA, per §4's thread-assignment
//! step). The executor:
//!
//! 1. derives the parallel slot count from the kernel's occupancy
//!    (Equation 1) and the scheduling granularity,
//! 2. assigns tasks to slots statically and cyclically — the same
//!    oblivious assignment a grid-stride CUDA loop performs — so skewed
//!    task costs produce exactly the load imbalance the paper's
//!    Thread/Warp/CTA classification exists to fight,
//! 3. takes the kernel's elapsed time as the slowest slot's cycle sum,
//!    floored by the device's aggregate memory bandwidth,
//! 4. adds the launch overhead if this invocation was an actual kernel
//!    launch (fused kernels pay a barrier instead; see §5).

use crate::cost::{Cost, CostModel, CycleCount};
use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, SchedUnit};
use crate::memory::TrafficCounter;
use crate::occupancy::occupancy;

/// Outcome of one simulated kernel invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Scheduling granularity used.
    pub unit: SchedUnit,
    /// Number of tasks processed.
    pub tasks: u64,
    /// Parallel slots available at this granularity.
    pub slots: u64,
    /// Slowest-slot cycles (load imbalance shows up here).
    pub makespan_cycles: CycleCount,
    /// Bandwidth-floor cycles (total bytes / device bytes-per-cycle).
    pub bandwidth_floor_cycles: CycleCount,
    /// Final elapsed cycles charged, including launch overhead.
    pub elapsed_cycles: CycleCount,
    /// Whether a host-side launch overhead was charged.
    pub launched: bool,
}

/// Cumulative statistics across an executor's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Total simulated cycles.
    pub total_cycles: CycleCount,
    /// Number of kernel launches charged.
    pub kernel_launches: u64,
    /// Number of global-barrier passes charged.
    pub barrier_passes: u64,
    /// Number of kernel invocations (launched or fused-in).
    pub kernel_invocations: u64,
    /// Aggregate memory traffic.
    pub traffic: TrafficCounter,
}

/// The simulated GPU executor.
#[derive(Clone, Debug)]
pub struct GpuExecutor {
    device: DeviceSpec,
    model: CostModel,
    stats: ExecutorStats,
    scale: u32,
}

impl GpuExecutor {
    /// Creates an executor with the default cost model.
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            device,
            model: CostModel::default(),
            stats: ExecutorStats::default(),
            scale: 1,
        }
    }

    /// Creates an executor with a custom cost model.
    pub fn with_model(device: DeviceSpec, model: CostModel) -> Self {
        Self {
            device,
            model,
            stats: ExecutorStats::default(),
            scale: 1,
        }
    }

    /// Sets the *device scale divisor* for scaled-down dataset twins.
    ///
    /// Running a 1/64-scale graph against a full-size device would
    /// distort every ratio the evaluation depends on (fixed launch and
    /// barrier costs vs per-iteration work, bin capacity vs frontier
    /// volume, scan cost vs compute). Dividing the device's parallel
    /// slot count and aggregate bandwidth by the dataset scale factor
    /// restores the paper-scale ratios while preserving all *relative*
    /// occupancy effects between kernels (register pressure, fusion).
    /// See DESIGN.md §2.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn set_scale(&mut self, scale: u32) {
        assert!(scale > 0, "scale divisor must be positive");
        self.scale = scale;
    }

    /// The current device scale divisor.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Parallel slots available to `kernel` at granularity `unit`,
    /// after occupancy and device scaling.
    pub fn slots_for(&self, kernel: &KernelDesc, unit: SchedUnit) -> u64 {
        let occ = occupancy(&self.device, kernel);
        let unit_threads = unit.threads(kernel.threads_per_cta) as u64;
        (occ.resident_threads / unit_threads / self.scale as u64).max(1)
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> &ExecutorStats {
        &self.stats
    }

    /// Resets the statistics, keeping device and model.
    pub fn reset(&mut self) {
        self.stats = ExecutorStats::default();
    }

    /// Restores a previously captured statistics snapshot, as if every
    /// recorded charge had been made on this executor. The engine's
    /// checkpoint/resume path uses this to keep simulated-cycle
    /// accounting continuous across an abort: a resumed run charges on
    /// top of the restored counters and stays bit-equal to the
    /// uninterrupted run.
    pub fn restore_stats(&mut self, stats: ExecutorStats) {
        self.stats = stats;
    }

    /// Total simulated milliseconds so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.device.cycles_to_ms(self.stats.total_cycles)
    }

    /// Charges one software-global-barrier pass.
    pub fn charge_barrier(&mut self) {
        self.stats.barrier_passes += 1;
        self.stats.total_cycles += self.device.barrier_cycles;
    }

    /// Charges host-side cycles that are serial with the GPU (e.g. the
    /// CPU-side decision logic between unfused kernel launches).
    pub fn charge_host_cycles(&mut self, cycles: CycleCount) {
        self.stats.total_cycles += cycles;
    }

    /// Runs one kernel invocation over `tasks`, one cost per scheduling
    /// unit. `launch` selects whether a host launch overhead is paid
    /// (true for unfused kernels; false for work executed inside an
    /// already-running fused kernel).
    pub fn run_kernel(
        &mut self,
        kernel: &KernelDesc,
        unit: SchedUnit,
        tasks: &[Cost],
        launch: bool,
    ) -> KernelReport {
        self.run_kernel_parts(kernel, unit, std::iter::once(tasks), launch)
    }

    /// [`Self::run_kernel`] over a pre-partitioned task list: the
    /// logical task sequence is the concatenation of `parts` in order.
    ///
    /// This is the charging API the engine's parallel backend uses — the
    /// per-worker partitions of one kernel's tasks are charged directly
    /// from wherever they live, without copying them into a contiguous
    /// vector or even collecting the partition list (the iterator is
    /// cloned for the sizing pre-pass). Task `i` of the concatenation
    /// lands on slot `i % slots` exactly as in the single-slice form, so
    /// the report is identical for identical logical sequences
    /// regardless of partitioning.
    pub fn run_kernel_parts<'a, I>(
        &mut self,
        kernel: &KernelDesc,
        unit: SchedUnit,
        parts: I,
        launch: bool,
    ) -> KernelReport
    where
        I: Iterator<Item = &'a [Cost]> + Clone,
    {
        let num_tasks: usize = parts.clone().map(|p| p.len()).sum();
        let slots = self.slots_for(kernel, unit);
        // Bandwidth saturation: a kernel resident below the device's
        // latency-hiding threshold reaches only a fraction of peak.
        let occ = occupancy(&self.device, kernel);
        let saturation =
            (occ.resident_threads as f64 / self.device.saturation_threads.max(1) as f64).min(1.0);

        // Static cyclic assignment: task i runs on slot i % slots.
        let active_slots = slots.min(num_tasks as u64).max(1) as usize;
        let mut slot_cycles = vec![0u64; active_slots];
        let mut traffic = TrafficCounter::default();
        let mut total_bytes = 0u64;
        for (i, cost) in parts.flat_map(|p| p.iter()).enumerate() {
            slot_cycles[i % active_slots] += self.model.cycles(cost);
            total_bytes += cost.bytes();
            traffic.coalesced_reads += cost.coalesced_reads.div_ceil(32);
            traffic.random_reads += cost.random_reads;
            traffic.writes += cost.writes;
            traffic.atomics += cost.atomics;
        }
        let makespan = slot_cycles.iter().copied().max().unwrap_or(0);
        let bandwidth_floor = (total_bytes as f64 * self.scale as f64
            / (self.device.bytes_per_cycle as f64 * saturation))
            as u64;
        let mut elapsed = makespan.max(bandwidth_floor);
        if launch {
            elapsed += self.device.kernel_launch_cycles;
            self.stats.kernel_launches += 1;
        }

        self.stats.kernel_invocations += 1;
        self.stats.total_cycles += elapsed;
        self.stats.traffic.add(&traffic);

        KernelReport {
            name: kernel.name.clone(),
            unit,
            tasks: num_tasks as u64,
            slots,
            makespan_cycles: makespan,
            bandwidth_floor_cycles: bandwidth_floor,
            elapsed_cycles: elapsed,
            launched: launch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executor() -> GpuExecutor {
        GpuExecutor::new(DeviceSpec::k40())
    }

    fn kernel() -> KernelDesc {
        KernelDesc::new("test", 32)
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let mut ex = executor();
        let r = ex.run_kernel(&kernel(), SchedUnit::Thread, &[], true);
        assert_eq!(r.elapsed_cycles, ex.device().kernel_launch_cycles);
        assert_eq!(ex.stats().kernel_launches, 1);
    }

    #[test]
    fn fused_invocation_skips_launch_overhead() {
        let mut ex = executor();
        let tasks = vec![Cost::compute(100); 10];
        let launched = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, true);
        ex.reset();
        let fused = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, false);
        assert_eq!(
            launched.elapsed_cycles,
            fused.elapsed_cycles + ex.device().kernel_launch_cycles
        );
        assert_eq!(ex.stats().kernel_launches, 0);
    }

    #[test]
    fn skewed_tasks_dominate_makespan() {
        let mut ex = executor();
        let mut tasks = vec![Cost::compute(1); 1000];
        tasks[0] = Cost::compute(1_000_000);
        let r = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, false);
        assert!(r.makespan_cycles >= 1_000_000);

        // The same aggregate work spread evenly is far faster.
        ex.reset();
        let even = vec![Cost::compute(1_001); 1000];
        let r2 = ex.run_kernel(&kernel(), SchedUnit::Thread, &even, false);
        assert!(r2.makespan_cycles * 100 < r.makespan_cycles);
    }

    #[test]
    fn more_tasks_than_slots_serialize() {
        let mut ex = executor();
        let occ = occupancy(ex.device(), &kernel());
        let slots = occ.resident_threads;
        let tasks = vec![Cost::compute(10); (slots * 4) as usize];
        let r = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, false);
        assert_eq!(r.makespan_cycles, 40);
    }

    #[test]
    fn warp_unit_has_fewer_slots_than_thread_unit() {
        let mut ex = executor();
        let tasks = vec![Cost::compute(1); 10];
        let t = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, false);
        let w = ex.run_kernel(&kernel(), SchedUnit::Warp, &tasks, false);
        assert_eq!(t.slots, w.slots * 32);
    }

    #[test]
    fn bandwidth_floor_applies_to_streaming_kernels() {
        let mut ex = executor();
        // One slot-task per resident thread, each streaming lots of data
        // with almost no compute: the floor should dominate.
        let tasks = vec![
            Cost {
                coalesced_reads: 100_000,
                ..Default::default()
            };
            64
        ];
        let r = ex.run_kernel(&kernel(), SchedUnit::Thread, &tasks, false);
        assert!(r.bandwidth_floor_cycles > 0);
        assert!(r.elapsed_cycles >= r.bandwidth_floor_cycles);
    }

    #[test]
    fn partitioned_charge_equals_contiguous_charge() {
        let tasks: Vec<Cost> = (0..100).map(|i| Cost::compute(i * 7 + 1)).collect();
        let mut whole = executor();
        let rw = whole.run_kernel(&kernel(), SchedUnit::Thread, &tasks, true);
        let mut parts = executor();
        let rp = parts.run_kernel_parts(
            &kernel(),
            SchedUnit::Thread,
            [&tasks[..13], &tasks[13..13], &tasks[13..64], &tasks[64..]].into_iter(),
            true,
        );
        assert_eq!(rw, rp);
        assert_eq!(whole.stats(), parts.stats());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut ex = executor();
        ex.run_kernel(&kernel(), SchedUnit::Thread, &[Cost::compute(5)], true);
        ex.charge_barrier();
        assert_eq!(ex.stats().kernel_invocations, 1);
        assert_eq!(ex.stats().barrier_passes, 1);
        assert!(ex.stats().total_cycles > 0);
        assert!(ex.elapsed_ms() > 0.0);
        ex.reset();
        assert_eq!(ex.stats(), &ExecutorStats::default());
    }

    #[test]
    fn p100_is_faster_than_k20_on_same_work() {
        let tasks = vec![Cost::compute(1_000); 100_000];
        let mut k20 = GpuExecutor::new(DeviceSpec::k20());
        let mut p100 = GpuExecutor::new(DeviceSpec::p100());
        k20.run_kernel(&kernel(), SchedUnit::Thread, &tasks, true);
        p100.run_kernel(&kernel(), SchedUnit::Thread, &tasks, true);
        // P100 has more resident threads -> smaller makespan, and a
        // higher clock -> less wall time per cycle.
        assert!(p100.elapsed_ms() < k20.elapsed_ms());
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    #[test]
    fn scale_divides_slots_and_keeps_ratios() {
        let mut ex = GpuExecutor::new(DeviceSpec::k40());
        let light = KernelDesc::new("light", 48);
        let heavy = KernelDesc::new("heavy", 110);
        let l1 = ex.slots_for(&light, SchedUnit::Thread);
        let h1 = ex.slots_for(&heavy, SchedUnit::Thread);
        ex.set_scale(64);
        let l64 = ex.slots_for(&light, SchedUnit::Thread);
        let h64 = ex.slots_for(&heavy, SchedUnit::Thread);
        assert_eq!(l64, l1 / 64);
        assert_eq!(h64, h1 / 64);
        // Relative occupancy advantage of the lighter kernel survives.
        assert!(l64 > h64 * 2);
    }

    #[test]
    fn scaled_makespan_grows_proportionally() {
        let kernel = KernelDesc::new("k", 32);
        let tasks = vec![Cost::compute(8); 100_000];
        let mut full = GpuExecutor::new(DeviceSpec::k40());
        let mut scaled = GpuExecutor::new(DeviceSpec::k40());
        scaled.set_scale(64);
        let rf = full.run_kernel(&kernel, SchedUnit::Thread, &tasks, false);
        let rs = scaled.run_kernel(&kernel, SchedUnit::Thread, &tasks, false);
        assert!(rs.makespan_cycles > rf.makespan_cycles * 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        GpuExecutor::new(DeviceSpec::k40()).set_scale(0);
    }
}
