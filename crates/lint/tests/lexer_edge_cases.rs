//! Lexer edge cases the rule passes depend on: if any of these
//! misclassify, the lint either misses real `unsafe` or flags phantom
//! ones inside comments/strings.

use simdx_lint::lexer::{tokenize, TokKind};
use simdx_lint::rules::{check_file, FileCheck};

fn idents(src: &str) -> Vec<&str> {
    tokenize(src)
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .collect()
}

#[test]
fn nested_block_comments_swallow_their_contents() {
    let src = "/* outer /* inner unsafe { } */ still comment */ fn real() {}";
    assert_eq!(idents(src), ["fn", "real"]);
    let toks = tokenize(src);
    assert_eq!(
        toks.iter().filter(|t| t.is_comment()).count(),
        1,
        "one block comment token covering the whole nested span"
    );
}

#[test]
fn raw_strings_containing_unsafe_do_not_leak_tokens() {
    let src = r####"let s = r#"unsafe { Ordering::Relaxed } std::env::var"#; fn f() {}"####;
    assert_eq!(idents(src), ["let", "s", "fn", "f"]);
    // And none of the rules fire on the string contents, even in a
    // file where every rule is in scope.
    let fc = FileCheck::new("crates/core/src/engine.rs".to_string(), src);
    assert!(check_file(&fc).is_empty());
}

#[test]
fn raw_strings_with_multi_hash_fences_end_at_the_matching_fence() {
    let src = r####"let s = r##"contains "# inside"##; unsafe { f() }"####;
    let toks = tokenize(src);
    let strings: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(strings, [r####"r##"contains "# inside"##"####]);
    // The `unsafe` after the string is real code and must be flagged.
    let fc = FileCheck::new("crates/core/src/x.rs".to_string(), src);
    let findings = check_file(&fc);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "safety-comment");
}

#[test]
fn line_comment_markers_inside_string_literals_are_string_content() {
    let src = "let url = \"https://example.com\"; let x = unsafe { g() };";
    // The `//` in the URL must not comment out the rest of the line:
    // the unsafe block is live code and gets flagged.
    let fc = FileCheck::new("crates/core/src/x.rs".to_string(), src);
    let findings = check_file(&fc);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "safety-comment");
    // And `SAFETY:` inside a string is not a justification.
    let fake = "let s = \"// SAFETY: not a comment\"; let x = unsafe { g() };";
    let fc = FileCheck::new("crates/core/src/x.rs".to_string(), fake);
    assert_eq!(check_file(&fc).len(), 1);
}

#[test]
fn escaped_quotes_do_not_terminate_strings_early() {
    let src = r#"let s = "he said \"unsafe\" loudly"; fn f() {}"#;
    assert_eq!(idents(src), ["let", "s", "fn", "f"]);
}

#[test]
fn char_literals_and_lifetimes_disambiguate() {
    let src = "fn f<'a>(x: &'a str) -> char { '\\'' }";
    let toks = tokenize(src);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    // Char literals lex as `Str` (the rules only care that the body is
    // not code); the escaped-quote literal is exactly one of them.
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
}

#[test]
fn cfg_test_modules_exempt_their_span_and_only_their_span() {
    let src = "\
fn hot() { let v = table.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = table.unwrap();
        x.store(1, Ordering::Relaxed);
        panic!(\"fine in tests\");
    }
}

fn also_hot() { let v = other.unwrap(); }
";
    let fc = FileCheck::new("crates/core/src/engine.rs".to_string(), src);
    let findings = check_file(&fc);
    // Only the two unwraps outside the test module fire.
    assert_eq!(findings.len(), 2, "findings: {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == "panic-free"));
    assert_eq!(findings[0].line, 1);
    assert_eq!(findings[1].line, 13);
}

#[test]
fn doc_comments_are_distinguished_from_plain_comments() {
    let src = "/// outer doc\n//! inner doc\n// plain\n//// divider\n/** block doc */ fn f() {}";
    let toks = tokenize(src);
    let docs: Vec<_> = toks
        .iter()
        .filter(|t| t.is_doc_comment())
        .map(|t| t.text(src))
        .collect();
    assert_eq!(docs, ["/// outer doc", "//! inner doc", "/** block doc */"]);
}

#[test]
fn malformed_input_never_panics() {
    // Unterminated constructs at EOF: the lexer must degrade, not die.
    for src in [
        "/* never closed",
        "\"never closed",
        "r#\"never closed",
        "let x = '",
        "r#",
        "b",
        "#",
    ] {
        let _ = tokenize(src);
    }
}
