//! Worklists, degree classification, per-thread bins (§4) and the
//! bitmap frontier representation.
//!
//! Step I of JIT task management classifies active vertices by degree
//! into three worklists; step II assigns a thread per small task, a warp
//! per medium task and a CTA per large task. During computation the
//! online filter records newly-activated vertices into bounded
//! *thread bins*; a bin overflow is the signal that flips the JIT
//! controller over to the ballot filter.
//!
//! [`FrontierBitmap`] is the dense counterpart of the sorted worklists:
//! one `u64` word per 64 vertices (two warp chunks at the ballot
//! filter's 32-lane granularity), selected by
//! [`crate::config::FrontierRepr::Bitmap`]. Set-shaped frontier
//! structures — the changed-vertex set, pull-candidate dedup and the
//! ballot scan's occupancy — become O(1) bit tests and word-level skips
//! instead of vertex-list walks, while every iteration order stays
//! ascending so results remain bit-equal to the list representation.

use simdx_gpu::SchedUnit;
use simdx_graph::csr::Csr;
use simdx_graph::VertexId;

/// Bits per [`FrontierBitmap`] word: 64 vertices, i.e. two warp chunks
/// of the ballot filter's [`simdx_gpu::WARP_SIZE`] granularity.
pub const WORD_BITS: usize = 64;

/// A dense frontier: bit `v % 64` of word `v / 64` is set iff vertex
/// `v` is in the set.
///
/// All iteration orders ([`Self::iter`], [`Self::collect_into`],
/// [`Self::drain_for_each`]) are ascending vertex order — the same
/// order the ballot filter emits — so a bitmap and a sorted,
/// duplicate-free worklist are interchangeable representations of the
/// same frontier. Membership is an O(1) word load; cardinality is a
/// popcount sweep; and empty regions are skipped a word (64 vertices)
/// at a time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontierBitmap {
    words: Vec<u64>,
    num_vertices: usize,
}

impl FrontierBitmap {
    /// An empty bitmap over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            words: vec![0; num_vertices.div_ceil(WORD_BITS)],
            num_vertices,
        }
    }

    /// Reshapes to `num_vertices` and clears every bit, reusing the
    /// word allocation (the engine calls this once per run; in steady
    /// state it never allocates).
    pub fn reset(&mut self, num_vertices: usize) {
        self.words.clear();
        self.words.resize(num_vertices.div_ceil(WORD_BITS), 0);
        self.num_vertices = num_vertices;
    }

    /// Number of vertices the bitmap covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of backing words (`ceil(num_vertices / 64)`).
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Sets bit `v`. Panics when `v` is out of range — including in
    /// release builds, where the partial tail word would otherwise
    /// silently accept phantom vertices.
    #[inline]
    pub fn set(&mut self, v: VertexId) {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.words[v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
    }

    /// Tests bit `v`. Panics when `v` is out of range.
    #[inline]
    pub fn test(&self, v: VertexId) -> bool {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.words[v as usize / WORD_BITS] & (1u64 << (v as usize % WORD_BITS)) != 0
    }

    /// Clears bit `v`. Panics when `v` is out of range.
    #[inline]
    pub fn unset(&mut self, v: VertexId) {
        assert!((v as usize) < self.num_vertices, "vertex out of range");
        self.words[v as usize / WORD_BITS] &= !(1u64 << (v as usize % WORD_BITS));
    }

    /// Clears every bit, keeping the shape.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Popcount-based cardinality.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The backing words for word-level iteration (e.g. the ballot
    /// scan's all-zero-word skip).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words — the raw form handed to
    /// [`crate::par::SliceShards`] for word-aligned partitioning.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// A mutable view of the whole bitmap (the one-shard case of
    /// [`BitmapWordsMut`]).
    pub fn view_mut(&mut self) -> BitmapWordsMut<'_> {
        BitmapWordsMut::new(0, &mut self.words)
    }

    /// Iterates set bits in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let w = w & (w - 1);
                (w != 0).then_some(w)
            })
            .map(move |w| (i * WORD_BITS) as VertexId + w.trailing_zeros())
        })
    }

    /// Rebuilds the bitmap over `num_vertices` from a worklist (any
    /// order, duplicates collapse).
    pub fn fill_from_list(&mut self, num_vertices: usize, list: &[VertexId]) {
        self.reset(num_vertices);
        for &v in list {
            self.set(v);
        }
    }

    /// Appends the set vertices to `out` in ascending order.
    pub fn collect_into(&self, out: &mut Vec<VertexId>) {
        for v in self.iter() {
            out.push(v);
        }
    }

    /// Visits set bits in ascending order, clearing each word after it
    /// is consumed — the O(set words) "publish and reset" sweep of the
    /// engine's bitmap mode.
    pub fn drain_for_each(&mut self, mut f: impl FnMut(VertexId)) {
        for (i, word) in self.words.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                f((i * WORD_BITS) as VertexId + w.trailing_zeros());
                w &= w - 1;
            }
            *word = 0;
        }
    }

    /// [`Self::drain_for_each`] into a vector (appended in ascending
    /// order).
    pub fn drain_into(&mut self, out: &mut Vec<VertexId>) {
        self.drain_for_each(|v| out.push(v));
    }

    /// Visits the index of every non-zero word in ascending order,
    /// clearing each as it is consumed — the word-granular form of
    /// [`Self::drain_for_each`] used by the chunked-layout publish
    /// sweep, which copies whole 32-vertex metadata chunks per
    /// occupied word instead of scattering bit by bit.
    pub fn drain_nonzero_words(&mut self, mut f: impl FnMut(usize)) {
        for (i, word) in self.words.iter_mut().enumerate() {
            if *word != 0 {
                f(i);
                *word = 0;
            }
        }
    }
}

/// A word-aligned mutable window of a [`FrontierBitmap`] covering
/// vertices `[64 * word_off, 64 * (word_off + words.len()))`.
///
/// Disjoint windows alias nothing, so the parallel push backend hands
/// one to each destination shard (whose fences are word-aligned in
/// bitmap mode) for **atomic-free** changed-set recording.
#[derive(Debug)]
pub struct BitmapWordsMut<'a> {
    word_off: usize,
    words: &'a mut [u64],
}

impl<'a> BitmapWordsMut<'a> {
    /// A view starting at word `word_off` of the parent bitmap.
    pub fn new(word_off: usize, words: &'a mut [u64]) -> Self {
        Self { word_off, words }
    }

    /// Sets bit `v` (must fall inside the window).
    #[inline]
    pub fn set(&mut self, v: VertexId) {
        let w = v as usize / WORD_BITS;
        debug_assert!((self.word_off..self.word_off + self.words.len()).contains(&w));
        self.words[w - self.word_off] |= 1u64 << (v as usize % WORD_BITS);
    }

    /// Tests bit `v` (must fall inside the window).
    #[inline]
    pub fn test(&self, v: VertexId) -> bool {
        let w = v as usize / WORD_BITS;
        debug_assert!((self.word_off..self.word_off + self.words.len()).contains(&w));
        self.words[w - self.word_off] & (1u64 << (v as usize % WORD_BITS)) != 0
    }
}

/// How a compute task records "vertex `v`'s metadata first diverged
/// from the iteration-start snapshot this iteration".
///
/// The engine's first-change detection has two interchangeable
/// implementations: the list representation compares metadata
/// (`curr == prev`), the bitmap representation tests one bit. They
/// agree because of the engine invariant that metadata never returns
/// to its iteration-start value within an iteration (all ACC programs
/// make monotone progress), so `changed-bit set ⟺ curr != prev`.
pub(crate) trait ChangeSink<M> {
    /// Whether `v` has not changed yet this iteration (called *before*
    /// the apply that may change it).
    fn is_first(&self, v: VertexId, curr: &M, prev: &M) -> bool;
    /// Records `v` as changed.
    fn mark(&mut self, v: VertexId);
}

/// List-mode sink: metadata compare + changed-list push.
pub(crate) struct ListSink<'a>(pub &'a mut Vec<VertexId>);

impl<M: PartialEq> ChangeSink<M> for ListSink<'_> {
    #[inline]
    fn is_first(&self, _v: VertexId, curr: &M, prev: &M) -> bool {
        curr == prev
    }

    #[inline]
    fn mark(&mut self, v: VertexId) {
        self.0.push(v);
    }
}

/// Bitmap-mode sink: bit test + bit set over a (possibly sharded)
/// window.
pub(crate) struct BitSink<'a>(pub BitmapWordsMut<'a>);

impl<M> ChangeSink<M> for BitSink<'_> {
    #[inline]
    fn is_first(&self, v: VertexId, _curr: &M, _prev: &M) -> bool {
        !self.0.test(v)
    }

    #[inline]
    fn mark(&mut self, v: VertexId) {
        self.0.set(v);
    }
}

/// Degree thresholds separating the three worklists.
///
/// §4: "we initialize the small, medium and large worklists to be warp
/// and block sizes (i.e., 32 and 128)", and performance is stable for
/// small/med in `[4, 128]` and med/large in `[128, 2048]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifyThresholds {
    /// Degrees `<= small_max` go to the small (Thread) list.
    pub small_max: u32,
    /// Degrees `<= med_max` go to the medium (Warp) list; larger ones to
    /// the large (CTA) list.
    pub med_max: u32,
}

impl Default for ClassifyThresholds {
    fn default() -> Self {
        Self {
            small_max: 32,
            med_max: 128,
        }
    }
}

impl ClassifyThresholds {
    /// The worklist for a vertex of degree `d`.
    pub fn classify(&self, d: u32) -> SchedUnit {
        if d <= self.small_max {
            SchedUnit::Thread
        } else if d <= self.med_max {
            SchedUnit::Warp
        } else {
            SchedUnit::Cta
        }
    }
}

/// The three active worklists of one iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Worklists {
    /// Vertices processed one-per-thread (small degrees).
    pub small: Vec<VertexId>,
    /// Vertices processed one-per-warp (medium degrees).
    pub med: Vec<VertexId>,
    /// Vertices processed one-per-CTA (large degrees).
    pub large: Vec<VertexId>,
}

impl Worklists {
    /// Builds worklists by classifying `active` against the degrees in
    /// `csr` (in the scan direction the next iteration will use).
    pub fn classify(active: &[VertexId], csr: &Csr, thresholds: ClassifyThresholds) -> Self {
        let mut lists = Self::default();
        lists.classify_into(active, csr, thresholds);
        lists
    }

    /// In-place [`Self::classify`]: clears the lists (keeping their
    /// capacity) and refills them — the zero-allocation path the engine
    /// scratch uses every iteration.
    pub fn classify_into(
        &mut self,
        active: &[VertexId],
        csr: &Csr,
        thresholds: ClassifyThresholds,
    ) {
        self.clear();
        for &v in active {
            self.classify_one(v, csr, thresholds);
        }
    }

    /// Classifies a single vertex into its list without clearing — the
    /// streaming form backing both [`Self::classify_into`] and the
    /// bitmap-mode drain that classifies straight out of
    /// [`ThreadBins`] without materializing the concatenated worklist.
    #[inline]
    pub fn classify_one(&mut self, v: VertexId, csr: &Csr, thresholds: ClassifyThresholds) {
        match thresholds.classify(csr.degree(v)) {
            SchedUnit::Thread => self.small.push(v),
            SchedUnit::Warp => self.med.push(v),
            SchedUnit::Cta => self.large.push(v),
        }
    }

    /// Clears all three lists, keeping capacity.
    pub fn clear(&mut self) {
        self.small.clear();
        self.med.clear();
        self.large.clear();
    }

    /// Appends another set of worklists (used to merge per-worker
    /// classification results in worker order, which reproduces the
    /// serial order because workers own contiguous chunks).
    pub fn append(&mut self, other: &Self) {
        self.small.extend_from_slice(&other.small);
        self.med.extend_from_slice(&other.med);
        self.large.extend_from_slice(&other.large);
    }

    /// Total entries across the three lists.
    pub fn len(&self) -> u64 {
        (self.small.len() + self.med.len() + self.large.len()) as u64
    }

    /// Whether every list is empty (BSP termination signal).
    pub fn is_empty(&self) -> bool {
        self.small.is_empty() && self.med.is_empty() && self.large.is_empty()
    }

    /// The list processed at the given granularity.
    pub fn list(&self, unit: SchedUnit) -> &[VertexId] {
        match unit {
            SchedUnit::Thread => &self.small,
            SchedUnit::Warp => &self.med,
            SchedUnit::Cta => &self.large,
        }
    }

    /// Iterates `(unit, list)` pairs in small→med→large order.
    pub fn iter_units(&self) -> impl Iterator<Item = (SchedUnit, &[VertexId])> {
        [
            (SchedUnit::Thread, self.small.as_slice()),
            (SchedUnit::Warp, self.med.as_slice()),
            (SchedUnit::Cta, self.large.as_slice()),
        ]
        .into_iter()
    }

    /// Sum of scan-direction degrees over all entries — the frontier
    /// workload volume used by the direction heuristic.
    pub fn degree_sum(&self, csr: &Csr) -> u64 {
        self.iter_units()
            .flat_map(|(_, l)| l.iter())
            .map(|&v| csr.degree(v) as u64)
            .sum()
    }
}

/// Bounded per-thread bins used by the online filter.
///
/// Each simulated GPU thread owns a bin of at most `threshold` slots
/// (the §4 overflow threshold, default 64). Recording into a full bin
/// raises the overflow flag instead of growing — exactly the behaviour
/// that forces the switch to the ballot filter.
#[derive(Clone, Debug)]
pub struct ThreadBins {
    bins: Vec<Vec<VertexId>>,
    threshold: usize,
    overflowed: bool,
    /// Records dropped because of overflow (kept for diagnostics; the
    /// ballot filter regenerates the full list so nothing is lost).
    dropped: u64,
    /// Per-bin prefix offsets into the concatenation order
    /// (`bins + 1` entries once sealed, empty while recording). Built
    /// by [`Self::seal_prefix`] so the parallel backend can partition
    /// the bin-resident frontier through [`Self::for_each_entry_in`]
    /// ranges instead of materializing the concatenated list.
    prefix: Vec<u64>,
}

impl ThreadBins {
    /// Creates `num_threads` empty bins with the given overflow
    /// threshold.
    pub fn new(num_threads: usize, threshold: usize) -> Self {
        Self {
            bins: vec![Vec::new(); num_threads.max(1)],
            threshold,
            overflowed: false,
            dropped: 0,
            prefix: Vec::new(),
        }
    }

    /// Number of bins (simulated threads).
    pub fn num_threads(&self) -> usize {
        self.bins.len()
    }

    /// The overflow threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Records vertex `v` from simulated thread `thread`. Returns
    /// `false` (and sets the overflow flag) if the bin was full.
    pub fn record(&mut self, thread: usize, v: VertexId) -> bool {
        debug_assert!(
            self.prefix.is_empty(),
            "recording into sealed bins (prefix would go stale)"
        );
        let idx = thread % self.bins.len();
        let bin = &mut self.bins[idx];
        if bin.len() >= self.threshold {
            self.overflowed = true;
            self.dropped += 1;
            return false;
        }
        bin.push(v);
        true
    }

    /// Whether any bin has overflowed.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Records dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total recorded entries across bins.
    pub fn total_recorded(&self) -> u64 {
        self.bins.iter().map(|b| b.len() as u64).sum()
    }

    /// Concatenates all bins in thread order (the prefix-scan
    /// concatenation of Fig. 4(b) line 20). The result may contain
    /// duplicates and is generally unsorted — the documented online
    /// filter trade-off (§4).
    pub fn concatenate(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.total_recorded() as usize);
        self.concatenate_into(&mut out);
        out
    }

    /// In-place [`Self::concatenate`] into a reused buffer (cleared
    /// first, capacity kept).
    pub fn concatenate_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        for bin in &self.bins {
            out.extend_from_slice(bin);
        }
    }

    /// Visits every recorded vertex in concatenation order (bin by
    /// bin, entries in record order — exactly the sequence
    /// [`Self::concatenate`] would produce, duplicates included).
    ///
    /// This is the bitmap-native worklist drain: the engine's bitmap
    /// mode feeds the next iteration's degree sum, classification and
    /// aggregation-pull marking straight from the bins, so the
    /// duplicate-carrying online worklist need never be materialized
    /// as a flat list.
    pub fn for_each_entry(&self, mut f: impl FnMut(VertexId)) {
        for bin in &self.bins {
            for &v in bin {
                f(v);
            }
        }
    }

    /// Builds the per-bin prefix offsets over the current contents —
    /// the index [`Self::for_each_entry_in`] ranges resolve against.
    /// Call once after the last [`Self::record`] of an iteration
    /// (recording after sealing would silently desynchronize the
    /// index, so [`Self::record`] debug-asserts the unsealed state).
    pub fn seal_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.push(0);
        let mut acc = 0u64;
        for bin in &self.bins {
            acc += bin.len() as u64;
            self.prefix.push(acc);
        }
    }

    /// Visits the entries at concatenation positions `[lo, hi)` — the
    /// exact subsequence `[Self::concatenate]`'s output would hold
    /// there, duplicates included. Contiguous ranges visited in order
    /// therefore reproduce [`Self::for_each_entry`] exactly, which is
    /// how the parallel backend partitions a bin-resident frontier
    /// across workers without materializing it. Requires a current
    /// [`Self::seal_prefix`]; resolves the starting bin by binary
    /// search, so a worker pays O(log bins + entries visited).
    pub fn for_each_entry_in(&self, lo: u64, hi: u64, mut f: impl FnMut(VertexId)) {
        debug_assert_eq!(self.prefix.len(), self.bins.len() + 1, "prefix not sealed");
        debug_assert_eq!(
            *self.prefix.last().expect("sealed prefix"),
            self.total_recorded(),
            "prefix stale: bins recorded after seal_prefix"
        );
        if lo >= hi {
            return;
        }
        // Largest bin whose prefix start is <= lo (prefix[0] == 0, so
        // the partition point is always >= 1).
        let mut b = self.prefix.partition_point(|&p| p <= lo) - 1;
        let mut pos = lo;
        while pos < hi && b < self.bins.len() {
            let bin = &self.bins[b];
            let start = (pos - self.prefix[b]) as usize;
            let end = (hi - self.prefix[b]).min(bin.len() as u64) as usize;
            for &v in &bin[start..end] {
                f(v);
            }
            pos = self.prefix[b] + end as u64;
            b += 1;
        }
    }

    /// Clears all bins, the overflow flag and the prefix index for the
    /// next iteration.
    pub fn clear(&mut self) {
        for bin in &mut self.bins {
            bin.clear();
        }
        self.overflowed = false;
        self.dropped = 0;
        self.prefix.clear();
    }

    /// Reshapes to `num_threads` bins with `threshold` capacity and
    /// clears, reusing existing bin allocations (the engine calls this
    /// every iteration; growing/shrinking only moves empty `Vec`s).
    pub fn reset_to(&mut self, num_threads: usize, threshold: usize) {
        self.bins.resize_with(num_threads.max(1), Vec::new);
        self.threshold = threshold;
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::EdgeList;

    fn star_csr(leaves: u32) -> Csr {
        Csr::from_edge_list(&EdgeList::from_pairs(
            (1..=leaves).map(|i| (0, i)).collect(),
        ))
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = ClassifyThresholds::default();
        assert_eq!(t.small_max, 32);
        assert_eq!(t.med_max, 128);
        assert_eq!(t.classify(1), SchedUnit::Thread);
        assert_eq!(t.classify(32), SchedUnit::Thread);
        assert_eq!(t.classify(33), SchedUnit::Warp);
        assert_eq!(t.classify(128), SchedUnit::Warp);
        assert_eq!(t.classify(129), SchedUnit::Cta);
    }

    #[test]
    fn classify_splits_by_degree() {
        let csr = star_csr(200);
        // Vertex 0 has degree 200 (large); leaves have degree 0 (small).
        let lists = Worklists::classify(&[0, 1, 2], &csr, ClassifyThresholds::default());
        assert_eq!(lists.large, vec![0]);
        assert_eq!(lists.small, vec![1, 2]);
        assert!(lists.med.is_empty());
        assert_eq!(lists.len(), 3);
        assert!(!lists.is_empty());
    }

    #[test]
    fn degree_sum_counts_scan_volume() {
        let csr = star_csr(200);
        let lists = Worklists::classify(&[0, 1], &csr, ClassifyThresholds::default());
        assert_eq!(lists.degree_sum(&csr), 200);
    }

    #[test]
    fn empty_worklists() {
        let lists = Worklists::default();
        assert!(lists.is_empty());
        assert_eq!(lists.len(), 0);
    }

    #[test]
    fn bins_record_until_threshold() {
        let mut bins = ThreadBins::new(2, 3);
        for i in 0..3 {
            assert!(bins.record(0, i));
        }
        assert!(!bins.overflowed());
        assert!(!bins.record(0, 99));
        assert!(bins.overflowed());
        assert_eq!(bins.dropped(), 1);
        // The other bin is unaffected.
        assert!(bins.record(1, 5));
        assert_eq!(bins.total_recorded(), 4);
    }

    #[test]
    fn concatenate_preserves_thread_order_with_duplicates() {
        let mut bins = ThreadBins::new(2, 8);
        bins.record(0, 7);
        bins.record(1, 3);
        bins.record(0, 7); // duplicate is kept — online filter semantics
        assert_eq!(bins.concatenate(), vec![7, 7, 3]);
    }

    #[test]
    fn clear_resets_overflow() {
        let mut bins = ThreadBins::new(1, 1);
        bins.record(0, 1);
        bins.record(0, 2);
        assert!(bins.overflowed());
        bins.clear();
        assert!(!bins.overflowed());
        assert_eq!(bins.total_recorded(), 0);
        assert_eq!(bins.dropped(), 0);
    }

    #[test]
    fn for_each_entry_matches_concatenation_order() {
        let mut bins = ThreadBins::new(3, 8);
        bins.record(1, 4);
        bins.record(0, 7);
        bins.record(2, 9);
        bins.record(0, 7); // duplicate kept, in record order
        let mut seen = Vec::new();
        bins.for_each_entry(|v| seen.push(v));
        assert_eq!(seen, bins.concatenate());
        assert_eq!(seen, vec![7, 7, 4, 9]);
    }

    #[test]
    fn entry_ranges_partition_the_concatenation() {
        // Uneven bins, including empty ones, so the binary search has
        // runs of equal prefix entries to step over.
        let mut bins = ThreadBins::new(5, 8);
        for (t, v) in [(0, 7), (0, 7), (2, 4), (2, 9), (2, 1), (4, 3)] {
            bins.record(t, v);
        }
        bins.seal_prefix();
        let full = bins.concatenate();
        let total = bins.total_recorded();
        for parts in 1..=4u64 {
            let mut seen = Vec::new();
            for w in 0..parts {
                let lo = total * w / parts;
                let hi = total * (w + 1) / parts;
                bins.for_each_entry_in(lo, hi, |v| seen.push(v));
            }
            assert_eq!(seen, full, "{parts}-way partition diverged");
        }
        // Out-of-range and empty ranges are harmless.
        bins.for_each_entry_in(3, 3, |_| panic!("empty range visited"));
        let mut tail = Vec::new();
        bins.for_each_entry_in(total - 1, total + 5, |v| tail.push(v));
        assert_eq!(tail, vec![full[full.len() - 1]]);
        // Clearing invalidates the prefix so recording is legal again.
        bins.clear();
        assert!(bins.record(1, 2));
    }

    #[test]
    fn classify_one_streams_like_classify_into() {
        let csr = star_csr(200);
        let active = [0u32, 1, 2];
        let mut batch = Worklists::default();
        batch.classify_into(&active, &csr, ClassifyThresholds::default());
        let mut streamed = Worklists::default();
        streamed.clear();
        for &v in &active {
            streamed.classify_one(v, &csr, ClassifyThresholds::default());
        }
        assert_eq!(streamed, batch);
    }

    #[test]
    fn drain_nonzero_words_visits_and_clears() {
        let mut b = FrontierBitmap::new(200);
        b.set(3);
        b.set(64);
        b.set(65);
        b.set(199);
        let mut words = Vec::new();
        b.drain_nonzero_words(|w| words.push(w));
        assert_eq!(words, vec![0, 1, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn thread_index_wraps() {
        let mut bins = ThreadBins::new(4, 16);
        bins.record(7, 42); // 7 % 4 == 3
        assert_eq!(bins.concatenate(), vec![42]);
    }

    #[test]
    fn bitmap_set_test_unset() {
        let mut b = FrontierBitmap::new(130);
        assert_eq!(b.num_words(), 3);
        for v in [0u32, 63, 64, 129] {
            assert!(!b.test(v));
            b.set(v);
            assert!(b.test(v));
        }
        assert_eq!(b.count(), 4);
        b.unset(64);
        assert!(!b.test(64));
        assert_eq!(b.count(), 3);
        assert!(!b.is_empty());
        b.clear_all();
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn bitmap_iterates_ascending() {
        let mut b = FrontierBitmap::new(200);
        for v in [199u32, 0, 64, 63, 3, 130] {
            b.set(v);
        }
        let got: Vec<VertexId> = b.iter().collect();
        assert_eq!(got, vec![0, 3, 63, 64, 130, 199]);
        let mut out = Vec::new();
        b.collect_into(&mut out);
        assert_eq!(out, got);
    }

    #[test]
    fn bitmap_roundtrips_worklist_at_misaligned_len() {
        // 97 is warp- and word-misaligned: the tail word is partial.
        let list = vec![1u32, 5, 31, 32, 64, 95, 96];
        let mut b = FrontierBitmap::default();
        b.fill_from_list(97, &list);
        assert_eq!(b.count(), list.len() as u64);
        let mut out = Vec::new();
        b.collect_into(&mut out);
        assert_eq!(out, list);
    }

    #[test]
    fn bitmap_drain_visits_and_clears() {
        let mut b = FrontierBitmap::new(100);
        b.set(2);
        b.set(66);
        let mut seen = Vec::new();
        b.drain_for_each(|v| seen.push(v));
        assert_eq!(seen, vec![2, 66]);
        assert!(b.is_empty());
    }

    #[test]
    fn bitmap_reset_reuses_shape() {
        let mut a = FrontierBitmap::new(70);
        a.set(1);
        a.set(69);
        a.reset(70);
        assert!(a.is_empty());
        assert_eq!(a.num_vertices(), 70);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_rejects_phantom_tail_vertices() {
        // 97 vertices leave a partial tail word; bit 100 physically
        // exists but must not be addressable.
        let mut b = FrontierBitmap::new(97);
        b.set(100);
    }

    #[test]
    fn bitmap_word_window_is_offset_aware() {
        let mut b = FrontierBitmap::new(256);
        let words = b.words_mut();
        let (lo, hi) = words.split_at_mut(2);
        let mut w0 = BitmapWordsMut::new(0, lo);
        let mut w1 = BitmapWordsMut::new(2, hi);
        w0.set(5);
        w1.set(128);
        w1.set(255);
        assert!(w0.test(5));
        assert!(!w1.test(129));
        assert!(w1.test(255));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![5, 128, 255]);
    }

    #[test]
    fn change_sinks_agree() {
        let mut list = Vec::new();
        let mut bits = FrontierBitmap::new(64);
        let mut ls = ListSink(&mut list);
        let mut bs = BitSink(bits.view_mut());
        // Unchanged vertex: both report first change.
        assert!(ChangeSink::<u32>::is_first(&ls, 7, &1, &1));
        assert!(ChangeSink::<u32>::is_first(&bs, 7, &1, &1));
        ChangeSink::<u32>::mark(&mut ls, 7);
        ChangeSink::<u32>::mark(&mut bs, 7);
        // Changed vertex (curr != prev; bit set): both report not-first.
        assert!(!ChangeSink::<u32>::is_first(&ls, 7, &2, &1));
        assert!(!ChangeSink::<u32>::is_first(&bs, 7, &2, &1));
        assert_eq!(list, vec![7]);
        assert!(bits.test(7));
    }
}
