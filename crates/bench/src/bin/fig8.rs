//! Regenerates **Figure 8**: which filter (online vs ballot) each
//! iteration of BFS, k-Core and SSSP uses on every graph, plus the
//! iteration counts the figure annotates (ER/RC run thousands of
//! iterations and never leave the online filter).

use simdx_algos::{bfs::Bfs, kcore::KCore, sssp::Sssp};
use simdx_bench::{load, print_table, run_one, source, GRAPH_ORDER};
use simdx_core::{EngineConfig, RunReport};

fn pattern_row(abbrev: &str, report: &RunReport) -> Vec<String> {
    vec![
        abbrev.to_string(),
        report.iterations.to_string(),
        report.log.online_iterations().to_string(),
        report.ballot_iterations().to_string(),
        report.log.pattern_rle(),
    ]
}

fn main() {
    let header = [
        "Graph",
        "Iter",
        "Online",
        "Ballot",
        "Pattern (o=online, B=ballot)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect::<Vec<_>>();

    for algo in ["BFS", "k-Core", "SSSP"] {
        let mut rows = Vec::new();
        for abbrev in GRAPH_ORDER {
            let (_, g) = load(abbrev);
            let src = source(&g);
            let cfg = EngineConfig::default();
            let report = match algo {
                "BFS" => run_one(&g, cfg, Bfs::new(src)).expect("bfs").report,
                "k-Core" => run_one(&g, cfg, KCore::new(16)).expect("kcore").report,
                _ => run_one(&g, cfg, Sssp::new(src)).expect("sssp").report,
            };
            rows.push(pattern_row(abbrev, &report));
        }
        print_table(
            &format!("Figure 8 ({algo}): filter activation"),
            &header,
            &rows,
        );
    }
    println!(
        "\nPaper shape: BFS/SSSP go online->ballot->online on social/web graphs; \
         road graphs (ER, RC) stay online across thousands of iterations; \
         k-Core uses ballot only in the first iterations."
    );
}
