//! Web-graph generator (UK-2002 twin).
//!
//! Hyperlink graphs combine power-law in-degrees with strong *community*
//! (host-level) locality: most links stay within a host, a minority cross
//! hosts. The locality matters to SIMD-X because it produces the medium
//! diameter (10–30, §6) and bursty frontier growth the evaluation
//! exercises. We partition vertices into contiguous "hosts" with sizes
//! drawn from a power law, wire dense preferential intra-host links, and
//! add a fraction of cross-host links to power-law-popular hosts.

use crate::EdgeList;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Web-graph generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct Web {
    /// Vertex count.
    pub num_vertices: VertexId,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Average host (community) size.
    pub mean_host_size: u32,
    /// Fraction of edges that leave their host.
    pub cross_host_fraction: f64,
}

impl Web {
    /// A UK-2002-class preset.
    pub fn uk_style(num_vertices: VertexId, edge_factor: u32) -> Self {
        Self {
            num_vertices,
            edge_factor,
            mean_host_size: 64,
            cross_host_fraction: 0.15,
        }
    }

    /// Generates the edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_vertices;

        // Carve `0..n` into contiguous hosts with exponential-ish sizes.
        let mut host_starts: Vec<VertexId> = vec![0];
        let mut at = 0u64;
        while at < n as u64 {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let size = (-(u.ln()) * self.mean_host_size as f64).ceil().max(2.0) as u64;
            at = (at + size).min(n as u64);
            host_starts.push(at as VertexId);
        }
        let hosts = host_starts.len() - 1;

        let host_of =
            |v: VertexId| -> usize { host_starts.partition_point(|&s| s <= v).saturating_sub(1) };

        // Host popularity for cross links: Zipf over host index.
        let host_pop: Vec<f64> = (0..hosts).map(|h| 1.0 / (1.0 + h as f64)).collect();
        let total_pop: f64 = host_pop.iter().sum();
        let mut host_cum = Vec::with_capacity(hosts + 1);
        host_cum.push(0.0);
        for &p in &host_pop {
            let last = *host_cum.last().expect("non-empty");
            host_cum.push(last + p);
        }

        let m = n as u64 * self.edge_factor as u64;
        let mut el = EdgeList::new(n);
        for _ in 0..m {
            let s = rng.gen_range(0..n);
            let h = host_of(s);
            let (lo, hi) = (host_starts[h], host_starts[h + 1]);
            let d = if rng.gen::<f64>() < self.cross_host_fraction || hi - lo < 2 {
                // Cross-host: pick a popular host, then a low vertex inside
                // it (pages near the host root are more linked).
                let r = rng.gen::<f64>() * total_pop;
                let th = host_cum.partition_point(|&c| c <= r).saturating_sub(1);
                let (tlo, thi) = (host_starts[th], host_starts[th + 1]);
                let span = (thi - tlo).max(1);
                let off = (rng.gen::<f64>().powi(2) * span as f64) as u32;
                tlo + off.min(span - 1)
            } else {
                // Intra-host preferential: bias toward host root.
                let span = hi - lo;
                let off = (rng.gen::<f64>().powi(2) * span as f64) as u32;
                lo + off.min(span - 1)
            };
            if s != d {
                el.push(s, d);
            }
        }
        el.dedup();
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn deterministic() {
        let g = Web::uk_style(2000, 8);
        assert_eq!(g.generate(4), g.generate(4));
    }

    #[test]
    fn in_degree_is_skewed() {
        let el = Web::uk_style(4000, 12).generate(8);
        let in_csr = Csr::from_edge_list(&el).transpose();
        let max = in_csr.max_degree() as f64;
        let avg = in_csr.num_edges() as f64 / in_csr.num_vertices() as f64;
        assert!(max > avg * 8.0, "web in-degrees skew: max={max} avg={avg}");
    }

    #[test]
    fn most_edges_stay_local() {
        let cfg = Web::uk_style(4000, 8);
        let el = cfg.generate(2);
        let local = el
            .edges()
            .iter()
            .filter(|&&(s, d)| (s as i64 - d as i64).unsigned_abs() < 4 * cfg.mean_host_size as u64)
            .count();
        assert!(
            local * 2 > el.num_edges(),
            "expected majority-local links: {local}/{}",
            el.num_edges()
        );
    }
}
