//! Bounded deterministic-interleaving tests over the engine's small
//! concurrency protocols, run with `cargo test --features model --test
//! model_interleave`.
//!
//! Each scenario decomposes a protocol into per-thread step sequences
//! and replays **every** interleaving of those steps (enumerated by
//! [`simdx_lint::model::Schedules`]) cooperatively on one OS thread —
//! one step at a time, in schedule order. At step granularity this is
//! sequentially consistent, which is exactly the point: the protocols
//! under test claim their invariants hold under *any* order of their
//! coarse-grained operations, and these tests check that claim against
//! the full enumeration instead of the handful of orders the OS
//! scheduler happens to produce.
//!
//! The `model` feature routes `simdx_core`'s atomics through counting
//! shims (`simdx::core::sync`), so the tests can also prove the
//! scenarios actually exercise the instrumented facade rather than
//! some other code path.
#![cfg(feature = "model")]

use std::time::{Duration, Instant};

use simdx::core::sync::model as sync_model;
use simdx::core::{Breaker, CancelToken, PoolLease, PoolStash, MAX_IDLE_POOLS};
use simdx_lint::model::Schedules;

/// CancelToken stickiness: one thread issues (idempotent) cancels, the
/// other polls. Under every interleaving the observed flag sequence is
/// monotone — once a poll sees `true`, no later poll sees `false` —
/// and any poll scheduled after the first cancel sees `true`.
#[test]
fn cancel_token_flag_is_sticky_under_all_interleavings() {
    const COUNTS: [usize; 2] = [2, 3]; // T0: cancel ×2, T1: poll ×3
    let expected = Schedules::count(&COUNTS);
    assert_eq!(expected, 10);

    sync_model::reset_ops();
    let mut schedules = 0u128;
    for schedule in Schedules::new(&COUNTS) {
        let token = CancelToken::new();
        let mut cancelled_steps = 0usize;
        let mut observations: Vec<bool> = Vec::new();
        for &t in &schedule {
            match t {
                0 => {
                    token.cancel();
                    cancelled_steps += 1;
                }
                _ => {
                    let seen = token.is_cancelled();
                    assert_eq!(
                        seen,
                        cancelled_steps > 0,
                        "cooperative steps are sequentially consistent: a poll \
                         after the first cancel must see it (schedule {schedule:?})"
                    );
                    observations.push(seen);
                }
            }
        }
        assert!(
            observations.windows(2).all(|w| w[0] <= w[1]),
            "cancellation is sticky: observations must be monotone \
             (schedule {schedule:?} saw {observations:?})"
        );
        assert!(token.is_cancelled(), "all cancels ran by drain time");
        schedules += 1;
    }
    assert_eq!(schedules, expected, "full enumeration, no early exit");
    assert!(
        sync_model::op_count() > 0,
        "the scenario must have gone through the instrumented facade"
    );
}

/// PoolStash checkout / poison-discard: one thread checks a pool out,
/// poisons it (contained worker panic) and returns it; two others
/// check out and return healthy pools. Under every interleaving no
/// checkout ever observes a poisoned pool, concurrently-live leases
/// hold distinct pools, and the idle inventory stays within bounds.
#[test]
fn pool_stash_never_hands_out_poison_under_all_interleavings() {
    // T0: checkout, poison, drop. T1/T2: checkout, drop.
    const COUNTS: [usize; 3] = [3, 2, 2];
    let expected = Schedules::count(&COUNTS);
    assert_eq!(expected, 210);

    // The injected worker panics are contained by the pool; silence
    // the default hook's per-panic backtrace spam for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut schedules = 0u128;
    for schedule in Schedules::new(&COUNTS) {
        let stash = PoolStash::new(2);
        let mut pc = [0usize; 3];
        let mut leases: [Option<PoolLease<'_>>; 3] = [None, None, None];
        for &t in &schedule {
            let step = pc[t];
            pc[t] += 1;
            match (t, step) {
                (_, 0) => {
                    let lease = stash.checkout().expect("width-2 stash always leases");
                    assert!(
                        !lease.is_poisoned(),
                        "a poisoned pool must never be handed out (schedule {schedule:?})"
                    );
                    leases[t] = Some(lease);
                }
                (0, 1) => {
                    let lease = leases[0].as_ref().expect("T0 checked out in step 0");
                    let err = lease.try_run(&|_w| panic!("injected worker fault"));
                    assert!(err.is_err(), "the injected panic surfaces as WorkerPanic");
                    assert!(lease.is_poisoned(), "the panic poisons the pool");
                }
                (0, 2) | (1, 1) | (2, 1) => {
                    leases[t] = None; // drop = check-in (or discard, if poisoned)
                }
                _ => unreachable!("schedule exceeds a thread's step budget"),
            }
        }
        // Drained: the pool T0 poisoned was discarded at check-in, so
        // the idle inventory is the distinct healthy pools minus the
        // casualty — anywhere from 0 (everyone reused one pool, e.g.
        // schedule [1,1,2,2,0,0,0]: T0 poisons the pool T1 and T2
        // already returned) to 2 (three distinct pools, one discarded).
        // Never the poisoned one, never more than the cap.
        let idle = stash.idle_pools();
        assert!(
            idle <= 2,
            "at most the two healthy pools are retained \
             (schedule {schedule:?} left {idle} idle)"
        );
        assert!(idle <= MAX_IDLE_POOLS);
        // Every pool the stash now hands back out is healthy.
        let release = stash.checkout().expect("width-2 stash always leases");
        assert!(!release.is_poisoned());
        drop(release);
        schedules += 1;
    }

    std::panic::set_hook(prev_hook);
    assert_eq!(schedules, expected, "full enumeration, no early exit");
}

/// Breaker threshold trip: one thread feeds consecutive worker-panic
/// outcomes, the other submits. Under every interleaving each
/// submission's fate is exactly determined by whether the threshold
/// has been crossed yet — admitted before, shed after.
#[test]
fn breaker_trips_exactly_at_threshold_under_all_interleavings() {
    const COUNTS: [usize; 2] = [2, 2]; // T0: record(panic) ×2, T1: admit ×2
    let expected = Schedules::count(&COUNTS);
    assert_eq!(expected, 6);
    let cooldown = Duration::from_millis(100);
    let t0 = Instant::now();

    let mut schedules = 0u128;
    for schedule in Schedules::new(&COUNTS) {
        let mut breaker = Breaker::new(2, cooldown);
        let mut panics_recorded = 0u32;
        for &t in &schedule {
            match t {
                0 => {
                    breaker.record(true, t0);
                    panics_recorded += 1;
                }
                _ => {
                    let admitted = breaker.admit(t0).is_ok();
                    assert_eq!(
                        admitted,
                        panics_recorded < 2,
                        "admission flips exactly at the threshold \
                         (schedule {schedule:?}, {panics_recorded} panics in)"
                    );
                }
            }
        }
        assert!(breaker.is_shedding(t0), "threshold reached by drain time");
        assert!(
            !breaker.is_shedding(t0 + cooldown + Duration::from_millis(1)),
            "cooldown elapses into half-open, which admits (sheds only \
             while a probe is outstanding)"
        );
        schedules += 1;
    }
    assert_eq!(schedules, expected, "full enumeration, no early exit");
}

/// Breaker half-open single probe: with the breaker open and cooled
/// down, two threads race submissions. Under every interleaving
/// exactly one is admitted as the probe; its outcome then decides
/// reopen (panic) vs close (success).
#[test]
fn breaker_half_open_admits_exactly_one_probe_under_all_interleavings() {
    const COUNTS: [usize; 2] = [2, 2]; // two submitters, two attempts each
    let expected = Schedules::count(&COUNTS);
    assert_eq!(expected, 6);
    let cooldown = Duration::from_millis(100);
    let t0 = Instant::now();
    let t1 = t0 + cooldown + Duration::from_millis(1); // past cooldown

    let mut schedules = 0u128;
    for (si, schedule) in Schedules::new(&COUNTS).enumerate() {
        let mut breaker = Breaker::new(2, cooldown);
        breaker.record(true, t0);
        breaker.record(true, t0); // open at t0
        assert!(breaker.is_shedding(t1 - Duration::from_millis(2)));

        let mut admitted = 0u32;
        for &t in &schedule {
            let _ = t; // both logical threads run the same step
            if breaker.admit(t1).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(
            admitted, 1,
            "half-open admits exactly one probe no matter how the \
             submitters interleave (schedule {schedule:?})"
        );

        // Alternate the probe's fate across schedules to cover both
        // transitions deterministically.
        if si % 2 == 0 {
            breaker.record(false, t1); // probe succeeded: close
            assert!(breaker.admit(t1).is_ok(), "closed breaker admits");
            assert!(!breaker.is_shedding(t1));
        } else {
            breaker.record(true, t1); // probe died: reopen
            assert!(breaker.admit(t1).is_err(), "reopened breaker sheds");
            assert!(breaker.is_shedding(t1 + Duration::from_millis(1)));
        }
        schedules += 1;
    }
    assert_eq!(schedules, expected, "full enumeration, no early exit");
}

/// The acceptance bar: the suite explores at least 100 distinct
/// schedules overall. Counted analytically (the enumerators are
/// duplicate-free by construction and each test asserts its own full
/// count), so this stays in sync with the scenarios above.
#[test]
fn suite_explores_at_least_one_hundred_distinct_schedules() {
    let total = Schedules::count(&[2, 3])   // cancel token
        + Schedules::count(&[3, 2, 2])      // pool stash
        + Schedules::count(&[2, 2])         // breaker threshold
        + Schedules::count(&[2, 2]); // breaker half-open
    assert_eq!(total, 232);
    assert!(total >= 100);
}
