//! Durable-checkpoint crash recovery (`crates/core/src/persist.rs`).
//!
//! Two halves:
//!
//! 1. **Kill-and-restart subprocess matrix** — a child process (this
//!    same test binary, re-invoked on its `#[ignore]`d child entry
//!    point) serves a batch with durability armed; tiny per-query
//!    cycle budgets make every admitted query final-fail at a boundary
//!    and spill. Once the child signals its spills are on disk, the
//!    parent SIGKILLs it — no drop glue, no graceful close — reopens
//!    the spill directory, and `QueryPool::recover` completes every
//!    ticket **bit-equal** to the uninterrupted baseline (metadata,
//!    activation log, simulated cycles), across
//!    {Serial, Parallel} × {List, Bitmap}.
//!
//! 2. **Persist fault matrix** — on-disk tampering (truncation, bit
//!    flips, version skew) in every build, plus the injected `persist`
//!    disturbances (`persist:torn_write`, `persist:corrupt`,
//!    `persist:io_err@N`) under `--features fault-inject`: every fault
//!    surfaces as a typed `CheckpointCorrupt` / `CheckpointIo`, never a
//!    panic, recovery skips exactly the damaged blobs while completing
//!    the rest, and the store stays usable afterwards.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use simdx::algos::Bfs;
use simdx::core::jit::ActivationLog;
use simdx::core::prelude::*;
use simdx::graph::gen::Rmat;
use simdx::graph::{Graph, VertexId};
use simdx_gpu::executor::ExecutorStats;

/// Serializes every test body that spills through a `DirStore`: under
/// `--features fault-inject` the armed fault plan is process-global,
/// so an unrelated spill racing an armed `persist` disturbance would
/// absorb the wrong test's fault.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The graph both processes rebuild — deterministic by construction,
/// which is what makes cross-process bit-equality checkable at all.
fn graph() -> Graph {
    Graph::directed_from_edges(Rmat::gtgraph(11, 8).generate(5))
}

/// The serving batch: seeds spread across the rmat component
/// structure.
const SEEDS: &[VertexId] = &[0, 3, 7, 11, 19, 25];

/// The recovery matrix cells, keyed by the string the parent passes to
/// the child via `SIMDX_DR_CELL`.
const CELLS: &[&str] = &[
    "serial:list",
    "serial:bitmap",
    "parallel:list",
    "parallel:bitmap",
];

fn cell_config(cell: &str) -> EngineConfig {
    let (exec, repr) = match cell {
        "serial:list" => (ExecMode::Serial, FrontierRepr::List),
        "serial:bitmap" => (ExecMode::Serial, FrontierRepr::Bitmap),
        "parallel:list" => (ExecMode::Parallel { threads: 2 }, FrontierRepr::List),
        "parallel:bitmap" => (ExecMode::Parallel { threads: 2 }, FrontierRepr::Bitmap),
        other => panic!("unknown matrix cell {other:?}"),
    };
    EngineConfig::unscaled().with_exec(exec).with_frontier(repr)
}

/// Everything that must match bit for bit after recovery.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    meta: Vec<u32>,
    iterations: u32,
    stats: ExecutorStats,
    log: ActivationLog,
}

fn fingerprint(r: &RunResult<u32>) -> Fingerprint {
    Fingerprint {
        meta: r.meta.clone(),
        iterations: r.report.iterations,
        stats: r.report.stats.clone(),
        log: r.report.log.clone(),
    }
}

/// A cycle budget that deterministically aborts `seed`'s query after
/// at least one boundary but before convergence — i.e. a query that
/// will final-fail *with a checkpoint* and spill. `None` when the solo
/// run converges too fast to cut (single-boundary runs).
///
/// Both processes compute this from their own solo probe; the engine's
/// bit-equality contract makes the two answers identical.
fn spill_budget(bound: &BoundGraph<'_, '_>, seed: VertexId) -> Option<u64> {
    let solo = bound.run(Bfs::new(seed)).execute().expect("solo probe");
    let first = solo.report.log.records.first()?.cycles;
    let total = solo.report.stats.total_cycles;
    (total > first).then_some(first)
}

/// The seeds (with budgets) the serving batch will spill, in
/// submission order — ticket `i` serves `plan[i]`.
fn spill_plan(bound: &BoundGraph<'_, '_>) -> Vec<(VertexId, u64)> {
    SEEDS
        .iter()
        .filter_map(|&seed| spill_budget(bound, seed).map(|b| (seed, b)))
        .collect()
}

/// Serves the spill plan with durability armed into `dir` and returns
/// the report. Every planned query final-fails (budget exhausted) and
/// spills its boundary checkpoint.
fn serve_spilling(
    bound: &BoundGraph<'_, '_>,
    plan: &[(VertexId, u64)],
    dir: &std::path::Path,
) -> ServeReport<u32> {
    let store = DirStore::open(dir).expect("open spill dir");
    QueryPool::serve(
        bound,
        Bfs::new(0),
        ServiceConfig::default()
            .workers(2)
            .durability(DurabilityPolicy::spill_to(store)),
        |client| {
            for &(seed, budget) in plan {
                client.submit(QueryRequest::new(seed).cycle_budget(budget))?;
            }
            Ok(())
        },
    )
    .expect("serve")
}

/// A unique scratch directory (no tempfile crate in the offline
/// workspace).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simdx-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Half 1: kill-and-restart subprocess matrix

/// CHILD ENTRY POINT — not a test of its own (hence `#[ignore]`): the
/// parent re-invokes this binary with `--ignored --exact` on this name
/// and the `SIMDX_DR_*` environment set. It serves the spill plan with
/// durability armed, verifies every planned ticket spilled, writes the
/// readiness marker, then hangs until the parent SIGKILLs it.
#[test]
#[ignore = "child half of the kill-and-restart test; spawned by the parent"]
fn child_serve_spill_and_hang() {
    let (Ok(dir), Ok(cell), Ok(ready)) = (
        std::env::var("SIMDX_DR_DIR"),
        std::env::var("SIMDX_DR_CELL"),
        std::env::var("SIMDX_DR_READY"),
    ) else {
        // Invoked by a bare `cargo test -- --ignored` sweep, not by
        // the parent: nothing to do.
        return;
    };
    let g = graph();
    let runtime = Runtime::new(cell_config(&cell)).expect("runtime");
    let bound = runtime.bind(&g);
    let plan = spill_plan(&bound);
    assert!(!plan.is_empty(), "spill plan is empty for cell {cell}");
    let report = serve_spilling(&bound, &plan, std::path::Path::new(&dir));
    assert_eq!(
        report.spilled.len(),
        plan.len(),
        "cell {cell}: every planned final failure must spill (failures: {:?})",
        report.spill_failures
    );
    assert!(report.spill_failures.is_empty());
    // Spills are fsync'd: signal the parent and wait for the bullet.
    std::fs::write(&ready, format!("{}", report.spilled.len())).expect("write ready marker");
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

/// After SIGKILL mid-serve, a fresh process recovers every spilled
/// ticket bit-equal to the uninterrupted baseline, across
/// {Serial, Parallel} × {List, Bitmap}.
#[test]
fn sigkilled_serving_process_recovers_bit_equal_across_matrix() {
    let _serial = lock();
    let exe = std::env::current_exe().expect("current test binary");
    for cell in CELLS {
        let dir = scratch_dir(&format!("kill-{}", cell.replace(':', "-")));
        let ready = dir.with_extension("ready");
        let _ = std::fs::remove_file(&ready);

        let mut child = std::process::Command::new(&exe)
            .args(["--ignored", "--exact", "child_serve_spill_and_hang"])
            .env("SIMDX_DR_DIR", &dir)
            .env("SIMDX_DR_CELL", cell)
            .env("SIMDX_DR_READY", &ready)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child serving process");

        // Wait for the child's spills to be durably on disk.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !ready.exists() {
            if let Some(status) = child.try_wait().expect("poll child") {
                panic!("cell {cell}: child exited before signalling readiness: {status}");
            }
            assert!(
                Instant::now() < deadline,
                "cell {cell}: child never signalled readiness"
            );
            std::thread::sleep(Duration::from_millis(25));
        }

        // SIGKILL: no drop glue, no graceful close — the crash the
        // durable store exists for.
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");

        // A fresh "process": new runtime, new bind, store reopened
        // from the directory alone.
        let g = graph();
        let runtime = Runtime::new(cell_config(cell)).expect("runtime");
        let bound = runtime.bind(&g);
        let plan = spill_plan(&bound);
        let store = DirStore::open(&dir).expect("reopen store");
        assert_eq!(
            store.tickets().expect("scan").len(),
            plan.len(),
            "cell {cell}: one durable blob per planned spill"
        );

        let report = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
        assert!(
            report.skipped.is_empty(),
            "cell {cell}: nothing to skip: {:?}",
            report.skipped
        );
        assert_eq!(report.recovered.len(), plan.len());
        assert_eq!(report.completed(), plan.len());
        for recovered in &report.recovered {
            let (seed, _) = plan[recovered.ticket as usize];
            assert_eq!(recovered.seed, seed, "cell {cell}: ticket→seed identity");
            assert!(
                recovered.resumed_from >= 1,
                "cell {cell}: resumed from a real boundary"
            );
            let run = recovered.result.as_ref().expect("recovered run completes");
            let baseline = bound
                .run(Bfs::new(seed))
                .execute()
                .expect("uninterrupted baseline");
            assert_eq!(
                fingerprint(run),
                fingerprint(&baseline),
                "cell {cell} seed {seed}: recovery must be bit-equal"
            );
        }
        // Recovered blobs are consumed; the store is clean.
        assert_eq!(store.tickets().expect("rescan"), Vec::<u64>::new());

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&ready);
    }
}

// ---------------------------------------------------------------------
// Half 2a: on-disk fault matrix (every build)

/// In-process spill → recover round trip, including an abort-mode
/// close racing the spill path: the budgeted queries spill and recover
/// bit-equal; abort-orphaned queued entries spill nothing.
#[test]
fn spill_then_recover_in_process_is_bit_equal() {
    let _serial = lock();
    let dir = scratch_dir("inproc");
    let g = graph();
    let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
    let bound = runtime.bind(&g);
    let plan = spill_plan(&bound);
    assert!(plan.len() >= 2, "need at least two spilling seeds");

    let report = serve_spilling(&bound, &plan, &dir);
    assert_eq!(report.spilled.len(), plan.len());
    assert!(report.spill_failures.is_empty());
    // The in-memory checkpoints still ride the outcomes.
    for &ticket in &report.spilled {
        assert!(report.outcomes[ticket as usize].checkpoint.is_some());
    }

    let store = DirStore::open(&dir).expect("reopen");
    let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
    assert!(recovery.skipped.is_empty());
    assert_eq!(recovery.completed(), plan.len());
    for recovered in &recovery.recovered {
        let baseline = bound
            .run(Bfs::new(recovered.seed))
            .execute()
            .expect("baseline");
        let run = recovered.result.as_ref().expect("completes");
        assert_eq!(fingerprint(run), fingerprint(&baseline));
    }
    assert_eq!(store.tickets().expect("clean"), Vec::<u64>::new());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Abort-mode close with durability armed: already-failed budgeted
/// queries have spilled; queued-but-unserved orphans spill nothing
/// (they have no checkpoint); everything spilled recovers bit-equal.
#[test]
fn abort_mode_close_spills_only_real_checkpoints() {
    let _serial = lock();
    let dir = scratch_dir("abort");
    let g = graph();
    let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
    let bound = runtime.bind(&g);
    let plan = spill_plan(&bound);
    let (first_seed, first_budget) = plan[0];

    let store = DirStore::open(&dir).expect("open");
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default()
            .workers(1)
            .durability(DurabilityPolicy::spill_to(store)),
        |client| {
            // One guaranteed spill; wait until its blob is durably on
            // disk so the abort/spill interleaving is deterministic.
            client.submit(QueryRequest::new(first_seed).cycle_budget(first_budget))?;
            let blob0 = dir.join(format!("cp-{:020}.sxcp", 0));
            let deadline = Instant::now() + Duration::from_secs(60);
            while !blob0.exists() {
                assert!(Instant::now() < deadline, "ticket 0 never spilled");
                std::thread::sleep(Duration::from_millis(10));
            }
            // Then a pile of queued work the abort orphans.
            for &(seed, _) in &plan[1..] {
                client.submit(QueryRequest::new(seed))?;
            }
            client.close(CloseMode::Abort);
            Ok(())
        },
    )
    .expect("serve");
    assert!(report.spill_failures.is_empty());
    // Every spill corresponds to an outcome that really carried a
    // checkpoint; orphans (attempts == 0) never spill.
    let store = DirStore::open(&dir).expect("reopen");
    let on_disk = store.tickets().expect("scan");
    assert_eq!(report.spilled, on_disk);
    assert!(report.spilled.contains(&0), "the budgeted ticket spilled");
    for outcome in &report.outcomes {
        if outcome.attempts == 0 {
            assert!(outcome.checkpoint.is_none());
        }
    }
    let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
    assert!(recovery.skipped.is_empty());
    assert_eq!(recovery.completed(), on_disk.len());
    for recovered in &recovery.recovered {
        let baseline = bound
            .run(Bfs::new(recovered.seed))
            .execute()
            .expect("baseline");
        assert_eq!(
            fingerprint(recovered.result.as_ref().expect("completes")),
            fingerprint(&baseline)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// On-disk damage — truncation, a flipped bit, version skew, junk —
/// is diagnosed per blob: recovery skips exactly the damaged tickets
/// with typed errors, completes the intact ones, and the store stays
/// usable.
#[test]
fn damaged_blobs_are_skipped_with_typed_errors_and_the_rest_recover() {
    let _serial = lock();
    let dir = scratch_dir("damage");
    let g = graph();
    let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
    let bound = runtime.bind(&g);
    let plan = spill_plan(&bound);
    assert!(
        plan.len() >= 4,
        "need four spilling seeds, got {}",
        plan.len()
    );

    let report = serve_spilling(&bound, &plan, &dir);
    assert_eq!(report.spilled.len(), plan.len());

    // Damage three blobs directly on disk: truncate #0, flip a bit in
    // #1, skew #2's schema version. #3… stay intact.
    let store = DirStore::open(&dir).expect("reopen");
    let blob_path = |t: u64| dir.join(format!("cp-{t:020}.sxcp"));
    let blob0 = std::fs::read(blob_path(0)).expect("read blob 0");
    std::fs::write(blob_path(0), &blob0[..blob0.len() / 3]).expect("truncate blob 0");
    let mut blob1 = std::fs::read(blob_path(1)).expect("read blob 1");
    let mid = blob1.len() / 2;
    blob1[mid] ^= 0x10;
    std::fs::write(blob_path(1), &blob1).expect("corrupt blob 1");
    let mut blob2 = std::fs::read(blob_path(2)).expect("read blob 2");
    blob2[4] = 0xEE; // version u16 LE low byte
    std::fs::write(blob_path(2), &blob2).expect("skew blob 2");

    let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
    assert_eq!(recovery.recovered.len(), plan.len() - 3);
    assert_eq!(recovery.completed(), plan.len() - 3);
    let skipped: Vec<u64> = recovery.skipped.iter().map(|(t, _)| *t).collect();
    assert_eq!(skipped, vec![0, 1, 2]);
    for (ticket, error) in &recovery.skipped {
        match error {
            SimdxError::CheckpointCorrupt { reason } => {
                if *ticket == 2 {
                    assert!(
                        reason.contains("schema version"),
                        "ticket 2 diagnosed as skew: {reason}"
                    );
                }
            }
            other => panic!("ticket {ticket}: expected CheckpointCorrupt, got {other:?}"),
        }
    }
    // Skipped blobs are left in place for forensics…
    assert_eq!(store.tickets().expect("scan"), vec![0, 1, 2]);
    // …and the store stays fully usable: remove them, spill again.
    for t in [0u64, 1, 2] {
        store.remove(t).expect("remove damaged blob");
    }
    let again = serve_spilling(&bound, &plan[..1], &dir);
    assert_eq!(again.spilled.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Half 2b: injected persist disturbances (--features fault-inject)

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use simdx::core::fault::{self, FaultPlan, PersistDisturbance};

    /// `persist:io_err@1` (armed through the real `SIMDX_FAULTS`
    /// grammar): the first spill fails with a typed `CheckpointIo`
    /// surfaced in `spill_failures`, later spills succeed — the store
    /// is not poisoned by an i/o fault.
    #[test]
    fn injected_io_error_lands_in_spill_failures_and_store_recovers() {
        let _serial = lock();
        let dir = scratch_dir("ioerr");
        let g = graph();
        let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
        let bound = runtime.bind(&g);
        let plan = spill_plan(&bound);
        assert!(plan.len() >= 2);

        let armed = fault::install(FaultPlan::parse("persist:io_err@1").expect("grammar"));
        // workers(1): deterministic spill order, so the io_err lands
        // on ticket 0.
        let store = DirStore::open(&dir).expect("open");
        let report = QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default()
                .workers(1)
                .durability(DurabilityPolicy::spill_to(store)),
            |client| {
                for &(seed, budget) in &plan {
                    client.submit(QueryRequest::new(seed).cycle_budget(budget))?;
                }
                Ok(())
            },
        )
        .expect("serve");
        drop(armed);

        assert_eq!(report.spill_failures.len(), 1);
        let (ticket, error) = &report.spill_failures[0];
        assert_eq!(*ticket, 0);
        assert!(
            matches!(error, SimdxError::CheckpointIo { .. }),
            "typed i/o error, got {error:?}"
        );
        // The failed ticket still hands its checkpoint back in memory.
        assert!(report.outcomes[0].checkpoint.is_some());
        // Every later spill stuck.
        let expected: Vec<u64> = (1..plan.len() as u64).collect();
        assert_eq!(report.spilled, expected);
        let store = DirStore::open(&dir).expect("reopen");
        assert_eq!(store.tickets().expect("scan"), expected);
        let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
        assert!(recovery.skipped.is_empty());
        assert_eq!(recovery.completed(), plan.len() - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Torn writes and in-flight corruption produce blobs that decode
    /// rejects with typed errors at recovery time — never a panic,
    /// never a silently-wrong restore — and a clean re-spill heals the
    /// ticket.
    #[test]
    fn injected_torn_and_corrupt_writes_are_diagnosed_at_recovery() {
        let _serial = lock();
        for (tag, disturbance) in [
            ("torn", PersistDisturbance::TornWrite),
            ("corrupt", PersistDisturbance::Corrupt),
        ] {
            let dir = scratch_dir(&format!("dist-{tag}"));
            let g = graph();
            let runtime = Runtime::new(EngineConfig::unscaled()).expect("runtime");
            let bound = runtime.bind(&g);
            let plan = spill_plan(&bound);

            let armed = fault::install(FaultPlan::new().disturb_every(disturbance));
            let report = serve_spilling(&bound, &plan[..1], &dir);
            drop(armed);
            // The disturbed write "succeeded" from the writer's side —
            // the damage is what recovery must diagnose.
            assert_eq!(report.spilled, vec![0]);

            let store = DirStore::open(&dir).expect("reopen");
            let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
            assert!(recovery.recovered.is_empty());
            assert_eq!(recovery.skipped.len(), 1);
            assert!(
                matches!(recovery.skipped[0].1, SimdxError::CheckpointCorrupt { .. }),
                "{tag}: typed corruption, got {:?}",
                recovery.skipped[0].1
            );
            // Store still usable: a clean re-spill of the same ticket
            // overwrites the damaged blob and recovers.
            let healed = serve_spilling(&bound, &plan[..1], &dir);
            assert_eq!(healed.spilled, vec![0]);
            let recovery = QueryPool::recover(&bound, Bfs::new(0), &store).expect("recover");
            assert_eq!(recovery.completed(), 1);
            assert!(recovery.skipped.is_empty());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
