//! The strided filter baseline (§8).
//!
//! Enterprise/iBFS-style frontier generation: each thread scans a
//! *strided* slice of the metadata array (thread `t` inspects vertices
//! `t, t + T, t + 2T, ...`). The output is the same sorted,
//! duplicate-free list the ballot filter produces, but every load is
//! its own memory transaction, so the scan "performs up to 16× worse
//! than ballot filter" (§8). We reproduce exactly that cost difference
//! while the functional output stays identical.

use crate::acc::AccProgram;
use simdx_gpu::{Cost, GpuExecutor, KernelDesc, SchedUnit, WARP_SIZE};
use simdx_graph::VertexId;

/// Scans metadata with strided per-thread addressing. Functionally
/// identical to [`crate::filters::ballot::scan`]; cost-wise every lane
/// load is uncoalesced.
pub fn scan<P: AccProgram>(
    program: &P,
    curr: &[P::Meta],
    prev: &[P::Meta],
    executor: &mut GpuExecutor,
    kernel: &KernelDesc,
    launch: bool,
) -> Vec<VertexId> {
    assert_eq!(curr.len(), prev.len(), "metadata arrays must be parallel");
    let n = curr.len();
    let mut active = Vec::with_capacity(64);
    for v in 0..n {
        if program.active(v as VertexId, &curr[v], &prev[v]) {
            active.push(v as VertexId);
        }
    }

    // Cost: same warp count as ballot, but the 64 lane loads per warp
    // are scattered — a full transaction per element instead of a
    // coalesced amortized load.
    let warps = n.div_ceil(WARP_SIZE) as u64;
    let tasks: Vec<Cost> = (0..warps)
        .map(|_| Cost {
            compute_ops: 3 * WARP_SIZE as u64,
            random_reads: 2 * WARP_SIZE as u64,
            writes: 1,
            width: WARP_SIZE as u64,
            ..Cost::default()
        })
        .collect();
    executor.run_kernel(kernel, SchedUnit::Warp, &tasks, launch);
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CombineKind;
    use simdx_gpu::DeviceSpec;
    use simdx_graph::{Graph, Weight};

    struct Diff;

    impl AccProgram for Diff {
        type Meta = u32;
        type Update = u32;

        fn name(&self) -> &'static str {
            "diff"
        }

        fn combine_kind(&self) -> CombineKind {
            CombineKind::Vote
        }

        fn init(&self, _g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
            unreachable!()
        }

        fn compute(
            &self,
            _s: VertexId,
            _d: VertexId,
            _w: Weight,
            _ms: &u32,
            _md: &u32,
        ) -> Option<u32> {
            None
        }

        fn combine(&self, a: u32, _b: u32) -> u32 {
            a
        }

        fn apply(&self, _v: VertexId, _c: &u32, _u: u32) -> Option<u32> {
            None
        }
    }

    #[test]
    fn output_matches_ballot_filter() {
        let mut ex = GpuExecutor::new(DeviceSpec::k40());
        let k = KernelDesc::new("taskmgmt", 24);
        let prev = vec![0u32; 200];
        let mut curr = prev.clone();
        for v in [1usize, 63, 64, 199] {
            curr[v] = 9;
        }
        let strided_list = scan(&Diff, &curr, &prev, &mut ex, &k, false);
        let ballot_list = crate::filters::ballot::scan(&Diff, &curr, &prev, &mut ex, &k, false);
        assert_eq!(strided_list, ballot_list);
    }

    #[test]
    fn strided_scan_is_an_order_of_magnitude_slower() {
        let k = KernelDesc::new("taskmgmt", 24);
        let meta = vec![0u32; 64 * 1024];
        let mut ex_b = GpuExecutor::new(DeviceSpec::k40());
        crate::filters::ballot::scan(&Diff, &meta, &meta, &mut ex_b, &k, false);
        let mut ex_s = GpuExecutor::new(DeviceSpec::k40());
        scan(&Diff, &meta, &meta, &mut ex_s, &k, false);
        let ratio = ex_s.stats().total_cycles as f64 / ex_b.stats().total_cycles as f64;
        // §8: "up to 16× worse". The model lands near the raw
        // transaction-count ratio; allow a generous band around it.
        assert!(ratio > 3.0, "strided/ballot ratio too small: {ratio}");
        assert!(ratio < 64.0, "strided/ballot ratio too large: {ratio}");
    }
}
