//! Offline stub for the `serde` derive macros.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` on
//! plain-old-data structs; nothing serializes through serde (JSON
//! artifacts such as `BENCH_engine.json` are written by hand). In an
//! offline build environment the real crate is unreachable, so these
//! derives expand to nothing — keeping the seed sources untouched while
//! making the workspace self-contained. See `crates/compat/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
