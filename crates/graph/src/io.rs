//! Graph I/O: a compact binary CSR codec and a text edge-list parser.
//!
//! The binary format lets the bench harness cache generated datasets
//! between runs; the text parser accepts the whitespace-separated
//! `src dst [weight]` format used by SNAP and GTgraph dumps.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::error::GraphError;
use crate::{EdgeIdx, VertexId, Weight};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic prefix of the binary CSR format.
pub const MAGIC: u32 = 0x5349_4D58; // "SIMX"
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Errors produced while decoding graph data.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input is shorter than the declared payload.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// A structural invariant does not hold (e.g. unsorted offsets).
    Corrupt(&'static str),
    /// Text parse failure with a line number.
    Parse { line: usize, what: &'static str },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "input truncated"),
            Self::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            Self::BadVersion(v) => write!(f, "unsupported version {v}"),
            Self::Corrupt(w) => write!(f, "corrupt payload: {w}"),
            Self::Parse { line, what } => write!(f, "parse error at line {line}: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a CSR into the binary format.
pub fn encode_csr(csr: &Csr) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        24 + csr.offsets().len() * 8
            + csr.targets().len() * 4
            + csr.weights().map_or(0, |w| w.len() * 4),
    );
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(csr.num_vertices());
    buf.put_u8(u8::from(csr.is_weighted()));
    buf.put_u64_le(csr.num_edges());
    for &o in csr.offsets() {
        buf.put_u64_le(o);
    }
    for &t in csr.targets() {
        buf.put_u32_le(t);
    }
    if let Some(ws) = csr.weights() {
        for &w in ws {
            buf.put_u32_le(w);
        }
    }
    buf.freeze()
}

/// Decodes a CSR from the binary format.
pub fn decode_csr(mut data: &[u8]) -> Result<Csr, DecodeError> {
    if data.remaining() < 21 {
        return Err(DecodeError::Truncated);
    }
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let n = data.get_u32_le() as usize;
    let weighted = data.get_u8() != 0;
    let m = data.get_u64_le() as usize;

    let need = (n + 1) * 8 + m * 4 + if weighted { m * 4 } else { 0 };
    if data.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u64_le() as EdgeIdx);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(data.get_u32_le() as VertexId);
    }
    let weights = if weighted {
        let mut ws = Vec::with_capacity(m);
        for _ in 0..m {
            ws.push(data.get_u32_le() as Weight);
        }
        Some(ws)
    } else {
        None
    };

    // The checked constructor validates every structural invariant and
    // wraps the decoded arrays in place — no O(E) edge-list rebuild.
    Csr::try_new(offsets, targets, weights).map_err(|err| {
        DecodeError::Corrupt(match err {
            GraphError::OffsetEndpoints { .. } => "offset endpoints",
            GraphError::NonMonotonicOffsets { .. } => "offsets not monotone",
            GraphError::TargetOutOfRange { .. } => "target out of range",
            GraphError::WeightsLengthMismatch { .. } => "weights not parallel to targets",
            GraphError::EdgeCountOverflow { .. } => "offset overflow",
            _ => "invalid csr payload",
        })
    })
}

/// Parses a whitespace-separated `src dst [weight]` edge list. Lines
/// starting with `#` or `%` are comments; blank lines are skipped.
pub fn parse_edge_list(text: &str) -> Result<EdgeList, DecodeError> {
    let mut edges = Vec::new();
    let mut weights: Vec<Weight> = Vec::new();
    let mut any_weight = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what| -> Result<u64, DecodeError> {
            tok.ok_or(DecodeError::Parse {
                line: lineno + 1,
                what,
            })?
            .parse::<u64>()
            .map_err(|_| DecodeError::Parse {
                line: lineno + 1,
                what,
            })
        };
        let s = parse(it.next(), "source")? as VertexId;
        let d = parse(it.next(), "destination")? as VertexId;
        match it.next() {
            Some(tok) => {
                let w = tok.parse::<Weight>().map_err(|_| DecodeError::Parse {
                    line: lineno + 1,
                    what: "weight",
                })?;
                if !any_weight && !edges.is_empty() {
                    return Err(DecodeError::Parse {
                        line: lineno + 1,
                        what: "mixed weighted/unweighted rows",
                    });
                }
                any_weight = true;
                weights.push(w);
            }
            None if any_weight => {
                return Err(DecodeError::Parse {
                    line: lineno + 1,
                    what: "mixed weighted/unweighted rows",
                })
            }
            None => {}
        }
        edges.push((s, d));
    }
    Ok(if any_weight {
        let n = edges.iter().map(|&(s, d)| s.max(d) + 1).max().unwrap_or(0);
        EdgeList::from_weighted(n, edges, weights)
    } else {
        EdgeList::from_pairs(edges)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr(weighted: bool) -> Csr {
        let el = if weighted {
            EdgeList::from_weighted(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], vec![1, 2, 3, 4])
        } else {
            EdgeList::from_pairs(vec![(0, 1), (0, 2), (1, 3), (2, 3)])
        };
        Csr::from_edge_list(&el)
    }

    #[test]
    fn roundtrip_unweighted() {
        let csr = sample_csr(false);
        let decoded = decode_csr(&encode_csr(&csr)).expect("decode");
        assert_eq!(decoded, csr);
    }

    #[test]
    fn roundtrip_weighted() {
        let csr = sample_csr(true);
        let decoded = decode_csr(&encode_csr(&csr)).expect("decode");
        assert_eq!(decoded, csr);
    }

    #[test]
    fn truncated_input_rejected() {
        let data = encode_csr(&sample_csr(false));
        assert_eq!(decode_csr(&data[..10]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode_csr(&sample_csr(false)).to_vec();
        data[0] ^= 0xFF;
        assert!(matches!(decode_csr(&data), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn corrupt_target_rejected() {
        let csr = sample_csr(false);
        let mut data = encode_csr(&csr).to_vec();
        // Last 4 bytes are the final target; make it out of range.
        let len = data.len();
        data[len - 4..].copy_from_slice(&100u32.to_le_bytes());
        assert_eq!(
            decode_csr(&data),
            Err(DecodeError::Corrupt("target out of range"))
        );
    }

    #[test]
    fn parse_text_with_comments() {
        let text = "# comment\n0 1\n1 2\n\n% another\n2 0\n";
        let el = parse_edge_list(text).expect("parse");
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_weighted_text() {
        let el = parse_edge_list("0 1 5\n1 2 9\n").expect("parse");
        assert_eq!(el.weights(), Some(&[5, 9][..]));
    }

    #[test]
    fn parse_mixed_rows_rejected() {
        let err = parse_edge_list("0 1 5\n1 2\n").unwrap_err();
        assert!(matches!(err, DecodeError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_garbage_rejected() {
        let err = parse_edge_list("zero one\n").unwrap_err();
        assert!(matches!(err, DecodeError::Parse { line: 1, .. }));
    }
}
