//! Concurrency half of the determinism contract: queries served over
//! one shared [`BoundGraph`] — raw `std::thread` fan-out and the
//! [`QueryPool`] front-end alike — must stay **bit-identical** to a
//! fresh one-shot engine per query, no matter what runs beside them.
//!
//! The suite covers the four ways concurrency could break that:
//!
//! * plain interleaving — N threads × M queries over the shared core
//!   vs. solo baselines, across {exec mode} × {frontier repr} ×
//!   {push strategy};
//! * supervision cross-talk — a cancelled or deadline-expired query
//!   serving next to clean peers must abort *alone*;
//! * admission control — a full bounded queue under
//!   [`AdmissionPolicy::Reject`] sheds load deterministically and
//!   never corrupts the queries it did admit;
//! * fault containment (`--features fault-inject`) — a worker panic
//!   injected mid-stream poisons only its own leased pool: exactly one
//!   outcome fails typed, every peer stays bit-equal, and the session
//!   serves the failed seed cleanly afterwards.
//!
//! Fault state is process-global, so every test body holds
//! [`TEST_LOCK`]: a clean test racing the armed plan would absorb the
//! single injected panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use simdx::algos::{Bfs, Sssp};
use simdx::core::jit::ActivationLog;
use simdx::core::prelude::*;
use simdx::graph::gen::Rmat;
use simdx::graph::{weights, Graph, VertexId, Weight};
use simdx_gpu::executor::ExecutorStats;

/// Serializes the test bodies in this binary (see the module docs).
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything that must match bit for bit.
#[derive(Debug, PartialEq)]
struct Fingerprint<M: PartialEq + std::fmt::Debug> {
    meta: Vec<M>,
    iterations: u32,
    stats: ExecutorStats,
    log: ActivationLog,
}

fn fingerprint<M: PartialEq + std::fmt::Debug>(r: RunResult<M>) -> Fingerprint<M> {
    Fingerprint {
        meta: r.meta,
        iterations: r.report.iterations,
        stats: r.report.stats,
        log: r.report.log,
    }
}

/// The solo baseline: a fresh runtime and bind serving one query.
fn solo<P: SourcedProgram>(
    make: &impl Fn(u32) -> P,
    seed: u32,
    g: &Graph,
    cfg: &EngineConfig,
) -> Fingerprint<P::Meta>
where
    P::Meta: PartialEq + std::fmt::Debug,
{
    let runtime = Runtime::new(cfg.clone()).expect("runtime");
    let bound = runtime.bind(g);
    fingerprint(bound.run(make(seed)).execute().expect("solo run"))
}

/// {exec} × {frontier repr} × {push strategy} (push only varies the
/// parallel cells: a serial run has a single shard either way).
fn config_matrix() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for exec in [ExecMode::Serial, ExecMode::Parallel { threads: 3 }] {
        let strategies: &[PushStrategy] = match exec {
            ExecMode::Serial => &[PushStrategy::Grid],
            ExecMode::Parallel { .. } => &[PushStrategy::Scan, PushStrategy::Grid],
        };
        for &push in strategies {
            for repr in [FrontierRepr::List, FrontierRepr::Bitmap] {
                out.push((
                    format!("{}/{}/{}", exec.label(), repr.label(), push.label()),
                    EngineConfig::default()
                        .with_exec(exec)
                        .with_frontier(repr)
                        .with_push(push),
                ));
            }
        }
    }
    out
}

fn rmat_graph() -> Graph {
    Graph::directed_from_edges(Rmat::gtgraph(11, 8).generate(5))
}

fn weighted_rmat_graph() -> Graph {
    Graph::directed_from_edges(weights::assign_default_weights(
        &Rmat::gtgraph(11, 8).generate(5),
        9,
    ))
}

/// N plain threads × M queries each, all over ONE bound graph — the
/// exact usage the pre-fix session API forbade (`RefCell` thread
/// confinement). Every result must match a solo baseline bit for bit.
#[test]
fn thread_fanout_is_bit_equal_to_solo_baselines() {
    let _guard = lock();
    const THREADS: usize = 4;
    let g = weighted_rmat_graph();
    let seeds: Vec<u32> = vec![0, 5, 9, 0, 13, 2];
    for (label, cfg) in config_matrix() {
        let baselines: Vec<_> = seeds
            .iter()
            .map(|&s| solo(&Sssp::new, s, &g, &cfg))
            .collect();
        let runtime = Runtime::new(cfg.clone()).expect("runtime");
        let bound = runtime.bind(&g);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (bound, seeds, baselines, label) = (&bound, &seeds, &baselines, &label);
                scope.spawn(move || {
                    // Stagger the seed order per thread so concurrent
                    // queries overlap different workloads.
                    for i in 0..seeds.len() {
                        let at = (i + t) % seeds.len();
                        let got = fingerprint(
                            bound
                                .run(Sssp::new(seeds[at]))
                                .execute()
                                .expect("concurrent run"),
                        );
                        assert_eq!(
                            got, baselines[at],
                            "{label}: thread {t} seed {} diverged under concurrency",
                            seeds[at]
                        );
                    }
                });
            }
        });
    }
}

/// The `QueryPool` front-end serves the same bits: every outcome in
/// the report equals the solo baseline of its seed, every ticket slot
/// is filled in order, and the closed loop accounts its batching.
#[test]
fn query_pool_serves_bit_equal_outcomes() {
    let _guard = lock();
    let g = rmat_graph();
    let seeds: Vec<u32> = vec![0, 3, 7, 11, 0, 5, 9, 2];
    for (label, cfg) in config_matrix() {
        let baselines: Vec<_> = seeds
            .iter()
            .map(|&s| solo(&Bfs::new, s, &g, &cfg))
            .collect();
        let runtime = Runtime::new(cfg.clone()).expect("runtime");
        let bound = runtime.bind(&g);
        let report = QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default().workers(3).batch_max(2),
            |client| {
                for &seed in &seeds {
                    let ticket = client.submit(QueryRequest::new(seed))?;
                    assert!(ticket.index() < seeds.len());
                }
                Ok(())
            },
        )
        .expect("serve");
        assert_eq!(report.outcomes.len(), seeds.len(), "{label}");
        assert_eq!(report.completed(), seeds.len(), "{label}");
        assert!(report.batches as usize <= seeds.len(), "{label}");
        assert!(report.queries_per_sec() > 0.0, "{label}");
        assert!(report.latency_percentile(99.0) >= report.latency_percentile(50.0));
        for (i, (outcome, baseline)) in report.outcomes.iter().zip(&baselines).enumerate() {
            assert_eq!(outcome.seed, seeds[i], "{label}: ticket order broken");
            let got = outcome.result.as_ref().expect("served query");
            assert_eq!(
                (&got.meta, got.report.iterations, &got.report.log),
                (&baseline.meta, baseline.iterations, &baseline.log),
                "{label}: served seed {} diverged from solo baseline",
                seeds[i]
            );
        }
    }
}

/// Supervision is per query: a pre-cancelled token and a zero deadline
/// abort exactly their own queries — typed, with progress — while the
/// clean peers in the same serve call stay bit-equal.
#[test]
fn cancellation_and_deadlines_abort_only_their_own_query() {
    let _guard = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default().with_exec(ExecMode::Parallel { threads: 2 });
    let baseline = solo(&Bfs::new, 0, &g, &cfg);
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let doomed = CancelToken::new();
    doomed.cancel();
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default().workers(2),
        |client| {
            client.submit(QueryRequest::new(0))?;
            client.submit(QueryRequest::new(0).cancel_token(doomed.clone()))?;
            client.submit(QueryRequest::new(0).deadline(Duration::ZERO))?;
            client.submit(QueryRequest::new(0))?;
            Ok(())
        },
    )
    .expect("serve");
    assert_eq!(report.outcomes.len(), 4);
    match &report.outcomes[1].result {
        Err(SimdxError::Cancelled { .. }) => {}
        other => panic!("cancelled query: {other:?}"),
    }
    match &report.outcomes[2].result {
        Err(SimdxError::DeadlineExceeded { .. }) => {}
        other => panic!("deadline query: {other:?}"),
    }
    for &clean in &[0usize, 3] {
        let got = report.outcomes[clean].result.as_ref().expect("clean peer");
        assert_eq!(
            (&got.meta, got.report.iterations, &got.report.log),
            (&baseline.meta, baseline.iterations, &baseline.log),
            "peer #{clean} was disturbed by a neighbouring abort"
        );
    }
    // The session is untouched: the same seed still serves bit-equal.
    let after = fingerprint(bound.run(Bfs::new(0)).execute().expect("after"));
    assert_eq!(after, baseline);
}

/// A BFS-by-levels program whose `init` parks on a shared gate: while
/// one query holds the lone serving thread, the bounded queue fills
/// deterministically. Results are plain BFS levels, so the admitted
/// queries still have an exact expected answer.
#[derive(Clone)]
struct GatedLevels {
    src: VertexId,
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl AccProgram for GatedLevels {
    type Meta = u32;
    type Update = u32;
    fn name(&self) -> &'static str {
        "gated-levels"
    }
    fn combine_kind(&self) -> CombineKind {
        CombineKind::Vote
    }
    fn init(&self, g: &Graph) -> (Vec<u32>, Vec<VertexId>) {
        self.entered.store(true, Ordering::SeqCst);
        while !self.release.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let mut m = vec![u32::MAX; g.num_vertices() as usize];
        m[self.src as usize] = 0;
        (m, vec![self.src])
    }
    fn compute(&self, _s: VertexId, _d: VertexId, _w: Weight, ms: &u32, md: &u32) -> Option<u32> {
        (*ms != u32::MAX && *md == u32::MAX).then(|| ms + 1)
    }
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn apply(&self, _v: VertexId, c: &u32, u: u32) -> Option<u32> {
        (u < *c).then_some(u)
    }
}

impl SourcedProgram for GatedLevels {
    fn with_source(mut self, src: VertexId) -> Self {
        self.src = src;
        self
    }
}

/// [`AdmissionPolicy::Reject`] sheds load deterministically: with one
/// serving thread parked on the gate and a depth-1 queue already
/// holding a request, every further submission is `Overloaded` — and
/// the two admitted queries still complete exactly.
#[test]
fn reject_admission_sheds_load_without_corrupting_admitted_queries() {
    let _guard = lock();
    let g = rmat_graph();
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let program = GatedLevels {
        src: 0,
        entered: entered.clone(),
        release: release.clone(),
    };
    let runtime = Runtime::new(EngineConfig::default()).expect("runtime");
    let bound = runtime.bind(&g);
    let baseline = fingerprint({
        release.store(true, Ordering::SeqCst);
        let r = bound.run(program.clone()).execute().expect("baseline");
        release.store(false, Ordering::SeqCst);
        entered.store(false, Ordering::SeqCst);
        r
    });
    let report = QueryPool::serve(
        &bound,
        program,
        ServiceConfig::default()
            .workers(1)
            .queue_depth(1)
            .batch_max(1)
            .admission(AdmissionPolicy::Reject),
        |client| {
            // First query: picked up by the lone serving thread, which
            // parks on the gate inside `init`.
            client.submit(QueryRequest::new(0))?;
            while !entered.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // Second query: admitted into the depth-1 queue.
            let queued = client.submit(QueryRequest::new(0))?;
            assert_eq!(queued.index(), 1);
            assert_eq!(client.queued(), 1);
            // Every further submission must shed.
            for _ in 0..3 {
                match client.submit(QueryRequest::new(0)) {
                    Err(SimdxError::Overloaded {
                        capacity: 1,
                        depth: 1,
                    }) => {}
                    other => panic!("expected Overloaded, got {other:?}"),
                }
            }
            release.store(true, Ordering::SeqCst);
            Ok(())
        },
    )
    .expect("serve");
    // Exactly the two admitted queries ran, both bit-equal.
    assert_eq!(report.outcomes.len(), 2);
    for outcome in &report.outcomes {
        let got = outcome.result.as_ref().expect("admitted query");
        assert_eq!(
            (&got.meta, got.report.iterations, &got.report.log),
            (&baseline.meta, baseline.iterations, &baseline.log),
            "admitted query diverged after load shedding"
        );
    }
}

/// `CloseMode::Drain` from inside the producer: everything already
/// admitted completes bit-equal, and every later submission fails with
/// a typed error instead of being silently dropped.
#[test]
fn drain_close_finishes_admitted_work_and_rejects_new_submissions() {
    let _guard = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default();
    let baseline = solo(&Bfs::new, 0, &g, &cfg);
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default().workers(2),
        |client| {
            for _ in 0..4 {
                client.submit(QueryRequest::new(0))?;
            }
            client.close(CloseMode::Drain);
            match client.submit(QueryRequest::new(0)) {
                Err(SimdxError::InvalidQuery { reason }) => {
                    assert!(reason.contains("closed"), "reason: {reason}");
                }
                other => panic!("submit after close must fail typed, got {other:?}"),
            }
            Ok(())
        },
    )
    .expect("serve");
    assert_eq!(report.outcomes.len(), 4);
    assert_eq!(report.completed(), 4, "drain finishes every admitted query");
    for outcome in &report.outcomes {
        let got = outcome.result.as_ref().expect("drained query");
        assert_eq!(
            (&got.meta, got.report.iterations, &got.report.log),
            (&baseline.meta, baseline.iterations, &baseline.log),
            "drained query diverged"
        );
    }
}

/// `CloseMode::Abort` with checkpointing armed: the in-flight query
/// aborts at its next supervision check and hands its boundary snapshot
/// back through the outcome (resumable to a bit-equal completion), and
/// queued-but-unserved queries come back as zero-progress, zero-attempt
/// cancellations — every admitted ticket still gets an outcome.
#[test]
fn abort_close_cancels_outstanding_queries_and_hands_back_checkpoints() {
    let _guard = lock();
    let g = rmat_graph();
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let program = GatedLevels {
        src: 0,
        entered: entered.clone(),
        release: release.clone(),
    };
    let runtime = Runtime::new(EngineConfig::default()).expect("runtime");
    let bound = runtime.bind(&g);
    let baseline = fingerprint({
        release.store(true, Ordering::SeqCst);
        let r = bound.run(program.clone()).execute().expect("baseline");
        release.store(false, Ordering::SeqCst);
        entered.store(false, Ordering::SeqCst);
        r
    });
    let report = QueryPool::serve(
        &bound,
        program.clone(),
        ServiceConfig::default()
            .workers(1)
            .queue_depth(8)
            .checkpoint_aborts(true),
        |client| {
            // First query: picked up by the lone serving thread, which
            // parks on the gate inside `init`.
            client.submit(QueryRequest::new(0))?;
            while !entered.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // Two more queries queue behind it, then the pool aborts.
            client.submit(QueryRequest::new(0))?;
            client.submit(QueryRequest::new(0))?;
            client.close(CloseMode::Abort);
            assert!(
                matches!(
                    client.submit(QueryRequest::new(0)),
                    Err(SimdxError::InvalidQuery { .. })
                ),
                "submit after abort-close must fail typed"
            );
            release.store(true, Ordering::SeqCst);
            Ok(())
        },
    )
    .expect("serve");
    assert_eq!(report.outcomes.len(), 3, "every admitted ticket reports");
    // The in-flight query: cancelled at its first boundary, snapshot
    // handed back.
    let inflight = &report.outcomes[0];
    assert!(
        matches!(inflight.result, Err(SimdxError::Cancelled { .. })),
        "in-flight query aborts as Cancelled, got {:?}",
        inflight.result
    );
    assert_eq!(inflight.attempts, 1);
    let cp = inflight.checkpoint.clone().expect("snapshot handed back");
    let resumed = fingerprint(
        bound
            .resume(program, cp)
            .execute()
            .expect("handed-back checkpoint resumes"),
    );
    assert_eq!(resumed, baseline, "resumed abort-close query diverged");
    // The queued-but-unserved queries: zero progress, zero attempts.
    for outcome in &report.outcomes[1..] {
        match &outcome.result {
            Err(SimdxError::Cancelled { progress }) => {
                assert_eq!(progress.iterations, 0);
                assert_eq!(progress.edges_examined, 0);
            }
            other => panic!("unserved query must cancel, got {other:?}"),
        }
        assert_eq!(outcome.attempts, 0);
        assert!(outcome.checkpoint.is_none());
    }
}

/// Repeated injected panics trip the circuit breaker: after
/// `breaker_threshold` consecutive worker-panic outcomes the pool sheds
/// further submissions with [`SimdxError::Unavailable`] carrying a
/// retry-after hint bounded by the cooldown.
#[cfg(feature = "fault-inject")]
#[test]
fn breaker_opens_under_repeated_panics_and_sheds() {
    use simdx::core::fault::{self, FaultPlan, FaultSite};

    let _guard = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_direction(DirectionPolicy::FixedPush);
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let cooldown = Duration::from_secs(30);
    // Arm a panic on every one of the first 20 push-sweep hits so each
    // admitted query fails — the breaker's consecutive count can only
    // grow, making the open state deterministic regardless of timing.
    let mut plan = FaultPlan::new();
    for nth in 1..=20 {
        plan = plan.panic_at(FaultSite::Push, nth);
    }
    let shed = {
        let _armed = fault::install(plan);
        let mut shed = None;
        QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default()
                .workers(1)
                .batch_max(1)
                .breaker(2, cooldown),
            |client| {
                client.submit(QueryRequest::new(0))?;
                client.submit(QueryRequest::new(0))?;
                // Both queries panic; once their outcomes land the
                // breaker is open and every further submission sheds.
                for _ in 0..2000 {
                    match client.submit(QueryRequest::new(0)) {
                        Err(SimdxError::Unavailable { retry_after }) => {
                            shed = Some(retry_after);
                            break;
                        }
                        Ok(_) => std::thread::sleep(Duration::from_millis(5)),
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
                Ok(())
            },
        )
        .expect("serve");
        shed
    };
    let retry_after = shed.expect("breaker never opened");
    assert!(
        retry_after <= cooldown,
        "retry-after hint must be bounded by the cooldown, got {retry_after:?}"
    );
    // The breaker is per-serve state: a fresh serve call admits again.
    let report = QueryPool::serve(
        &bound,
        Bfs::new(0),
        ServiceConfig::default().breaker(2, cooldown),
        |client| client.submit(QueryRequest::new(0)).map(|_| ()),
    )
    .expect("fresh serve");
    assert_eq!(report.completed(), 1, "disarmed session serves cleanly");
}

/// A worker panic injected mid-stream (`--features fault-inject`)
/// fails exactly one query with a typed error, poisons only that
/// query's leased pool, leaves every concurrent peer bit-equal, and
/// the session serves the failed seed cleanly on the next call.
#[cfg(feature = "fault-inject")]
#[test]
fn injected_worker_panic_spares_concurrent_peers() {
    use simdx::core::fault::{self, FaultPlan, FaultSite};

    let _guard = lock();
    let g = rmat_graph();
    // Parallel push, pinned: the armed site is on every query's path.
    let cfg = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_direction(DirectionPolicy::FixedPush);
    let baseline = solo(&Bfs::new, 0, &g, &cfg);
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let report = {
        // `panic_on` fires exactly once process-wide, on whichever
        // serving thread reaches the push sweep first.
        let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::Push));
        QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default().workers(3).batch_max(2),
            |client| {
                for _ in 0..9 {
                    client.submit(QueryRequest::new(0))?;
                }
                Ok(())
            },
        )
        .expect("serve survives an injected panic")
    };
    assert_eq!(report.outcomes.len(), 9);
    let mut panics = 0;
    for outcome in &report.outcomes {
        match &outcome.result {
            Err(SimdxError::WorkerPanicked { payload, .. }) => {
                assert!(payload.contains("injected"), "payload: {payload}");
                panics += 1;
            }
            Ok(got) => assert_eq!(
                (&got.meta, got.report.iterations, &got.report.log),
                (&baseline.meta, baseline.iterations, &baseline.log),
                "peer of the panicked query diverged"
            ),
            Err(other) => panic!("unexpected error beside the panic: {other:?}"),
        }
    }
    assert_eq!(panics, 1, "the single armed fault must fail one query");
    // The poisoned pool was discarded at lease check-in; the very next
    // query over the same session is clean and bit-equal.
    let after = fingerprint(bound.run(Bfs::new(0)).execute().expect("rerun"));
    assert_eq!(after, baseline);
}

/// The same 9-query matrix with `RetryPolicy { max_attempts: 2 }`: the
/// injected mid-stream worker panic is absorbed by a checkpointed
/// retry, so **zero** queries fail — the hit query reports two
/// attempts, its peers one, and every result stays bit-equal to the
/// solo baseline.
#[cfg(feature = "fault-inject")]
#[test]
fn retry_policy_absorbs_an_injected_worker_panic() {
    use simdx::core::fault::{self, FaultPlan, FaultSite};

    let _guard = lock();
    let g = rmat_graph();
    let cfg = EngineConfig::default()
        .with_exec(ExecMode::Parallel { threads: 3 })
        .with_direction(DirectionPolicy::FixedPush);
    let baseline = solo(&Bfs::new, 0, &g, &cfg);
    let runtime = Runtime::new(cfg).expect("runtime");
    let bound = runtime.bind(&g);
    let report = {
        let _armed = fault::install(FaultPlan::new().panic_on(FaultSite::Push));
        QueryPool::serve(
            &bound,
            Bfs::new(0),
            ServiceConfig::default()
                .workers(3)
                .batch_max(2)
                .retry(RetryPolicy::default().max_attempts(2)),
            |client| {
                for _ in 0..9 {
                    client.submit(QueryRequest::new(0))?;
                }
                Ok(())
            },
        )
        .expect("serve")
    };
    assert_eq!(report.outcomes.len(), 9);
    assert_eq!(report.completed(), 9, "retries must leave zero failures");
    let mut retried = 0;
    for outcome in &report.outcomes {
        let got = outcome.result.as_ref().expect("no failed queries");
        assert_eq!(
            (&got.meta, got.report.iterations, &got.report.log),
            (&baseline.meta, baseline.iterations, &baseline.log),
            "retried or peer query diverged from the solo baseline"
        );
        assert!(outcome.checkpoint.is_none(), "successes carry no snapshot");
        match outcome.attempts {
            1 => {}
            2 => retried += 1,
            n => panic!("attempts capped at 2, got {n}"),
        }
    }
    assert_eq!(retried, 1, "exactly the hit query takes a second attempt");
}
