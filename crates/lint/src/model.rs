//! Bounded deterministic-interleaving enumeration.
//!
//! [`Schedules`] enumerates, in lexicographic order, every interleaving
//! of `counts[i]` steps from each of N logical threads — i.e. all
//! distinct sequences over thread indices where thread `i` appears
//! exactly `counts[i]` times. The count of such sequences is the
//! multinomial coefficient `(Σcounts)! / Π(counts[i]!)`, so small step
//! vectors already give real coverage: `[3, 2, 2]` → 210 schedules.
//!
//! The harness in `tests/model_interleave.rs` replays each schedule
//! against the real `simdx_core` primitives (built with the `model`
//! feature so `crate::sync::atomic` routes through counting shims) and
//! asserts the scenario's invariants hold under **every** interleaving,
//! not just the ones the OS scheduler happens to produce.
//!
//! This is exhaustive enumeration over a bounded step budget — the
//! honest, dependency-free core of what `loom` does, without its state
//! reduction. Budgets are chosen so full enumeration stays cheap.

/// Lexicographic enumerator over all interleavings of per-thread step
/// counts. Yields each schedule as a `Vec<usize>` of thread indices.
pub struct Schedules {
    counts: Vec<usize>,
    current: Option<Vec<usize>>,
}

impl Schedules {
    pub fn new(counts: &[usize]) -> Self {
        let total: usize = counts.iter().sum();
        // First schedule in lexicographic order: thread 0's steps, then
        // thread 1's, … An all-zero budget yields one empty schedule.
        let mut first = Vec::with_capacity(total);
        for (tid, &n) in counts.iter().enumerate() {
            first.extend(std::iter::repeat_n(tid, n));
        }
        Self {
            counts: counts.to_vec(),
            current: Some(first),
        }
    }

    /// The number of schedules this enumerator will yield:
    /// `(Σcounts)! / Π(counts[i]!)`, computed without overflow by
    /// interleaving multiplies and divides.
    pub fn count(counts: &[usize]) -> u128 {
        let mut result: u128 = 1;
        let mut placed: u128 = 0;
        for &n in counts {
            for k in 1..=n as u128 {
                placed += 1;
                result = result * placed / k;
            }
        }
        result
    }
}

impl Iterator for Schedules {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.current.take()?;
        // Standard next-multiset-permutation: find the longest
        // non-increasing suffix, swap its predecessor with the smallest
        // element in the suffix greater than it, reverse the suffix.
        let mut next = cur.clone();
        let n = next.len();
        if n > 1 {
            let mut i = n - 1;
            while i > 0 && next[i - 1] >= next[i] {
                i -= 1;
            }
            if i > 0 {
                let pivot = i - 1;
                let mut j = n - 1;
                while next[j] <= next[pivot] {
                    j -= 1;
                }
                next.swap(pivot, j);
                next[i..].reverse();
                self.current = Some(next);
            }
        }
        debug_assert_eq!(
            {
                let mut seen = vec![0usize; self.counts.len()];
                for &t in &cur {
                    seen[t] += 1;
                }
                seen
            },
            self.counts,
            "schedule must use each thread's exact step budget"
        );
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn counts_match_the_multinomial() {
        assert_eq!(Schedules::count(&[1, 1]), 2);
        assert_eq!(Schedules::count(&[2, 2]), 6);
        assert_eq!(Schedules::count(&[3, 2, 2]), 210);
        assert_eq!(Schedules::count(&[1, 1, 1, 1]), 24);
        assert_eq!(Schedules::count(&[]), 1);
    }

    #[test]
    fn enumeration_is_exhaustive_and_duplicate_free() {
        let counts = [3, 2, 2];
        let all: Vec<_> = Schedules::new(&counts).collect();
        assert_eq!(all.len() as u128, Schedules::count(&counts));
        let distinct: BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(distinct.len(), all.len(), "no duplicate schedules");
        for s in &all {
            assert_eq!(s.len(), 7);
            assert_eq!(s.iter().filter(|&&t| t == 0).count(), 3);
            assert_eq!(s.iter().filter(|&&t| t == 1).count(), 2);
            assert_eq!(s.iter().filter(|&&t| t == 2).count(), 2);
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_lexicographic() {
        let a: Vec<_> = Schedules::new(&[2, 1]).collect();
        let b: Vec<_> = Schedules::new(&[2, 1]).collect();
        assert_eq!(a, b, "same input, same order, every run");
        assert_eq!(a, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn zero_budget_threads_and_empty_input_degenerate_cleanly() {
        let empty: Vec<_> = Schedules::new(&[]).collect();
        assert_eq!(empty, vec![Vec::<usize>::new()]);
        let zeros: Vec<_> = Schedules::new(&[0, 2, 0]).collect();
        assert_eq!(zeros, vec![vec![1, 1]]);
    }
}
