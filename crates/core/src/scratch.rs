//! Reusable per-iteration buffers for the engine loop.
//!
//! The seed engine allocated fresh `Vec`s for worklists, candidate
//! lists, task-cost vectors, the changed list and the dirty stamps on
//! every iteration — on iteration-heavy graphs (road networks, long
//! paths) the allocator dominated the host profile. [`IterScratch`]
//! owns all of those buffers for the lifetime of one `Engine::run` call;
//! every iteration clears in place and refills, and the parallel
//! backend's per-worker partitions live in [`WorkerScratch`] so the hot
//! path performs no allocation in steady state in either exec mode.

use crate::filters::ballot::WarpScanScratch;
use crate::frontier::{FrontierBitmap, ThreadBins, Worklists};
use simdx_gpu::Cost;
use simdx_graph::VertexId;

/// Destination-shard fences for parallel push, computed lazily once
/// per run from the pull-orientation degrees.
#[derive(Clone, Debug)]
pub(crate) struct PushFences {
    /// Vertex fences over `metadata_curr` (`threads + 1` entries). In
    /// bitmap mode the inner fences are rounded down to word (64)
    /// multiples so every shard covers whole bitmap words; in the
    /// chunked metadata layout they are rounded to 32-vertex chunk
    /// multiples so no shard splits a chunk (word alignment already
    /// implies chunk alignment).
    pub verts: Vec<u32>,
    /// The matching word fences over the changed-bitmap's backing
    /// words (empty in list mode).
    pub words: Vec<u32>,
}

/// One online-filter activation record, deferred by a parallel worker
/// and replayed into [`ThreadBins`] in deterministic order.
///
/// `key` is `(global task index, edge offset within the task)` — the
/// exact order in which the serial engine calls `ThreadBins::record`,
/// so sorting by `key` and replaying reproduces the serial bins (and
/// therefore the same overflow behaviour and the same concatenated
/// next-frontier) bit for bit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecordEntry {
    /// (task counter, edge offset) sort key.
    pub key: (u64, u32),
    /// Simulated-thread bin slot (`ThreadBins::record`'s first arg).
    pub slot: usize,
    /// Recorded vertex.
    pub v: VertexId,
}

/// Per-worker private buffers for one parallel region.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch<M> {
    /// Classification output (merged in worker order).
    pub lists: Worklists,
    /// Pull-candidate output (merged in worker order).
    pub cands: Vec<VertexId>,
    /// Task-cost output for task-partitioned kernels (charged via
    /// `run_kernel_parts` in worker order).
    pub tasks: Vec<Cost>,
    /// Vertices whose metadata first changed this iteration.
    pub changed: Vec<VertexId>,
    /// Deferred online-filter records.
    pub records: Vec<RecordEntry>,
    /// Push mode: per-task successful-apply counts `(task, applied)`,
    /// merged into the shared cost vector's `writes` fields.
    pub applied: Vec<(u32, u32)>,
    /// Pull mode: deferred metadata writes (disjoint vertices).
    pub writebacks: Vec<(VertexId, M)>,
    /// Ballot-scan partition output.
    pub warp: WarpScanScratch,
    /// Degree-sum partial.
    pub degree_sum: u64,
}

/// All buffers the engine loop reuses across iterations.
#[derive(Debug)]
pub(crate) struct IterScratch<M> {
    /// The iteration's three worklists.
    pub lists: Worklists,
    /// Pull-mode candidate list.
    pub cands: Vec<VertexId>,
    /// Shared task-cost vector (push mode and serial pull mode).
    pub tasks: Vec<Cost>,
    /// Task-management / candidate-sweep cost vector.
    pub mgmt_tasks: Vec<Cost>,
    /// Cached identical-cost vector for the pull-vote candidate scan
    /// (its length only depends on |V|, so it is built once).
    pub vote_scan_tasks: Vec<Cost>,
    /// Vertices whose metadata first changed this iteration (list
    /// mode).
    pub changed: Vec<VertexId>,
    /// Bitmap-mode changed set: bit `v` set iff `curr[v] != prev[v]`
    /// this iteration. Doubles as the ballot scan's occupancy and the
    /// push first-change dedup; drained (publish + clear) at the end
    /// of every iteration.
    pub changed_bits: FrontierBitmap,
    /// Bitmap-mode pull-candidate dedup (replaces the dirty stamps);
    /// drained into the sorted candidate list each aggregation-pull
    /// iteration.
    pub cand_bits: FrontierBitmap,
    /// Aggregation-pull dirty stamps, sized |V| once per run (list
    /// mode).
    pub dirty_stamp: Vec<u32>,
    /// Merged record list (sort + replay buffer).
    pub records: Vec<RecordEntry>,
    /// Online-filter thread bins (persistent, reshaped in place).
    pub bins: ThreadBins,
    /// Next-frontier buffer, swapped with the live frontier each
    /// iteration.
    pub next: Vec<VertexId>,
    /// Destination-shard fences for parallel push (computed lazily once
    /// per run from the pull-orientation degrees).
    pub push_bounds: Option<PushFences>,
    /// Per-worker partitions (len = worker count; 1 in serial mode).
    pub workers: Vec<WorkerScratch<M>>,
}

impl<M> IterScratch<M> {
    /// Creates scratch for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            lists: Worklists::default(),
            cands: Vec::new(),
            tasks: Vec::new(),
            mgmt_tasks: Vec::new(),
            vote_scan_tasks: Vec::new(),
            changed: Vec::new(),
            changed_bits: FrontierBitmap::default(),
            cand_bits: FrontierBitmap::default(),
            dirty_stamp: Vec::new(),
            records: Vec::new(),
            bins: ThreadBins::new(1, 0),
            next: Vec::new(),
            push_bounds: None,
            workers: (0..threads.max(1))
                .map(|_| WorkerScratch {
                    lists: Worklists::default(),
                    cands: Vec::new(),
                    tasks: Vec::new(),
                    changed: Vec::new(),
                    records: Vec::new(),
                    applied: Vec::new(),
                    writebacks: Vec::new(),
                    warp: WarpScanScratch::default(),
                    degree_sum: 0,
                })
                .collect(),
        }
    }
}
