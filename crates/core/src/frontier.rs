//! Worklists, degree classification and per-thread bins (§4).
//!
//! Step I of JIT task management classifies active vertices by degree
//! into three worklists; step II assigns a thread per small task, a warp
//! per medium task and a CTA per large task. During computation the
//! online filter records newly-activated vertices into bounded
//! *thread bins*; a bin overflow is the signal that flips the JIT
//! controller over to the ballot filter.

use simdx_gpu::SchedUnit;
use simdx_graph::csr::Csr;
use simdx_graph::VertexId;

/// Degree thresholds separating the three worklists.
///
/// §4: "we initialize the small, medium and large worklists to be warp
/// and block sizes (i.e., 32 and 128)", and performance is stable for
/// small/med in `[4, 128]` and med/large in `[128, 2048]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifyThresholds {
    /// Degrees `<= small_max` go to the small (Thread) list.
    pub small_max: u32,
    /// Degrees `<= med_max` go to the medium (Warp) list; larger ones to
    /// the large (CTA) list.
    pub med_max: u32,
}

impl Default for ClassifyThresholds {
    fn default() -> Self {
        Self {
            small_max: 32,
            med_max: 128,
        }
    }
}

impl ClassifyThresholds {
    /// The worklist for a vertex of degree `d`.
    pub fn classify(&self, d: u32) -> SchedUnit {
        if d <= self.small_max {
            SchedUnit::Thread
        } else if d <= self.med_max {
            SchedUnit::Warp
        } else {
            SchedUnit::Cta
        }
    }
}

/// The three active worklists of one iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Worklists {
    /// Vertices processed one-per-thread (small degrees).
    pub small: Vec<VertexId>,
    /// Vertices processed one-per-warp (medium degrees).
    pub med: Vec<VertexId>,
    /// Vertices processed one-per-CTA (large degrees).
    pub large: Vec<VertexId>,
}

impl Worklists {
    /// Builds worklists by classifying `active` against the degrees in
    /// `csr` (in the scan direction the next iteration will use).
    pub fn classify(active: &[VertexId], csr: &Csr, thresholds: ClassifyThresholds) -> Self {
        let mut lists = Self::default();
        lists.classify_into(active, csr, thresholds);
        lists
    }

    /// In-place [`Self::classify`]: clears the lists (keeping their
    /// capacity) and refills them — the zero-allocation path the engine
    /// scratch uses every iteration.
    pub fn classify_into(
        &mut self,
        active: &[VertexId],
        csr: &Csr,
        thresholds: ClassifyThresholds,
    ) {
        self.clear();
        for &v in active {
            match thresholds.classify(csr.degree(v)) {
                SchedUnit::Thread => self.small.push(v),
                SchedUnit::Warp => self.med.push(v),
                SchedUnit::Cta => self.large.push(v),
            }
        }
    }

    /// Clears all three lists, keeping capacity.
    pub fn clear(&mut self) {
        self.small.clear();
        self.med.clear();
        self.large.clear();
    }

    /// Appends another set of worklists (used to merge per-worker
    /// classification results in worker order, which reproduces the
    /// serial order because workers own contiguous chunks).
    pub fn append(&mut self, other: &Self) {
        self.small.extend_from_slice(&other.small);
        self.med.extend_from_slice(&other.med);
        self.large.extend_from_slice(&other.large);
    }

    /// Total entries across the three lists.
    pub fn len(&self) -> u64 {
        (self.small.len() + self.med.len() + self.large.len()) as u64
    }

    /// Whether every list is empty (BSP termination signal).
    pub fn is_empty(&self) -> bool {
        self.small.is_empty() && self.med.is_empty() && self.large.is_empty()
    }

    /// The list processed at the given granularity.
    pub fn list(&self, unit: SchedUnit) -> &[VertexId] {
        match unit {
            SchedUnit::Thread => &self.small,
            SchedUnit::Warp => &self.med,
            SchedUnit::Cta => &self.large,
        }
    }

    /// Iterates `(unit, list)` pairs in small→med→large order.
    pub fn iter_units(&self) -> impl Iterator<Item = (SchedUnit, &[VertexId])> {
        [
            (SchedUnit::Thread, self.small.as_slice()),
            (SchedUnit::Warp, self.med.as_slice()),
            (SchedUnit::Cta, self.large.as_slice()),
        ]
        .into_iter()
    }

    /// Sum of scan-direction degrees over all entries — the frontier
    /// workload volume used by the direction heuristic.
    pub fn degree_sum(&self, csr: &Csr) -> u64 {
        self.iter_units()
            .flat_map(|(_, l)| l.iter())
            .map(|&v| csr.degree(v) as u64)
            .sum()
    }
}

/// Bounded per-thread bins used by the online filter.
///
/// Each simulated GPU thread owns a bin of at most `threshold` slots
/// (the §4 overflow threshold, default 64). Recording into a full bin
/// raises the overflow flag instead of growing — exactly the behaviour
/// that forces the switch to the ballot filter.
#[derive(Clone, Debug)]
pub struct ThreadBins {
    bins: Vec<Vec<VertexId>>,
    threshold: usize,
    overflowed: bool,
    /// Records dropped because of overflow (kept for diagnostics; the
    /// ballot filter regenerates the full list so nothing is lost).
    dropped: u64,
}

impl ThreadBins {
    /// Creates `num_threads` empty bins with the given overflow
    /// threshold.
    pub fn new(num_threads: usize, threshold: usize) -> Self {
        Self {
            bins: vec![Vec::new(); num_threads.max(1)],
            threshold,
            overflowed: false,
            dropped: 0,
        }
    }

    /// Number of bins (simulated threads).
    pub fn num_threads(&self) -> usize {
        self.bins.len()
    }

    /// The overflow threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Records vertex `v` from simulated thread `thread`. Returns
    /// `false` (and sets the overflow flag) if the bin was full.
    pub fn record(&mut self, thread: usize, v: VertexId) -> bool {
        let idx = thread % self.bins.len();
        let bin = &mut self.bins[idx];
        if bin.len() >= self.threshold {
            self.overflowed = true;
            self.dropped += 1;
            return false;
        }
        bin.push(v);
        true
    }

    /// Whether any bin has overflowed.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Records dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total recorded entries across bins.
    pub fn total_recorded(&self) -> u64 {
        self.bins.iter().map(|b| b.len() as u64).sum()
    }

    /// Concatenates all bins in thread order (the prefix-scan
    /// concatenation of Fig. 4(b) line 20). The result may contain
    /// duplicates and is generally unsorted — the documented online
    /// filter trade-off (§4).
    pub fn concatenate(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.total_recorded() as usize);
        self.concatenate_into(&mut out);
        out
    }

    /// In-place [`Self::concatenate`] into a reused buffer (cleared
    /// first, capacity kept).
    pub fn concatenate_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        for bin in &self.bins {
            out.extend_from_slice(bin);
        }
    }

    /// Clears all bins and the overflow flag for the next iteration.
    pub fn clear(&mut self) {
        for bin in &mut self.bins {
            bin.clear();
        }
        self.overflowed = false;
        self.dropped = 0;
    }

    /// Reshapes to `num_threads` bins with `threshold` capacity and
    /// clears, reusing existing bin allocations (the engine calls this
    /// every iteration; growing/shrinking only moves empty `Vec`s).
    pub fn reset_to(&mut self, num_threads: usize, threshold: usize) {
        self.bins.resize_with(num_threads.max(1), Vec::new);
        self.threshold = threshold;
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdx_graph::EdgeList;

    fn star_csr(leaves: u32) -> Csr {
        Csr::from_edge_list(&EdgeList::from_pairs(
            (1..=leaves).map(|i| (0, i)).collect(),
        ))
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = ClassifyThresholds::default();
        assert_eq!(t.small_max, 32);
        assert_eq!(t.med_max, 128);
        assert_eq!(t.classify(1), SchedUnit::Thread);
        assert_eq!(t.classify(32), SchedUnit::Thread);
        assert_eq!(t.classify(33), SchedUnit::Warp);
        assert_eq!(t.classify(128), SchedUnit::Warp);
        assert_eq!(t.classify(129), SchedUnit::Cta);
    }

    #[test]
    fn classify_splits_by_degree() {
        let csr = star_csr(200);
        // Vertex 0 has degree 200 (large); leaves have degree 0 (small).
        let lists = Worklists::classify(&[0, 1, 2], &csr, ClassifyThresholds::default());
        assert_eq!(lists.large, vec![0]);
        assert_eq!(lists.small, vec![1, 2]);
        assert!(lists.med.is_empty());
        assert_eq!(lists.len(), 3);
        assert!(!lists.is_empty());
    }

    #[test]
    fn degree_sum_counts_scan_volume() {
        let csr = star_csr(200);
        let lists = Worklists::classify(&[0, 1], &csr, ClassifyThresholds::default());
        assert_eq!(lists.degree_sum(&csr), 200);
    }

    #[test]
    fn empty_worklists() {
        let lists = Worklists::default();
        assert!(lists.is_empty());
        assert_eq!(lists.len(), 0);
    }

    #[test]
    fn bins_record_until_threshold() {
        let mut bins = ThreadBins::new(2, 3);
        for i in 0..3 {
            assert!(bins.record(0, i));
        }
        assert!(!bins.overflowed());
        assert!(!bins.record(0, 99));
        assert!(bins.overflowed());
        assert_eq!(bins.dropped(), 1);
        // The other bin is unaffected.
        assert!(bins.record(1, 5));
        assert_eq!(bins.total_recorded(), 4);
    }

    #[test]
    fn concatenate_preserves_thread_order_with_duplicates() {
        let mut bins = ThreadBins::new(2, 8);
        bins.record(0, 7);
        bins.record(1, 3);
        bins.record(0, 7); // duplicate is kept — online filter semantics
        assert_eq!(bins.concatenate(), vec![7, 7, 3]);
    }

    #[test]
    fn clear_resets_overflow() {
        let mut bins = ThreadBins::new(1, 1);
        bins.record(0, 1);
        bins.record(0, 2);
        assert!(bins.overflowed());
        bins.clear();
        assert!(!bins.overflowed());
        assert_eq!(bins.total_recorded(), 0);
        assert_eq!(bins.dropped(), 0);
    }

    #[test]
    fn thread_index_wraps() {
        let mut bins = ThreadBins::new(4, 16);
        bins.record(7, 42); // 7 % 4 == 3
        assert_eq!(bins.concatenate(), vec![42]);
    }
}
