//! Warp-chunked metadata storage ([`MetadataStore`]).
//!
//! The engine keeps per-vertex metadata in a current/previous pair and
//! sweeps it constantly: the ballot filter compares every vertex each
//! scan, the pull-vote candidate sweep tests every vertex, and the
//! publish step copies changed entries. The seed stored both arrays as
//! plain `Vec<M>` and indexed them scalar-by-scalar — the top open
//! ROADMAP item since PR 1, because those sweeps are exactly the loops
//! a SIMD host can vectorize *if* the layout cooperates.
//!
//! [`MetadataStore`] makes the layout a knob
//! ([`MetadataLayout`], env `SIMDX_LAYOUT`):
//!
//! * `Flat` — a plain `Vec<M>`, the seed behaviour and the reference.
//! * `Chunked` — one contiguous buffer whose first element sits on a
//!   64-byte (cache-line) boundary and whose length is padded up to a
//!   multiple of [`CHUNK_LANES`] = 32 vertices. One chunk = 32 vertices
//!   = one warp of the ballot filter's lane granularity; two chunks =
//!   one [`crate::frontier::FrontierBitmap`] word. The hot sweeps walk
//!   the store chunk-by-chunk with fixed-width inner loops
//!   ([`crate::filters::ballot::scan_range_chunked`] and the engine's
//!   candidate/publish sweeps), which the compiler can unroll and
//!   vectorize because the trip count is a constant 32.
//!
//! Element order is identical in both layouts (vertex `v` is element
//! `v`), so `Chunked` is **bit-equal** to `Flat` by construction — the
//! layout changes alignment, padding and the shape of the loops that
//! walk it, never the values or the order they are combined in.
//!
//! # Tail handling
//!
//! When `n % 32 != 0` the last chunk is partial. The padding lanes are
//! initialized (with a copy of the last real element, so whole-chunk
//! reads are always defined behaviour) but **never exposed**:
//! [`MetadataStore::as_slice`] has length `n`, and every chunked sweep
//! processes the tail with a partial loop rather than trusting padding
//! semantics.

use crate::config::MetadataLayout;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Vertices per chunk: one warp of ballot-filter lanes.
pub const CHUNK_LANES: usize = 32;

/// Byte alignment of the chunked buffer: one cache line.
pub const CHUNK_ALIGN: usize = 64;

// The layout leans on "one chunk = one warp = half a bitmap word"
// everywhere (chunk-aligned partitions, word-gated whole-chunk
// publish, warp-aligned scan starts); lock the constants together so
// no one can move one without the others.
const _: () = assert!(CHUNK_LANES == simdx_gpu::WARP_SIZE);
const _: () = assert!(2 * CHUNK_LANES == crate::frontier::WORD_BITS);

/// A 64-byte-aligned, chunk-padded metadata buffer (the `Chunked`
/// storage of [`MetadataStore`]).
///
/// Invariants: the allocation holds `padded = ceil(len / 32) * 32`
/// elements, all initialized; element `i < len` is vertex `i`'s
/// metadata; elements `len..padded` are padding (copies of the last
/// real element) that no accessor exposes.
pub struct ChunkedBuf<M> {
    ptr: NonNull<M>,
    len: usize,
    padded: usize,
}

// SAFETY: ChunkedBuf owns its allocation exclusively; it is a Vec-like
// container, so Send/Sync follow the element type.
unsafe impl<M: Send> Send for ChunkedBuf<M> {}
// SAFETY: as above — shared references only ever read through the
// pointer, so Sync likewise follows the element type.
unsafe impl<M: Sync> Sync for ChunkedBuf<M> {}

impl<M: Copy> ChunkedBuf<M> {
    /// Copies `src` into a fresh aligned, padded buffer.
    pub fn from_slice(src: &[M]) -> Self {
        let len = src.len();
        let padded = len.div_ceil(CHUNK_LANES) * CHUNK_LANES;
        if padded == 0 || std::mem::size_of::<M>() == 0 {
            // Empty or zero-sized metadata: no allocation needed; a
            // dangling (aligned) pointer is valid for len-0 / ZST
            // slices.
            return Self {
                ptr: NonNull::dangling(),
                len,
                padded,
            };
        }
        let layout = Self::alloc_layout(padded);
        // SAFETY: layout has non-zero size (padded > 0, size_of > 0).
        let raw = unsafe { alloc(layout) } as *mut M;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        // SAFETY: the allocation holds `padded >= len` elements; `src`
        // cannot overlap a fresh allocation. Padding lanes are
        // initialized from the last real element (len > 0 because
        // padded > 0), so the whole buffer is defined.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), raw, len);
            let pad = src[len - 1];
            for i in len..padded {
                raw.add(i).write(pad);
            }
        }
        Self { ptr, len, padded }
    }

    fn alloc_layout(padded: usize) -> Layout {
        Layout::from_size_align(
            padded * std::mem::size_of::<M>(),
            CHUNK_ALIGN.max(std::mem::align_of::<M>()),
        )
        .expect("metadata buffer layout")
    }

    /// Logical length (vertices), excluding padding.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical length including the tail padding
    /// (`ceil(len / 32) * 32`).
    pub fn padded_len(&self) -> usize {
        self.padded
    }

    /// The metadata as a slice of the `len` real elements.
    pub fn as_slice(&self) -> &[M] {
        // SAFETY: `ptr` is valid for `padded >= len` initialized
        // elements (or dangling with len 0 / ZST, both valid).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the `len` real elements.
    pub fn as_mut_slice(&mut self) -> &mut [M] {
        // SAFETY: as `as_slice`, plus `&mut self` guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<M: Copy> Clone for ChunkedBuf<M> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<M> Drop for ChunkedBuf<M> {
    fn drop(&mut self) {
        if self.padded > 0 && std::mem::size_of::<M>() > 0 {
            // SAFETY: allocated in `from_slice` with this exact layout;
            // M: Copy elements need no drop.
            unsafe {
                dealloc(
                    self.ptr.as_ptr() as *mut u8,
                    Layout::from_size_align_unchecked(
                        self.padded * std::mem::size_of::<M>(),
                        CHUNK_ALIGN.max(std::mem::align_of::<M>()),
                    ),
                );
            }
        }
    }
}

impl<M: Copy + std::fmt::Debug> std::fmt::Debug for ChunkedBuf<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedBuf")
            .field("len", &self.len)
            .field("padded", &self.padded)
            .field("data", &self.as_slice())
            .finish()
    }
}

/// Per-vertex metadata in the layout selected by
/// [`MetadataLayout`] — see the module docs.
#[derive(Clone, Debug)]
pub enum MetadataStore<M: Copy> {
    /// Plain `Vec<M>` (the seed layout).
    Flat(Vec<M>),
    /// Warp-chunked, cache-line-aligned buffer.
    Chunked(ChunkedBuf<M>),
}

impl<M: Copy> MetadataStore<M> {
    /// Wraps an initial metadata vector in the requested layout.
    /// `Flat` takes ownership without copying; `Chunked` copies once
    /// into the aligned buffer (once per run, off the hot path).
    pub fn from_vec(layout: MetadataLayout, meta: Vec<M>) -> Self {
        match layout {
            MetadataLayout::Flat => Self::Flat(meta),
            MetadataLayout::Chunked => Self::Chunked(ChunkedBuf::from_slice(&meta)),
        }
    }

    /// The layout this store uses.
    pub fn layout(&self) -> MetadataLayout {
        match self {
            Self::Flat(_) => MetadataLayout::Flat,
            Self::Chunked(_) => MetadataLayout::Chunked,
        }
    }

    /// Number of vertices (padding excluded).
    pub fn len(&self) -> usize {
        match self {
            Self::Flat(v) => v.len(),
            Self::Chunked(b) => b.len(),
        }
    }

    /// Whether the store holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of 32-vertex chunks (`ceil(len / 32)`).
    pub fn num_chunks(&self) -> usize {
        self.len().div_ceil(CHUNK_LANES)
    }

    /// The metadata as one contiguous slice, vertex `v` at index `v`
    /// in **both** layouts — the accessor every engine loop reads
    /// through, so the layouts cannot diverge in values.
    pub fn as_slice(&self) -> &[M] {
        match self {
            Self::Flat(v) => v,
            Self::Chunked(b) => b.as_slice(),
        }
    }

    /// Mutable counterpart of [`Self::as_slice`].
    pub fn as_mut_slice(&mut self) -> &mut [M] {
        match self {
            Self::Flat(v) => v,
            Self::Chunked(b) => b.as_mut_slice(),
        }
    }

    /// Unwraps into a plain vector (for [`crate::metrics::RunResult`]);
    /// `Flat` is free, `Chunked` copies out of the aligned buffer.
    pub fn into_vec(self) -> Vec<M> {
        match self {
            Self::Flat(v) => v,
            Self::Chunked(b) => b.as_slice().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_buf_is_cache_line_aligned() {
        for n in [1usize, 31, 32, 33, 97, 4096] {
            let buf = ChunkedBuf::from_slice(&vec![7u32; n]);
            assert_eq!(buf.as_slice().as_ptr() as usize % CHUNK_ALIGN, 0, "n={n}");
        }
    }

    #[test]
    fn chunked_buf_pads_to_whole_chunks() {
        let buf = ChunkedBuf::from_slice(&[1u32, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.padded_len(), CHUNK_LANES);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        let aligned = ChunkedBuf::from_slice(&vec![9u64; 64]);
        assert_eq!(aligned.padded_len(), 64);
    }

    #[test]
    fn chunked_buf_roundtrips_and_mutates() {
        let src: Vec<u32> = (0..97).collect();
        let mut buf = ChunkedBuf::from_slice(&src);
        assert_eq!(buf.as_slice(), src.as_slice());
        buf.as_mut_slice()[96] = 1000;
        assert_eq!(buf.as_slice()[96], 1000);
        assert_eq!(buf.as_slice()[..96], src[..96]);
        let clone = buf.clone();
        assert_eq!(clone.as_slice(), buf.as_slice());
    }

    #[test]
    fn empty_buf_needs_no_allocation() {
        let buf = ChunkedBuf::from_slice(&[] as &[u32]);
        assert!(buf.is_empty());
        assert_eq!(buf.padded_len(), 0);
        assert!(buf.as_slice().is_empty());
        let _clone = buf.clone();
    }

    #[test]
    fn store_layouts_agree_element_for_element() {
        let src: Vec<u32> = (0..131).map(|i| i * 3 + 1).collect();
        let flat = MetadataStore::from_vec(MetadataLayout::Flat, src.clone());
        let chunked = MetadataStore::from_vec(MetadataLayout::Chunked, src.clone());
        assert_eq!(flat.layout(), MetadataLayout::Flat);
        assert_eq!(chunked.layout(), MetadataLayout::Chunked);
        assert_eq!(flat.as_slice(), chunked.as_slice());
        assert_eq!(flat.len(), chunked.len());
        assert_eq!(chunked.num_chunks(), 131usize.div_ceil(32));
        assert_eq!(flat.into_vec(), src);
        assert_eq!(chunked.into_vec(), src);
    }

    #[test]
    fn store_mutation_through_slice_matches() {
        let src = vec![0u32; 70];
        let mut flat = MetadataStore::from_vec(MetadataLayout::Flat, src.clone());
        let mut chunked = MetadataStore::from_vec(MetadataLayout::Chunked, src);
        for v in [0usize, 31, 32, 69] {
            flat.as_mut_slice()[v] = v as u32 + 1;
            chunked.as_mut_slice()[v] = v as u32 + 1;
        }
        assert_eq!(flat.as_slice(), chunked.as_slice());
        let cloned = chunked.clone();
        assert_eq!(cloned.as_slice(), chunked.as_slice());
    }

    #[test]
    fn wide_metadata_stays_aligned() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Wide {
            a: u64,
            b: f64,
        }
        let src = vec![Wide { a: 1, b: 2.0 }; 33];
        let buf = ChunkedBuf::from_slice(&src);
        assert_eq!(buf.as_slice().as_ptr() as usize % CHUNK_ALIGN, 0);
        assert_eq!(buf.padded_len(), 64);
        assert_eq!(buf.as_slice(), src.as_slice());
    }
}
