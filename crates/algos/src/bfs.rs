//! Breadth-first search in the ACC model (§6).
//!
//! BFS "traverses a graph level by level... relies on vote to combine
//! the updates". The metadata is the level array; the Active condition
//! is the default changed-metadata test; Compute emits `level + 1` for
//! unvisited destinations only — which is both the frontier dedup and
//! the collaborative-early-termination hook (in pull mode the engine
//! stops scanning a vertex's in-edges at the first visited parent).

use simdx_core::acc::{AccProgram, CombineKind, SourcedProgram};
use simdx_core::{EngineConfig, RunResult, Runtime, SimdxError};
use simdx_graph::{Graph, VertexId, Weight};

/// Level metadata for unvisited vertices.
pub const UNVISITED: u32 = u32::MAX;

/// BFS from a source vertex.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Source vertex.
    pub src: VertexId,
}

impl Bfs {
    /// Creates a BFS program rooted at `src`.
    pub fn new(src: VertexId) -> Self {
        Self { src }
    }
}

impl AccProgram for Bfs {
    type Meta = u32;
    type Update = u32;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn combine_kind(&self) -> CombineKind {
        CombineKind::Vote
    }

    fn init(&self, graph: &Graph) -> (Vec<u32>, Vec<VertexId>) {
        let mut meta = vec![UNVISITED; graph.num_vertices() as usize];
        meta[self.src as usize] = 0;
        (meta, vec![self.src])
    }

    fn compute(
        &self,
        _src: VertexId,
        _dst: VertexId,
        _w: Weight,
        m_src: &u32,
        m_dst: &u32,
    ) -> Option<u32> {
        if *m_src == UNVISITED || *m_dst != UNVISITED {
            return None;
        }
        Some(m_src + 1)
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        // Vote: all updates in one iteration carry the same level; min
        // is the natural idempotent choice.
        a.min(b)
    }

    fn apply(&self, _v: VertexId, current: &u32, update: u32) -> Option<u32> {
        (update < *current).then_some(update)
    }

    fn pull_candidate(&self, _v: VertexId, meta: &u32) -> bool {
        *meta == UNVISITED
    }
}

impl SourcedProgram for Bfs {
    fn with_source(mut self, src: VertexId) -> Self {
        self.src = src;
        self
    }
}

/// Runs BFS and returns levels plus the run report.
///
/// One-shot convenience over the session API; services running many
/// BFS queries should hold a [`Runtime`], bind the graph once and use
/// the run builder (or [`run_batch`]) to amortize setup.
pub fn run(
    graph: &Graph,
    src: VertexId,
    config: EngineConfig,
) -> Result<RunResult<u32>, SimdxError> {
    let runtime = Runtime::new(config)?;
    // `.source()` (not `Bfs::new(src)` directly) so an out-of-range
    // source is a typed InvalidQuery, like the batch path.
    runtime.bind(graph).run(Bfs::new(0)).source(src).execute()
}

/// Runs BFS from every source over one bound session — one result per
/// source, every allocation and the worker pool reused across queries.
pub fn run_batch(
    graph: &Graph,
    sources: &[VertexId],
    config: EngineConfig,
) -> Result<Vec<RunResult<u32>>, SimdxError> {
    let runtime = Runtime::new(config)?;
    runtime.bind(graph).run_batch(Bfs::new(0), sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use simdx_graph::{datasets, EdgeList};

    #[test]
    fn matches_reference_on_diamond() {
        let g = Graph::directed_from_edges(EdgeList::from_pairs(vec![
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
        ]));
        let r = run(&g, 0, EngineConfig::unscaled()).expect("bfs");
        assert_eq!(r.meta, reference::bfs(g.out(), 0));
    }

    #[test]
    fn matches_reference_on_dataset_twin() {
        let g = datasets::dataset("PK").unwrap().build_scaled(3, 5);
        let src = datasets::default_source(g.out());
        let r = run(&g, src, EngineConfig::default()).expect("bfs");
        assert_eq!(r.meta, reference::bfs(g.out(), src));
    }

    #[test]
    fn chunked_layout_is_bit_equal_on_dataset_twin() {
        // The skewed PK twin drives ballot switches and pull phases —
        // the sweeps the chunked layout rewrites into fixed-width
        // chunk loops; levels, logs and cycles must not move.
        use simdx_core::MetadataLayout;
        let g = datasets::dataset("PK").unwrap().build_scaled(3, 5);
        let src = datasets::default_source(g.out());
        let flat = run(
            &g,
            src,
            EngineConfig::default().with_layout(MetadataLayout::Flat),
        )
        .expect("bfs flat");
        let chunked = run(&g, src, EngineConfig::default().chunked()).expect("bfs chunked");
        assert_eq!(chunked.meta, flat.meta);
        assert_eq!(chunked.report.log, flat.report.log);
        assert_eq!(chunked.report.stats, flat.report.stats);
    }

    #[test]
    fn out_of_range_source_is_a_typed_error() {
        use simdx_core::SimdxError;
        let g = Graph::directed_from_edges(EdgeList::from_pairs(vec![(0, 1)]));
        let err = run(&g, 99, EngineConfig::unscaled()).expect_err("oob source");
        assert!(matches!(err, SimdxError::InvalidQuery { .. }));
    }

    #[test]
    fn unreachable_stays_unvisited() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        let g = Graph::directed_from_edges(el);
        let r = run(&g, 0, EngineConfig::unscaled()).expect("bfs");
        assert_eq!(r.meta, vec![0, 1, UNVISITED]);
    }

    #[test]
    fn road_twin_uses_online_filter_throughout() {
        // High-diameter graphs never overflow the bins — the Fig. 8
        // ER/RC pattern.
        let g = datasets::dataset("RC").unwrap().build_scaled(1, 2);
        let src = datasets::default_source(g.out());
        let r = run(&g, src, EngineConfig::default()).expect("bfs");
        assert!(r.report.iterations > 50, "road twin should be deep");
        assert_eq!(r.report.ballot_iterations(), 0, "no overflow expected");
    }

    #[test]
    fn social_twin_overflows_into_ballot_mid_run() {
        // Power-law twins have a bulging middle frontier — JIT must
        // switch to ballot there and back (Fig. 8 BFS rows).
        let g = datasets::dataset("LJ").unwrap().build_scaled(2, 2);
        let src = datasets::default_source(g.out());
        // The twin is shrunk 4x below dataset scale; shrink the device
        // by the same factor so bin capacity tracks frontier volume.
        let cfg = EngineConfig {
            parallelism_scale: 64 * 4,
            ..EngineConfig::default()
        };
        let r = run(&g, src, cfg).expect("bfs");
        assert!(
            r.report.ballot_iterations() > 0,
            "social twin should overflow: pattern {}",
            r.report.log.pattern()
        );
        assert!(
            r.report.log.online_iterations() > 0,
            "start/end should stay online: pattern {}",
            r.report.log.pattern()
        );
    }
}
