//! Uniform random graphs (GTgraph "random" twin).
//!
//! The paper's RD graph is a uniform-degree random graph; the evaluation
//! repeatedly notes that "workload balancing brings negligible benefits
//! to uniform-degree graph (RD)" (§7.1). We provide the fixed-out-degree
//! variant (every vertex has exactly `edge_factor` out-edges to uniform
//! targets), which matches GTgraph's random generator behaviour more
//! closely than Erdős–Rényi G(n, p) while remaining O(E).

use crate::EdgeList;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random graph configuration.
#[derive(Clone, Copy, Debug)]
pub struct Erdos {
    /// Vertex count.
    pub num_vertices: VertexId,
    /// Out-degree of every vertex.
    pub edge_factor: u32,
}

impl Erdos {
    /// Creates a generator with exactly `edge_factor` out-edges per vertex.
    pub fn new(num_vertices: VertexId, edge_factor: u32) -> Self {
        Self {
            num_vertices,
            edge_factor,
        }
    }

    /// Generates the edge list.
    ///
    /// # Panics
    ///
    /// Panics if the graph has fewer than two vertices (self-loops would
    /// be unavoidable).
    pub fn generate(&self, seed: u64) -> EdgeList {
        assert!(self.num_vertices >= 2, "need at least two vertices");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(self.num_vertices);
        for v in 0..self.num_vertices {
            for _ in 0..self.edge_factor {
                // Re-draw on self-loop; expected iterations ≈ 1.
                let mut d = rng.gen_range(0..self.num_vertices);
                while d == v {
                    d = rng.gen_range(0..self.num_vertices);
                }
                el.push(v, d);
            }
        }
        el.dedup();
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn deterministic() {
        let g = Erdos::new(256, 8);
        assert_eq!(g.generate(5), g.generate(5));
    }

    #[test]
    fn degrees_are_near_uniform() {
        let el = Erdos::new(2048, 16).generate(9);
        let csr = Csr::from_edge_list(&el);
        let max = csr.max_degree();
        // Exactly 16 before dedup; duplicates can only lower it.
        assert!(max <= 16);
        let min = (0..csr.num_vertices())
            .map(|v| csr.degree(v))
            .min()
            .unwrap();
        assert!(min >= 12, "uniform degrees should not collapse, min={min}");
    }

    #[test]
    fn no_self_loops() {
        let el = Erdos::new(64, 4).generate(2);
        assert!(el.edges().iter().all(|&(s, d)| s != d));
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn tiny_graph_panics() {
        Erdos::new(1, 1).generate(0);
    }
}
