//! Push-pull based kernel fusion (§5) and the Table 2 register model.
//!
//! Three strategies are modeled:
//!
//! * **None** — every compute and task-management kernel is a separate
//!   launch each iteration (register consumption 22–30 per kernel,
//!   launch count up to tens of thousands);
//! * **All** — the whole algorithm is one persistent kernel (registers
//!   ≈ 110: every stage's live state coexists), launched once,
//!   synchronizing through the software global barrier;
//! * **PushPull** — SIMD-X's strategy: one fused kernel per direction
//!   phase (registers 48 push / 50 pull), relaunched only when the
//!   computation switches between push and pull (3 launches for BFS).
//!
//! Register numbers are the paper's measured `-Xptxas -v` values
//! (Table 2); they drive occupancy via Equation 1, which is how fusion
//! strategy changes performance in the simulator.

use simdx_gpu::{KernelDesc, SchedUnit};
use simdx_graph::csr::Direction;

/// Measured register consumption per kernel (Table 2).
pub mod registers {
    /// Unfused push kernels: Thread / Warp / CTA / task management.
    pub const PUSH_THREAD: u32 = 26;
    /// Unfused push Warp kernel.
    pub const PUSH_WARP: u32 = 27;
    /// Unfused push CTA kernel.
    pub const PUSH_CTA: u32 = 28;
    /// Unfused push task-management kernel.
    pub const PUSH_TASK_MGMT: u32 = 24;
    /// Unfused pull Thread kernel.
    pub const PULL_THREAD: u32 = 24;
    /// Unfused pull Warp kernel.
    pub const PULL_WARP: u32 = 24;
    /// Unfused pull CTA kernel.
    pub const PULL_CTA: u32 = 22;
    /// Unfused pull task-management kernel.
    pub const PULL_TASK_MGMT: u32 = 30;
    /// Selectively-fused push kernel.
    pub const FUSED_PUSH: u32 = 48;
    /// Selectively-fused pull kernel.
    pub const FUSED_PULL: u32 = 50;
    /// Aggressively fused whole-algorithm kernel.
    pub const ALL_FUSION: u32 = 110;
}

/// Kernel-fusion strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FusionStrategy {
    /// No fusion: per-iteration launches.
    None,
    /// One persistent kernel for the whole algorithm.
    All,
    /// SIMD-X: fuse within push and pull phases.
    PushPull,
}

/// The role a kernel invocation plays within an iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelRole {
    /// Compute kernel at the given scheduling granularity.
    Compute(SchedUnit),
    /// Task-management (filter) kernel.
    TaskMgmt,
}

/// Produces kernel descriptors and launch decisions for a strategy.
#[derive(Clone, Debug)]
pub struct FusionPlan {
    strategy: FusionStrategy,
    threads_per_cta: u32,
    /// Direction whose fused kernel is currently resident, if any.
    running: Option<Direction>,
    /// Whether the all-fusion kernel has been launched.
    all_launched: bool,
}

impl FusionPlan {
    /// Creates a plan for the given strategy and CTA width.
    pub fn new(strategy: FusionStrategy, threads_per_cta: u32) -> Self {
        Self {
            strategy,
            threads_per_cta,
            running: None,
            all_launched: false,
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> FusionStrategy {
        self.strategy
    }

    /// The kernel descriptor used for `role` in `dir` under this
    /// strategy. Fused strategies map every role onto the single fused
    /// kernel (whose register pressure they all share).
    pub fn kernel(&self, dir: Direction, role: KernelRole) -> KernelDesc {
        let (name, regs) = match self.strategy {
            FusionStrategy::None => match (dir, role) {
                (Direction::Push, KernelRole::Compute(SchedUnit::Thread)) => {
                    ("push-thread", registers::PUSH_THREAD)
                }
                (Direction::Push, KernelRole::Compute(SchedUnit::Warp)) => {
                    ("push-warp", registers::PUSH_WARP)
                }
                (Direction::Push, KernelRole::Compute(SchedUnit::Cta)) => {
                    ("push-cta", registers::PUSH_CTA)
                }
                (Direction::Push, KernelRole::TaskMgmt) => {
                    ("push-taskmgmt", registers::PUSH_TASK_MGMT)
                }
                (Direction::Pull, KernelRole::Compute(SchedUnit::Thread)) => {
                    ("pull-thread", registers::PULL_THREAD)
                }
                (Direction::Pull, KernelRole::Compute(SchedUnit::Warp)) => {
                    ("pull-warp", registers::PULL_WARP)
                }
                (Direction::Pull, KernelRole::Compute(SchedUnit::Cta)) => {
                    ("pull-cta", registers::PULL_CTA)
                }
                (Direction::Pull, KernelRole::TaskMgmt) => {
                    ("pull-taskmgmt", registers::PULL_TASK_MGMT)
                }
            },
            FusionStrategy::All => ("all-fused", registers::ALL_FUSION),
            FusionStrategy::PushPull => match dir {
                Direction::Push => ("fused-push", registers::FUSED_PUSH),
                Direction::Pull => ("fused-pull", registers::FUSED_PULL),
            },
        };
        KernelDesc::new(name, regs).with_threads_per_cta(self.threads_per_cta)
    }

    /// Whether the next invocation of `role` in `dir` pays a kernel
    /// launch, updating the resident-kernel state.
    ///
    /// * `None`: every invocation is a launch.
    /// * `All`: only the very first invocation launches.
    /// * `PushPull`: launches when the direction changes (the fused
    ///   kernel for the previous phase terminated at the switch).
    pub fn needs_launch(&mut self, dir: Direction) -> bool {
        match self.strategy {
            FusionStrategy::None => true,
            FusionStrategy::All => {
                let first = !self.all_launched;
                self.all_launched = true;
                first
            }
            FusionStrategy::PushPull => {
                let switch = self.running != Some(dir);
                self.running = Some(dir);
                switch
            }
        }
    }

    /// Whether iterations synchronize through the software global
    /// barrier (fused strategies) rather than through kernel-launch
    /// boundaries (unfused).
    pub fn uses_global_barrier(&self) -> bool {
        !matches!(self.strategy, FusionStrategy::None)
    }

    /// Launch-residency state `(running, all_launched)`, captured by
    /// the engine's checkpoint path so a resumed run charges launches
    /// exactly where the uninterrupted run would have.
    pub(crate) fn launch_state(&self) -> (Option<Direction>, bool) {
        (self.running, self.all_launched)
    }

    /// Restores launch-residency state captured by [`Self::launch_state`].
    pub(crate) fn restore_launch_state(&mut self, running: Option<Direction>, all_launched: bool) {
        self.running = running;
        self.all_launched = all_launched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_register_values() {
        let plan = FusionPlan::new(FusionStrategy::None, 128);
        let regs = |d, r| plan.kernel(d, r).registers_per_thread;
        assert_eq!(
            regs(Direction::Push, KernelRole::Compute(SchedUnit::Thread)),
            26
        );
        assert_eq!(
            regs(Direction::Push, KernelRole::Compute(SchedUnit::Warp)),
            27
        );
        assert_eq!(
            regs(Direction::Push, KernelRole::Compute(SchedUnit::Cta)),
            28
        );
        assert_eq!(regs(Direction::Push, KernelRole::TaskMgmt), 24);
        assert_eq!(
            regs(Direction::Pull, KernelRole::Compute(SchedUnit::Thread)),
            24
        );
        assert_eq!(
            regs(Direction::Pull, KernelRole::Compute(SchedUnit::Cta)),
            22
        );
        assert_eq!(regs(Direction::Pull, KernelRole::TaskMgmt), 30);

        let fused = FusionPlan::new(FusionStrategy::PushPull, 128);
        assert_eq!(
            fused
                .kernel(Direction::Push, KernelRole::TaskMgmt)
                .registers_per_thread,
            48
        );
        assert_eq!(
            fused
                .kernel(Direction::Pull, KernelRole::Compute(SchedUnit::Warp))
                .registers_per_thread,
            50
        );

        let all = FusionPlan::new(FusionStrategy::All, 128);
        assert_eq!(
            all.kernel(Direction::Push, KernelRole::TaskMgmt)
                .registers_per_thread,
            110
        );
    }

    #[test]
    // The "constant" assertions are the point: they pin the Table 2
    // register constants to the §5 relationship the paper states.
    #[allow(clippy::assertions_on_constants)]
    fn fusion_halves_register_consumption_vs_all() {
        // §5: "the register consumption decreases to 48 and 55 [from
        // 110] thus increases the configurable thread count".
        assert!(registers::FUSED_PUSH * 2 <= registers::ALL_FUSION);
        assert!(registers::FUSED_PULL * 2 + 10 >= registers::ALL_FUSION);
    }

    #[test]
    fn none_strategy_always_launches() {
        let mut plan = FusionPlan::new(FusionStrategy::None, 128);
        for _ in 0..5 {
            assert!(plan.needs_launch(Direction::Push));
            assert!(plan.needs_launch(Direction::Pull));
        }
        assert!(!plan.uses_global_barrier());
    }

    #[test]
    fn all_strategy_launches_once() {
        let mut plan = FusionPlan::new(FusionStrategy::All, 128);
        assert!(plan.needs_launch(Direction::Push));
        assert!(!plan.needs_launch(Direction::Pull));
        assert!(!plan.needs_launch(Direction::Push));
        assert!(plan.uses_global_barrier());
    }

    #[test]
    fn pushpull_launches_on_direction_switch() {
        // The BFS pattern push → pull → push should cost exactly 3
        // launches (Table 2's "kernel launching count" row).
        let mut plan = FusionPlan::new(FusionStrategy::PushPull, 128);
        let mut launches = 0;
        for dir in [
            Direction::Push,
            Direction::Push,
            Direction::Pull,
            Direction::Pull,
            Direction::Pull,
            Direction::Push,
        ] {
            if plan.needs_launch(dir) {
                launches += 1;
            }
        }
        assert_eq!(launches, 3);
    }

    #[test]
    fn cta_width_propagates() {
        let plan = FusionPlan::new(FusionStrategy::PushPull, 256);
        assert_eq!(
            plan.kernel(Direction::Push, KernelRole::TaskMgmt)
                .threads_per_cta,
            256
        );
    }
}
