//! Deterministic fault injection for the supervision test harness.
//!
//! Compiled to a no-op unless the `fault-inject` feature is on: the
//! default build's [`hit`] is an empty `#[inline(always)]` function, so
//! production binaries carry zero overhead and no global state.
//!
//! With the feature enabled, [`install`] arms a [`FaultPlan`] that
//! fires panics or delays at named [`FaultSite`]s the engine passes
//! through ([`hit`] calls are baked into the ballot filter, the push
//! and pull sweeps, the bind-time grid build, the scratch reset, and
//! the checkpoint capture/restore path).
//! Panics fired inside pool workers exercise the containment path in
//! `par.rs`; panics fired on the submitter thread exercise the
//! `catch_unwind` in `session.rs`. `tests/fault_injection.rs` drives
//! the differential matrix with this.
//!
//! Plans can also come from the environment: `SIMDX_FAULTS` uses a
//! comma-separated `site:action` grammar, e.g. `push:panic`,
//! `ballot:panic@3` (fire on the 3rd hit), `pull:delay=5` (5 ms on
//! every hit), `grid-build:delay=2@1`. The `persist` site additionally
//! accepts the storage disturbances `persist:torn_write`,
//! `persist:corrupt` and `persist:io_err@N`, consumed by the
//! durable-checkpoint write path through [`persist_disturbance`]. The
//! env plan is only installed when a test asks for it
//! ([`FaultPlan::from_env`]) — never implicitly, so ordinary runs are
//! unaffected by a stray variable.

#![allow(dead_code)] // the no-op build only uses `hit`

use std::time::Duration;

/// Named engine locations where faults can fire. The set mirrors the
/// phases of one BSP iteration plus the two bind/reuse paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// The ballot filter (serial scan or per-worker vote scan).
    Ballot,
    /// The push compute sweep (serial unit or per-worker replay shard).
    Push,
    /// The pull compute sweep (serial unit or per-worker task chunk).
    Pull,
    /// The bind-time destination-bucketed grid build (pool workers).
    GridBuild,
    /// `IterScratch::reset_for_run` at `execute()` entry.
    ScratchReset,
    /// The boundary checkpoint capture in `Engine::run_session`.
    Capture,
    /// The checkpoint restore at resumed-run initialization.
    Restore,
    /// The durable-checkpoint write path
    /// ([`crate::persist::DirStore::put`]); the only site that also
    /// accepts the storage disturbances ([`PersistDisturbance`]).
    Persist,
}

/// Number of distinct [`FaultSite`]s (per-site hit counters).
const NUM_SITES: usize = 8;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            Self::Ballot => 0,
            Self::Push => 1,
            Self::Pull => 2,
            Self::GridBuild => 3,
            Self::ScratchReset => 4,
            Self::Capture => 5,
            Self::Restore => 6,
            Self::Persist => 7,
        }
    }

    /// The spelling used by the `SIMDX_FAULTS` grammar and panic payloads.
    pub fn label(self) -> &'static str {
        match self {
            Self::Ballot => "ballot",
            Self::Push => "push",
            Self::Pull => "pull",
            Self::GridBuild => "grid-build",
            Self::ScratchReset => "scratch-reset",
            Self::Capture => "capture",
            Self::Restore => "restore",
            Self::Persist => "persist",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "ballot" => Some(Self::Ballot),
            "push" => Some(Self::Push),
            "pull" => Some(Self::Pull),
            "grid-build" => Some(Self::GridBuild),
            "scratch-reset" => Some(Self::ScratchReset),
            "capture" => Some(Self::Capture),
            "restore" => Some(Self::Restore),
            "persist" => Some(Self::Persist),
            _ => None,
        }
    }
}

/// A storage fault the durable-checkpoint write path injects on itself
/// ([`FaultSite::Persist`] only): each models one way real disks lose
/// data, and each must surface as a typed [`crate::error::SimdxError`]
/// with the store still usable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistDisturbance {
    /// Drop the tail of the blob before it reaches the file — a crash
    /// mid-write that the atomic temp+rename protocol turns into a
    /// detectably-truncated checkpoint.
    TornWrite,
    /// Flip one bit of the blob — silent media corruption the CRCs
    /// must catch at decode time.
    Corrupt,
    /// Fail the operation outright with a synthetic I/O error
    /// ([`crate::error::SimdxError::CheckpointIo`]).
    IoErr,
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` with an `injected fault at <site>` payload.
    Panic,
    /// Sleep for the given duration (models a straggler worker).
    Delay(Duration),
    /// Hand a storage disturbance to the persist layer
    /// ([`FaultSite::Persist`] only; other sites ignore it).
    Disturb(PersistDisturbance),
}

/// No-op hook for the default build: optimizes to nothing.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn hit(_site: FaultSite) {}

/// No-op persist hook for the default build: the write path is never
/// disturbed.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn persist_disturbance() -> Option<PersistDisturbance> {
    None
}

#[cfg(feature = "fault-inject")]
pub use enabled::{hit, install, persist_disturbance, FaultGuard, FaultPlan};

#[cfg(feature = "fault-inject")]
mod enabled {
    use super::{FaultAction, FaultSite, PersistDisturbance, NUM_SITES};
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
    use std::time::Duration;

    /// One armed fault: fires `action` at `site`. `nth == 0` fires on
    /// every hit (delays only — an every-hit panic would re-fire during
    /// the recovery run the tests perform); `nth == k` fires exactly on
    /// the k-th hit of that site since [`install`].
    #[derive(Clone, Debug)]
    struct Fault {
        site: FaultSite,
        action: FaultAction,
        nth: u64,
    }

    /// A set of armed faults plus per-site hit counters.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        faults: Vec<Fault>,
        counts: [AtomicU64; NUM_SITES],
    }

    impl FaultPlan {
        /// An empty plan (no faults armed; counters still advance).
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms a panic on the `nth` hit of `site` (1-based).
        pub fn panic_at(mut self, site: FaultSite, nth: u64) -> Self {
            assert!(nth >= 1, "panics fire once; nth is 1-based");
            self.faults.push(Fault {
                site,
                action: FaultAction::Panic,
                nth,
            });
            self
        }

        /// Arms a panic on the first hit of `site`.
        pub fn panic_on(self, site: FaultSite) -> Self {
            self.panic_at(site, 1)
        }

        /// Arms a delay on every hit of `site`.
        pub fn delay_every(mut self, site: FaultSite, delay: Duration) -> Self {
            self.faults.push(Fault {
                site,
                action: FaultAction::Delay(delay),
                nth: 0,
            });
            self
        }

        /// Arms a delay on the `nth` hit of `site` (1-based).
        pub fn delay_at(mut self, site: FaultSite, delay: Duration, nth: u64) -> Self {
            assert!(nth >= 1, "nth is 1-based; use delay_every for every hit");
            self.faults.push(Fault {
                site,
                action: FaultAction::Delay(delay),
                nth,
            });
            self
        }

        /// Arms a storage disturbance on the `nth` durable-checkpoint
        /// write (1-based).
        pub fn disturb_at(mut self, disturbance: PersistDisturbance, nth: u64) -> Self {
            assert!(
                nth >= 1,
                "nth is 1-based; use disturb_every for every write"
            );
            self.faults.push(Fault {
                site: FaultSite::Persist,
                action: FaultAction::Disturb(disturbance),
                nth,
            });
            self
        }

        /// Arms a storage disturbance on every durable-checkpoint
        /// write.
        pub fn disturb_every(mut self, disturbance: PersistDisturbance) -> Self {
            self.faults.push(Fault {
                site: FaultSite::Persist,
                action: FaultAction::Disturb(disturbance),
                nth: 0,
            });
            self
        }

        /// Parses the `SIMDX_FAULTS` environment variable:
        /// comma-separated `site:panic[@N]` or `site:delay=MS[@N]`
        /// entries. Returns `Ok(None)` when the variable is unset or
        /// empty, `Err` with a description on a malformed entry.
        pub fn from_env() -> Result<Option<Self>, String> {
            match std::env::var("SIMDX_FAULTS") {
                Ok(v) if !v.trim().is_empty() => Self::parse(&v).map(Some),
                _ => Ok(None),
            }
        }

        /// Parses the `SIMDX_FAULTS` grammar from a string.
        pub fn parse(spec: &str) -> Result<Self, String> {
            let mut plan = Self::new();
            for entry in spec.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let (site, action) = entry
                    .split_once(':')
                    .ok_or_else(|| format!("SIMDX_FAULTS entry `{entry}`: expected site:action"))?;
                let site = FaultSite::parse(site).ok_or_else(|| {
                    format!(
                        "SIMDX_FAULTS entry `{entry}`: unknown site `{site}` \
                         (expected ballot|push|pull|grid-build|scratch-reset|capture|restore)"
                    )
                })?;
                let (action, nth) = match action.split_once('@') {
                    Some((a, n)) => {
                        let nth: u64 = n.parse().map_err(|_| {
                            format!("SIMDX_FAULTS entry `{entry}`: bad hit index `{n}`")
                        })?;
                        if nth == 0 {
                            return Err(format!(
                                "SIMDX_FAULTS entry `{entry}`: hit index is 1-based"
                            ));
                        }
                        (a, Some(nth))
                    }
                    None => (action, None),
                };
                let disturbance = match action {
                    "torn_write" => Some(PersistDisturbance::TornWrite),
                    "corrupt" => Some(PersistDisturbance::Corrupt),
                    "io_err" => Some(PersistDisturbance::IoErr),
                    _ => None,
                };
                if action == "panic" {
                    plan = plan.panic_at(site, nth.unwrap_or(1));
                } else if let Some(ms) = action.strip_prefix("delay=") {
                    let ms: u64 = ms.parse().map_err(|_| {
                        format!("SIMDX_FAULTS entry `{entry}`: bad delay `{ms}` (milliseconds)")
                    })?;
                    let d = Duration::from_millis(ms);
                    plan = match nth {
                        Some(n) => plan.delay_at(site, d, n),
                        None => plan.delay_every(site, d),
                    };
                } else if let Some(disturbance) = disturbance {
                    if site != FaultSite::Persist {
                        return Err(format!(
                            "SIMDX_FAULTS entry `{entry}`: `{action}` only applies to \
                             the `persist` site"
                        ));
                    }
                    plan = match nth {
                        Some(n) => plan.disturb_at(disturbance, n),
                        None => plan.disturb_every(disturbance),
                    };
                } else {
                    return Err(format!(
                        "SIMDX_FAULTS entry `{entry}`: unknown action `{action}` \
                         (expected panic[@N], delay=MS[@N], torn_write[@N], \
                         corrupt[@N] or io_err[@N])"
                    ));
                }
            }
            Ok(plan)
        }
    }

    /// The armed plan, if any. `RwLock` so the hot [`hit`] path takes a
    /// read lock only; panics under a *read* guard do not poison.
    fn active() -> &'static RwLock<Option<Arc<FaultPlan>>> {
        static ACTIVE: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
        ACTIVE.get_or_init(|| RwLock::new(None))
    }

    /// Serializes tests that install plans: fault state is global, so
    /// two concurrently-running fault tests would observe each other's
    /// plans. Held by the [`FaultGuard`].
    fn gate() -> &'static Mutex<()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
    }

    /// Keeps a plan armed; disarms on drop and releases the test gate.
    pub struct FaultGuard {
        _gate: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *active()
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
    }

    /// Arms `plan` globally until the returned guard drops. Blocks while
    /// another guard is alive (tests serialize on the plan).
    pub fn install(plan: FaultPlan) -> FaultGuard {
        // A previous test body may have panicked while holding the gate
        // (e.g. asserting around an injected panic); the () payload is
        // trivially consistent, so clear the poison and continue.
        let gate = gate()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *active()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(plan));
        FaultGuard { _gate: gate }
    }

    /// Fault hook: fires any armed fault for `site`. Called from engine
    /// workers and the submitter thread alike.
    pub fn hit(site: FaultSite) {
        let plan = {
            let slot = active()
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match &*slot {
                Some(p) => Arc::clone(p),
                None => return,
            }
        };
        // ORDERING: per-site hit counters only need atomicity, not
        // ordering: each worker's increment must be counted exactly
        // once so the `nth` trigger fires deterministically, but no
        // other data is published under the counter. The harness
        // inspects counts only after the run has joined its workers.
        let count = plan.counts[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        for fault in plan.faults.iter().filter(|f| f.site == site) {
            let fires = fault.nth == 0 || fault.nth == count;
            if !fires {
                continue;
            }
            match fault.action {
                FaultAction::Panic => panic!("injected fault at {}", site.label()),
                FaultAction::Delay(d) => std::thread::sleep(d),
                // Storage disturbances only fire through
                // `persist_disturbance` — the engine sites have no
                // write path to disturb.
                FaultAction::Disturb(_) => {}
            }
        }
    }

    /// Persist-layer fault hook: advances the [`FaultSite::Persist`]
    /// counter and returns the armed storage disturbance for this
    /// write, if any. Armed panics and delays at the persist site fire
    /// here too (the write path calls this *instead of* [`hit`], so
    /// the hit counter advances exactly once per write).
    pub fn persist_disturbance() -> Option<PersistDisturbance> {
        let plan = {
            let slot = active()
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match &*slot {
                Some(p) => Arc::clone(p),
                None => return None,
            }
        };
        // ORDERING: same contract as `hit` — the per-write counter
        // only needs atomicity so the `nth` trigger fires exactly
        // once; nothing else is published under it.
        let site = FaultSite::Persist;
        let count = plan.counts[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let mut disturbance = None;
        for fault in plan.faults.iter().filter(|f| f.site == site) {
            let fires = fault.nth == 0 || fault.nth == count;
            if !fires {
                continue;
            }
            match fault.action {
                FaultAction::Panic => panic!("injected fault at {}", site.label()),
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Disturb(d) => disturbance = Some(d),
            }
        }
        disturbance
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parse_accepts_full_grammar() {
            let plan =
                FaultPlan::parse("push:panic, ballot:panic@3, pull:delay=5, grid-build:delay=2@1")
                    .expect("grammar");
            assert_eq!(plan.faults.len(), 4);
            assert_eq!(plan.faults[0].site, FaultSite::Push);
            assert_eq!(plan.faults[0].nth, 1);
            assert_eq!(plan.faults[1].nth, 3);
            assert_eq!(
                plan.faults[2].action,
                FaultAction::Delay(Duration::from_millis(5))
            );
            assert_eq!(plan.faults[2].nth, 0, "bare delay fires every hit");
            assert_eq!(plan.faults[3].nth, 1);
        }

        #[test]
        fn parse_rejects_bad_entries() {
            assert!(FaultPlan::parse("push").is_err(), "missing action");
            assert!(FaultPlan::parse("warp:panic").is_err(), "unknown site");
            assert!(FaultPlan::parse("push:explode").is_err(), "unknown action");
            assert!(
                FaultPlan::parse("push:panic@0").is_err(),
                "0 is not 1-based"
            );
            assert!(FaultPlan::parse("pull:delay=xx").is_err(), "bad millis");
            assert!(
                FaultPlan::parse("push:torn_write").is_err(),
                "disturbances are persist-only"
            );
        }

        #[test]
        fn parse_accepts_persist_disturbances() {
            let plan = FaultPlan::parse("persist:torn_write, persist:corrupt@2, persist:io_err@3")
                .expect("grammar");
            assert_eq!(plan.faults.len(), 3);
            assert_eq!(
                plan.faults[0].action,
                FaultAction::Disturb(PersistDisturbance::TornWrite)
            );
            assert_eq!(plan.faults[0].nth, 0, "bare disturbance fires every write");
            assert_eq!(
                plan.faults[1].action,
                FaultAction::Disturb(PersistDisturbance::Corrupt)
            );
            assert_eq!(plan.faults[1].nth, 2);
            assert_eq!(
                plan.faults[2].action,
                FaultAction::Disturb(PersistDisturbance::IoErr)
            );
            assert_eq!(plan.faults[2].nth, 3);
        }

        #[test]
        fn persist_disturbance_fires_on_the_armed_nth_write() {
            let _guard = install(FaultPlan::new().disturb_at(PersistDisturbance::Corrupt, 2));
            assert_eq!(persist_disturbance(), None, "first write is clean");
            assert_eq!(
                persist_disturbance(),
                Some(PersistDisturbance::Corrupt),
                "second write is disturbed"
            );
            assert_eq!(persist_disturbance(), None, "third write is clean again");
            // `hit` ignores disturbance actions: an engine-loop hit at
            // the persist site never injects storage faults.
            hit(FaultSite::Persist);
        }

        #[test]
        fn uninstalled_persist_writes_are_clean() {
            assert_eq!(persist_disturbance(), None);
        }

        #[test]
        fn hit_fires_only_on_the_armed_nth() {
            let _guard = install(FaultPlan::new().panic_at(FaultSite::Ballot, 3));
            hit(FaultSite::Ballot);
            hit(FaultSite::Push); // other sites unaffected
            hit(FaultSite::Ballot);
            let caught = std::panic::catch_unwind(|| hit(FaultSite::Ballot));
            assert!(caught.is_err(), "third ballot hit fires");
            hit(FaultSite::Ballot); // fourth hit: fired already, inert
        }

        #[test]
        fn uninstalled_hits_are_inert() {
            hit(FaultSite::ScratchReset);
            hit(FaultSite::GridBuild);
        }
    }
}
